//! # ffw-mpi
//!
//! An in-process message-passing runtime standing in for MPI in the paper's
//! two-dimensional parallelization (Section IV). Ranks are OS threads; each
//! directed rank pair has a tag-matched mailbox; collectives are built on the
//! point-to-point layer. Every message is accounted per edge (count + bytes),
//! so the distributed solver can report exactly the communication volumes the
//! performance model consumes, and ablations can show the effect of the
//! paper's buffer-aggregation optimization (Section IV-B).
//!
//! Semantics match the subset of MPI the paper's solver needs:
//! * `send` is buffered and non-blocking (like `MPI_Isend` + eager protocol);
//! * `recv(src, tag)` blocks until a matching message arrives, with
//!   out-of-order messages held back per (source, tag);
//! * `barrier`, `allreduce`, `gather`/`broadcast` collectives.
//!
//! ## Verification (ffw-check integration)
//!
//! The runtime is self-checking, in two tiers:
//!
//! * **Deadlock watchdog.** Every rank publishes what it is blocked on (a
//!   [`ffw_check::WaitState`]) in a shared registry. Blocking waits use a
//!   timeout (`FFW_DEADLOCK_TIMEOUT_MS`, default 1000 ms); on timeout the
//!   waiter snapshots the registry, reconstructs the global wait-for graph
//!   with [`ffw_check::diagnose_deadlock`], confirms the diagnosis against a
//!   second snapshot, and panics with a readable report naming every rank and
//!   the cycle (or the dependency on a finished/panicked rank). Only
//!   *definite* deadlocks are reported — a slow peer never trips the
//!   watchdog.
//! * **Post-run trace validation.** Each rank records a low-overhead
//!   [`ffw_check::Event`] trace of its user-level sends, receives, polls
//!   (coalesced), and collectives. When [`run`] exits normally, the traces
//!   plus any undelivered messages are handed to
//!   [`ffw_check::validate_traces`]; message leaks, self-sends, reserved-tag
//!   misuse, and cross-rank collective-ordering mismatches fail the run with
//!   a report.
//!
//! A panicking rank is marked [`ffw_check::WaitState::Panicked`] rather than
//! silently disappearing, so peers blocked on it get a diagnosed error
//! instead of a hang; [`run`] then re-raises the lowest-ranked panic.
//!
//! ## Fault injection and fault-aware launches
//!
//! [`Runtime`] is the builder behind [`run`]: it adds a programmatic
//! deadlock-timeout knob and accepts a seeded [`ffw_fault::FaultPlan`] that
//! can crash a rank at its N-th runtime operation, drop a specific send
//! (the runtime retries with bounded backoff before declaring the peer dead
//! with [`ffw_fault::FaultError::SendLost`]), or delay a rank's operations
//! (straggler model). Every injected fault is recorded in the event trace
//! ([`ffw_check::FaultEvent`]). [`Runtime::launch`] returns per-rank
//! [`RankOutcome`]s instead of panicking, so a crashed rank is data, not an
//! abort; the fallible `send_checked`/`recv_checked` operations let rank
//! code observe a dead peer as a typed [`ffw_fault::FaultError`] value and
//! degrade gracefully (the fault-tolerant DBIM driver in `ffw-dist` builds
//! on exactly this).
//!
//! Watchdog timeout precedence: the `FFW_DEADLOCK_TIMEOUT_MS` environment
//! variable (if set) overrides [`Runtime::deadlock_timeout`], which
//! overrides the 1000 ms default.

#![warn(missing_docs)]

use ffw_check::trace::{render_report, CollectiveKind, Event, FaultEvent, LeakedMessage};
use ffw_check::waitgraph::WaitState;
use ffw_check::{diagnose_deadlock, validate_traces, validate_traces_faulty, DeadlockReport};
use ffw_fault::{ActiveFaults, OpAction};
use parking_lot::{Condvar, Mutex};
use std::collections::VecDeque;
use std::panic::{catch_unwind, panic_any, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

pub use ffw_fault::{FaultError, FaultPlan, RetryPolicy};

/// Message payloads: the solver moves complex fields, real scalars for
/// reductions, and occasional integer bookkeeping.
#[derive(Clone, Debug, PartialEq)]
pub enum Payload {
    /// Complex doubles as `(re, im)` pairs.
    C64(Vec<(f64, f64)>),
    /// Real doubles.
    F64(Vec<f64>),
    /// Unsigned 64-bit integers.
    U64(Vec<u64>),
}

impl Payload {
    /// Payload size in bytes (as it would travel on a wire).
    pub fn n_bytes(&self) -> u64 {
        match self {
            Payload::C64(v) => 16 * v.len() as u64,
            Payload::F64(v) => 8 * v.len() as u64,
            Payload::U64(v) => 8 * v.len() as u64,
        }
    }

    /// Unwraps a complex payload.
    pub fn into_c64(self) -> Vec<(f64, f64)> {
        match self {
            Payload::C64(v) => v,
            other => panic!("expected C64 payload, got {other:?}"),
        }
    }

    /// Unwraps a real payload.
    pub fn into_f64(self) -> Vec<f64> {
        match self {
            Payload::F64(v) => v,
            other => panic!("expected F64 payload, got {other:?}"),
        }
    }

    /// Unwraps an integer payload.
    pub fn into_u64(self) -> Vec<u64> {
        match self {
            Payload::U64(v) => v,
            other => panic!("expected U64 payload, got {other:?}"),
        }
    }
}

struct Mailbox {
    queue: Mutex<VecDeque<(u32, Payload)>>,
    cond: Condvar,
}

impl Mailbox {
    fn new() -> Self {
        Mailbox {
            queue: Mutex::new(VecDeque::new()),
            cond: Condvar::new(),
        }
    }

    fn push(&self, tag: u32, payload: Payload) {
        let mut q = self.queue.lock();
        q.push_back((tag, payload));
        self.cond.notify_all();
    }

    fn try_pop_matching(&self, tag: u32) -> Option<Payload> {
        let mut q = self.queue.lock();
        q.iter()
            .position(|(t, _)| *t == tag)
            .map(|pos| q.remove(pos).expect("position valid").1)
    }

    fn has_matching(&self, tag: u32) -> bool {
        self.queue.lock().iter().any(|(t, _)| *t == tag)
    }
}

/// Per-edge communication counters.
#[derive(Debug)]
pub struct CommStats {
    size: usize,
    /// messages[src * size + dst]
    messages: Vec<AtomicU64>,
    bytes: Vec<AtomicU64>,
}

impl CommStats {
    fn new(size: usize) -> Self {
        CommStats {
            size,
            messages: (0..size * size).map(|_| AtomicU64::new(0)).collect(),
            bytes: (0..size * size).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    fn record(&self, src: usize, dst: usize, n_bytes: u64) {
        let idx = src * self.size + dst;
        self.messages[idx].fetch_add(1, Ordering::Relaxed);
        self.bytes[idx].fetch_add(n_bytes, Ordering::Relaxed);
    }

    /// Total messages sent (all edges).
    pub fn total_messages(&self) -> u64 {
        self.messages
            .iter()
            .map(|a| a.load(Ordering::Relaxed))
            .sum()
    }

    /// Total bytes sent (all edges).
    pub fn total_bytes(&self) -> u64 {
        self.bytes.iter().map(|a| a.load(Ordering::Relaxed)).sum()
    }

    /// Messages sent on the directed edge `src -> dst`.
    pub fn edge_messages(&self, src: usize, dst: usize) -> u64 {
        self.messages[src * self.size + dst].load(Ordering::Relaxed)
    }

    /// Bytes sent on the directed edge `src -> dst`.
    pub fn edge_bytes(&self, src: usize, dst: usize) -> u64 {
        self.bytes[src * self.size + dst].load(Ordering::Relaxed)
    }

    /// Number of ranks the stats matrix covers.
    pub fn n_ranks(&self) -> usize {
        self.size
    }

    /// Accumulates this run's per-rank and total message/byte counts into
    /// the global `ffw_obs` registry: `mpi.bytes.rank{r}` /
    /// `mpi.messages.rank{r}` hold what rank `r` *sent*, `mpi.bytes.total` /
    /// `mpi.messages.total` the all-edge sums. Counters are monotonic, so
    /// repeated launches (e.g. fault-tolerant relaunches) accumulate. No-op
    /// while the recorder is off.
    pub fn record_obs(&self) {
        if !ffw_obs::enabled() {
            return;
        }
        for src in 0..self.size {
            let (mut bytes, mut msgs) = (0u64, 0u64);
            for dst in 0..self.size {
                bytes += self.edge_bytes(src, dst);
                msgs += self.edge_messages(src, dst);
            }
            ffw_obs::counter(&format!("mpi.bytes.rank{src}")).add(bytes);
            ffw_obs::counter(&format!("mpi.messages.rank{src}")).add(msgs);
        }
        ffw_obs::counter("mpi.bytes.total").add(self.total_bytes());
        ffw_obs::counter("mpi.messages.total").add(self.total_messages());
    }
}

/// Diagnosable replacement for `std::sync::Barrier`: waiters can time out,
/// inspect the global state, and resume — and the generation they are stuck
/// on is visible to the deadlock analysis.
struct Barrier {
    state: Mutex<BarrierState>,
    cond: Condvar,
}

struct BarrierState {
    generation: u64,
    arrived: usize,
}

struct Shared {
    size: usize,
    /// mailboxes[src * size + dst]
    mailboxes: Vec<Mailbox>,
    stats: CommStats,
    barrier: Barrier,
    /// What each rank is currently blocked on (the watchdog's input).
    registry: Mutex<Vec<WaitState>>,
    /// Per-rank event traces for post-run validation.
    traces: Vec<Mutex<Vec<Event>>>,
    /// Watchdog timeout for blocking waits.
    timeout: Duration,
    /// First confirmed deadlock report. Later watchdog firings re-raise this
    /// one, so every stuck rank fails with the *original* diagnosis rather
    /// than a cascade of "peer panicked" follow-ups.
    verdict: Mutex<Option<String>>,
    /// Activated fault plan, if this launch injects faults.
    faults: Option<ActiveFaults>,
}

impl Shared {
    fn set_state(&self, rank: usize, state: WaitState) {
        self.registry.lock()[rank] = state;
    }

    /// Watchdog invoked by `rank` when a blocking wait times out. Every
    /// positive diagnosis is re-confirmed against a second snapshot taken
    /// after a short delay, so a transient state observed mid-transition can
    /// never produce a report.
    ///
    /// Outcomes:
    /// * `Ok(())` — no confirmed problem with *this rank's* wait; keep
    ///   waiting. (Another rank's doomed wait is its own to report: every
    ///   blocking wait polls, so errors cascade rank by rank.)
    /// * `Err(PeerDead)` — this rank's wait depends on a rank that already
    ///   finished or panicked and can never satisfy it. The caller turns
    ///   this into a typed error value (checked receives) or a panic
    ///   (legacy receives, collectives).
    /// * panic — a confirmed cycle of live ranks: a protocol bug, not a
    ///   survivable fault. The first verdict is stored so every stuck rank
    ///   re-raises the *original* diagnosis.
    fn watchdog_poll(&self, rank: usize) -> Result<(), FaultError> {
        if let Some(report) = self.verdict.lock().clone() {
            panic!("{report}");
        }
        const CONFIRM: Duration = Duration::from_millis(50);
        // This rank's own wait first: a dependency on a dead rank is a
        // recoverable fault surfaced as a value.
        if let Some(peer) = self.dead_dependency_of(rank) {
            std::thread::sleep(CONFIRM);
            if self.dead_dependency_of(rank) == Some(peer) {
                let report = DeadlockReport {
                    states: self.registry.lock().clone(),
                    cycle: None,
                    dead_dependency: Some((rank, peer)),
                };
                return Err(FaultError::PeerDead {
                    rank,
                    peer,
                    detail: format!("ffw-mpi: {report}"),
                });
            }
            return Ok(());
        }
        let Some(first) = self.diagnose_once() else {
            return Ok(());
        };
        std::thread::sleep(CONFIRM);
        let confirmed = match self.diagnose_once() {
            Some(second) if first == second => second,
            _ => return Ok(()),
        };
        if confirmed.dead_dependency.is_some() {
            // Some other rank's wait is doomed; it will surface the error
            // itself on its own poll. This rank's wait may still be
            // satisfiable (e.g. by a rank that errors out and re-routes).
            return Ok(());
        }
        let mut verdict = self.verdict.lock();
        let report = verdict
            .get_or_insert_with(|| format!("ffw-mpi: {confirmed}"))
            .clone();
        drop(verdict);
        panic!("{report}");
    }

    /// If `rank`'s current wait depends on a rank that has finished or
    /// panicked (and cannot be satisfied from queued messages), returns that
    /// dead rank. Mirrors the conservative rules of
    /// [`ffw_check::diagnose_deadlock`] but checks only `rank`'s own wait.
    fn dead_dependency_of(&self, rank: usize) -> Option<usize> {
        let snapshot = self.registry.lock().clone();
        match snapshot[rank] {
            WaitState::RecvWait { src, tag } => {
                let dead = matches!(snapshot[src], WaitState::Finished | WaitState::Panicked);
                let queued = self.mailboxes[src * self.size + rank].has_matching(tag);
                (dead && !queued).then_some(src)
            }
            WaitState::BarrierWait { generation } => {
                snapshot.iter().enumerate().find_map(|(other, state)| {
                    if other == rank {
                        return None;
                    }
                    let arrived = matches!(
                        state,
                        WaitState::BarrierWait { generation: g } if *g == generation
                    );
                    if arrived {
                        return None;
                    }
                    matches!(state, WaitState::Finished | WaitState::Panicked).then_some(other)
                })
            }
            _ => None,
        }
    }

    fn diagnose_once(&self) -> Option<ffw_check::DeadlockReport> {
        let snapshot = self.registry.lock().clone();
        diagnose_deadlock(&snapshot, |src, dst, tag| {
            self.mailboxes[src * self.size + dst].has_matching(tag)
        })
    }

    fn trace(&self, rank: usize, event: Event) {
        self.traces[rank].lock().push(event);
    }
}

/// A rank's handle to the communicator.
pub struct Comm {
    rank: usize,
    shared: Arc<Shared>,
}

/// Tags with the high bit set are reserved for collectives.
const COLLECTIVE_TAG: u32 = 0x8000_0000;

impl Comm {
    /// This rank's index.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks.
    pub fn size(&self) -> usize {
        self.shared.size
    }

    /// Shared communication statistics (live view).
    pub fn stats(&self) -> &CommStats {
        &self.shared.stats
    }

    /// Consults the active fault plan (if any) at the start of a runtime
    /// operation: may delay the rank (straggler model) or crash it with a
    /// typed [`FaultError::InjectedCrash`], recording the fault in the
    /// trace first. A no-op (one `Option` check) when no plan is active.
    fn fault_tick(&self) {
        let Some(faults) = &self.shared.faults else {
            return;
        };
        match faults.on_op(self.rank) {
            OpAction::Proceed => {}
            OpAction::Delay { delay_ms, .. } => {
                self.shared
                    .trace(self.rank, Event::Fault(FaultEvent::Straggle { delay_ms }));
                std::thread::sleep(Duration::from_millis(delay_ms));
            }
            OpAction::Crash { op } => {
                self.shared
                    .trace(self.rank, Event::Fault(FaultEvent::InjectedCrash { op }));
                panic_any(FaultError::InjectedCrash {
                    rank: self.rank,
                    op,
                });
            }
        }
    }

    /// Buffered, non-blocking send. User tags must not set the high bit.
    ///
    /// Panics if fault injection makes the send unrecoverable; fault-aware
    /// callers use [`Comm::send_checked`] instead.
    pub fn send(&self, dst: usize, tag: u32, payload: Payload) {
        if let Err(e) = self.send_checked(dst, tag, payload) {
            panic!("ffw-mpi: {e}");
        }
    }

    /// Fallible send: retries delivery with bounded exponential backoff when
    /// fault injection drops the message, and returns
    /// [`FaultError::SendLost`] (declaring `dst` dead) once the retry
    /// budget is exhausted. Without an active fault plan this always
    /// succeeds.
    pub fn send_checked(&self, dst: usize, tag: u32, payload: Payload) -> Result<(), FaultError> {
        assert!(
            dst < self.shared.size,
            "send: invalid destination rank {dst} (communicator has {} ranks)",
            self.shared.size
        );
        assert_eq!(
            tag & COLLECTIVE_TAG,
            0,
            "send: user tag {tag:#x} sets the reserved collective bit"
        );
        self.fault_tick();
        if let Some(faults) = &self.shared.faults {
            let drops = faults.forced_drops(self.rank, dst);
            let retry = faults.retry();
            for attempt in 0..drops {
                if attempt >= retry.max_retries {
                    let attempts = attempt + 1;
                    self.shared.trace(
                        self.rank,
                        Event::Fault(FaultEvent::SendRetriesExhausted { dst, tag, attempts }),
                    );
                    return Err(FaultError::SendLost {
                        rank: self.rank,
                        dst,
                        tag,
                        attempts,
                    });
                }
                self.shared.trace(
                    self.rank,
                    Event::Fault(FaultEvent::SendDropped {
                        dst,
                        tag,
                        attempt: attempt + 1,
                    }),
                );
                std::thread::sleep(Duration::from_millis(retry.backoff_ms(attempt)));
            }
        }
        self.shared.trace(
            self.rank,
            Event::Send {
                dst,
                tag,
                bytes: payload.n_bytes(),
            },
        );
        self.send_raw(dst, tag, payload);
        Ok(())
    }

    fn send_raw(&self, dst: usize, tag: u32, payload: Payload) {
        self.shared.stats.record(self.rank, dst, payload.n_bytes());
        self.shared.mailboxes[self.rank * self.shared.size + dst].push(tag, payload);
    }

    /// Blocking receive of the message with the given source and tag.
    ///
    /// Panics (with the watchdog's report) if `src` dies before sending;
    /// fault-aware callers use [`Comm::recv_checked`] instead.
    pub fn recv(&self, src: usize, tag: u32) -> Payload {
        match self.recv_checked(src, tag) {
            Ok(payload) => payload,
            Err(e) => panic!("ffw-mpi: {e}"),
        }
    }

    /// Fallible blocking receive: returns [`FaultError::PeerDead`] (with
    /// the watchdog's wait-for-graph report) if `src` finishes or panics
    /// without having sent a matching message, instead of panicking.
    pub fn recv_checked(&self, src: usize, tag: u32) -> Result<Payload, FaultError> {
        assert!(
            src < self.shared.size,
            "recv: invalid source rank {src} (communicator has {} ranks)",
            self.shared.size
        );
        assert_eq!(
            tag & COLLECTIVE_TAG,
            0,
            "recv: user tag {tag:#x} sets the reserved collective bit"
        );
        self.fault_tick();
        let payload = self.recv_raw_checked(src, tag)?;
        self.shared.trace(
            self.rank,
            Event::Recv {
                src,
                tag,
                bytes: payload.n_bytes(),
            },
        );
        Ok(payload)
    }

    /// Infallible receive for the collective implementations: a dead peer
    /// mid-collective is not recoverable in-band, so it panics with the
    /// watchdog report.
    fn recv_raw(&self, src: usize, tag: u32) -> Payload {
        match self.recv_raw_checked(src, tag) {
            Ok(payload) => payload,
            Err(e) => panic!("ffw-mpi: {e}"),
        }
    }

    /// Blocking receive with the deadlock watchdog. The fast path (message
    /// already queued) touches only the mailbox lock; the slow path publishes
    /// a `RecvWait` state and waits with a timeout, diagnosing the global
    /// wait-for graph whenever the timeout fires. Returns an error if this
    /// wait can never be satisfied because the peer died.
    fn recv_raw_checked(&self, src: usize, tag: u32) -> Result<Payload, FaultError> {
        let mailbox = &self.shared.mailboxes[src * self.shared.size + self.rank];
        if let Some(payload) = mailbox.try_pop_matching(tag) {
            return Ok(payload);
        }
        self.shared
            .set_state(self.rank, WaitState::RecvWait { src, tag });
        let mut q = mailbox.queue.lock();
        loop {
            if let Some(pos) = q.iter().position(|(t, _)| *t == tag) {
                let payload = q.remove(pos).expect("position valid").1;
                drop(q);
                self.shared.set_state(self.rank, WaitState::Running);
                return Ok(payload);
            }
            let result = mailbox.cond.wait_for(&mut q, self.shared.timeout);
            if result.timed_out() {
                // Diagnose without holding the queue lock (the analysis
                // inspects other mailboxes; never hold two mailbox locks).
                drop(q);
                if let Err(e) = self.shared.watchdog_poll(self.rank) {
                    self.shared.set_state(self.rank, WaitState::Running);
                    if let FaultError::PeerDead { peer, .. } = &e {
                        self.shared.trace(
                            self.rank,
                            Event::Fault(FaultEvent::PeerDeclaredDead { peer: *peer }),
                        );
                    }
                    return Err(e);
                }
                q = mailbox.queue.lock();
            }
        }
    }

    /// Non-blocking receive: returns `None` if no matching message has
    /// arrived yet (used by the communication/computation overlap pipeline).
    pub fn try_recv(&self, src: usize, tag: u32) -> Option<Payload> {
        assert!(
            src < self.shared.size,
            "try_recv: invalid source rank {src} (communicator has {} ranks)",
            self.shared.size
        );
        assert_eq!(
            tag & COLLECTIVE_TAG,
            0,
            "try_recv: user tag {tag:#x} sets the reserved collective bit"
        );
        self.fault_tick();
        let got = self.shared.mailboxes[src * self.shared.size + self.rank].try_pop_matching(tag);
        let mut trace = self.shared.traces[self.rank].lock();
        match &got {
            Some(payload) => trace.push(Event::TryRecvHit {
                src,
                tag,
                bytes: payload.n_bytes(),
            }),
            None => {
                // Coalesce consecutive misses on the same edge so polling
                // loops cannot grow the trace without bound.
                if let Some(Event::TryRecvMiss {
                    src: s,
                    tag: t,
                    polls,
                }) = trace.last_mut()
                {
                    if *s == src && *t == tag {
                        *polls += 1;
                        return got;
                    }
                }
                trace.push(Event::TryRecvMiss { src, tag, polls: 1 });
            }
        }
        drop(trace);
        got
    }

    /// Synchronizes all ranks.
    pub fn barrier(&self) {
        self.fault_tick();
        self.shared.trace(
            self.rank,
            Event::Collective {
                kind: CollectiveKind::Barrier,
                root: 0,
            },
        );
        let barrier = &self.shared.barrier;
        let mut st = barrier.state.lock();
        let generation = st.generation;
        st.arrived += 1;
        if st.arrived == self.shared.size {
            st.arrived = 0;
            st.generation += 1;
            drop(st);
            barrier.cond.notify_all();
            return;
        }
        self.shared
            .set_state(self.rank, WaitState::BarrierWait { generation });
        loop {
            if st.generation != generation {
                break;
            }
            let result = barrier.cond.wait_for(&mut st, self.shared.timeout);
            if result.timed_out() && st.generation == generation {
                drop(st);
                // A dead peer can never arrive at the barrier: that is not
                // recoverable in-band, so surface it as a panic.
                if let Err(e) = self.shared.watchdog_poll(self.rank) {
                    panic!("ffw-mpi: {e}");
                }
                st = barrier.state.lock();
            }
        }
        drop(st);
        self.shared.set_state(self.rank, WaitState::Running);
    }

    /// Element-wise sum-allreduce over complex data (in place; all ranks end
    /// with the global sum). Root-based: gather to rank 0, reduce, broadcast.
    pub fn allreduce_sum_c64(&self, data: &mut [(f64, f64)]) {
        self.trace_collective(CollectiveKind::AllreduceSumC64, 0);
        if self.rank == 0 {
            for src in 1..self.size() {
                let part = self.recv_raw(src, COLLECTIVE_TAG | 1).into_c64();
                assert_eq!(
                    part.len(),
                    data.len(),
                    "allreduce_sum_c64: rank {src} contributed {} elements but rank 0 \
                     holds {} — all ranks must pass equal-length buffers",
                    part.len(),
                    data.len()
                );
                for (d, p) in data.iter_mut().zip(part) {
                    d.0 += p.0;
                    d.1 += p.1;
                }
            }
            for dst in 1..self.size() {
                self.send_raw(dst, COLLECTIVE_TAG | 2, Payload::C64(data.to_vec()));
            }
        } else {
            self.send_raw(0, COLLECTIVE_TAG | 1, Payload::C64(data.to_vec()));
            let result = self.recv_raw(0, COLLECTIVE_TAG | 2).into_c64();
            data.copy_from_slice(&result);
        }
    }

    /// Sum-allreduce over real data.
    pub fn allreduce_sum_f64(&self, data: &mut [f64]) {
        self.trace_collective(CollectiveKind::AllreduceSumF64, 0);
        if self.rank == 0 {
            for src in 1..self.size() {
                let part = self.recv_raw(src, COLLECTIVE_TAG | 3).into_f64();
                assert_eq!(
                    part.len(),
                    data.len(),
                    "allreduce_sum_f64: rank {src} contributed {} elements but rank 0 \
                     holds {} — all ranks must pass equal-length buffers",
                    part.len(),
                    data.len()
                );
                for (d, p) in data.iter_mut().zip(part) {
                    *d += p;
                }
            }
            for dst in 1..self.size() {
                self.send_raw(dst, COLLECTIVE_TAG | 4, Payload::F64(data.to_vec()));
            }
        } else {
            self.send_raw(0, COLLECTIVE_TAG | 3, Payload::F64(data.to_vec()));
            let result = self.recv_raw(0, COLLECTIVE_TAG | 4).into_f64();
            data.copy_from_slice(&result);
        }
    }

    /// Max-allreduce over a single value.
    pub fn allreduce_max_f64(&self, value: f64) -> f64 {
        self.trace_collective(CollectiveKind::AllreduceMaxF64, 0);
        let mut buf = [value];
        if self.rank == 0 {
            for src in 1..self.size() {
                let part = self.recv_raw(src, COLLECTIVE_TAG | 5).into_f64();
                buf[0] = buf[0].max(part[0]);
            }
            for dst in 1..self.size() {
                self.send_raw(dst, COLLECTIVE_TAG | 6, Payload::F64(buf.to_vec()));
            }
        } else {
            self.send_raw(0, COLLECTIVE_TAG | 5, Payload::F64(buf.to_vec()));
            buf[0] = self.recv_raw(0, COLLECTIVE_TAG | 6).into_f64()[0];
        }
        buf[0]
    }

    /// Broadcast from `root` to all ranks (in place).
    pub fn broadcast_c64(&self, root: usize, data: &mut Vec<(f64, f64)>) {
        assert!(
            root < self.shared.size,
            "broadcast_c64: root {root} out of range (communicator has {} ranks)",
            self.shared.size
        );
        self.trace_collective(CollectiveKind::BroadcastC64, root);
        if self.rank == root {
            for dst in 0..self.size() {
                if dst != root {
                    self.send_raw(dst, COLLECTIVE_TAG | 7, Payload::C64(data.clone()));
                }
            }
        } else {
            *data = self.recv_raw(root, COLLECTIVE_TAG | 7).into_c64();
        }
    }

    /// Gathers variable-length complex chunks to `root`; returns
    /// `Some(chunks by rank)` on the root, `None` elsewhere.
    pub fn gather_c64(&self, root: usize, chunk: &[(f64, f64)]) -> Option<Vec<Vec<(f64, f64)>>> {
        assert!(
            root < self.shared.size,
            "gather_c64: root {root} out of range (communicator has {} ranks)",
            self.shared.size
        );
        self.trace_collective(CollectiveKind::GatherC64, root);
        if self.rank == root {
            let mut out = vec![Vec::new(); self.size()];
            out[root] = chunk.to_vec();
            for (src, slot) in out.iter_mut().enumerate() {
                if src != root {
                    *slot = self.recv_raw(src, COLLECTIVE_TAG | 8).into_c64();
                }
            }
            Some(out)
        } else {
            self.send_raw(root, COLLECTIVE_TAG | 8, Payload::C64(chunk.to_vec()));
            None
        }
    }

    fn trace_collective(&self, kind: CollectiveKind, root: usize) {
        // Every collective counts as one operation for fault injection.
        self.fault_tick();
        self.shared
            .trace(self.rank, Event::Collective { kind, root });
    }
}

/// Opaque handle exposing post-run communication statistics.
pub struct RunStats {
    inner: Arc<Shared>,
}

impl RunStats {
    /// The recorded communication statistics of the finished run.
    pub fn stats(&self) -> &CommStats {
        &self.inner.stats
    }

    /// The recorded event trace of `rank` (for inspection in tests and
    /// tooling; the run has already been validated against it).
    pub fn events(&self, rank: usize) -> Vec<Event> {
        self.inner.traces[rank].lock().clone()
    }
}

/// Resolves the watchdog timeout. Precedence (highest first):
/// `FFW_DEADLOCK_TIMEOUT_MS` environment variable, the programmatic value
/// from [`Runtime::deadlock_timeout`], the 1000 ms default. Blocking waits
/// re-check the global wait-for graph at this interval; a confirmed deadlock
/// panics with a per-rank report.
fn resolve_timeout(programmatic: Option<Duration>) -> Duration {
    match std::env::var("FFW_DEADLOCK_TIMEOUT_MS") {
        Ok(raw) => match raw.trim().parse::<u64>() {
            Ok(ms) if ms >= 1 => Duration::from_millis(ms),
            _ => panic!(
                "FFW_DEADLOCK_TIMEOUT_MS={raw:?} is invalid: expected a positive \
                 integer number of milliseconds"
            ),
        },
        Err(_) => programmatic.unwrap_or(Duration::from_millis(1000)),
    }
}

/// How one rank of a [`Runtime::launch`] ended.
#[derive(Debug)]
pub enum RankOutcome<T> {
    /// The rank closure returned normally.
    Done(T),
    /// The rank was crashed by fault injection.
    Crashed(FaultError),
}

impl<T> RankOutcome<T> {
    /// The rank's result, if it completed.
    pub fn into_done(self) -> Option<T> {
        match self {
            RankOutcome::Done(value) => Some(value),
            RankOutcome::Crashed(_) => None,
        }
    }

    /// The crash that killed the rank, if any.
    pub fn crash(&self) -> Option<&FaultError> {
        match self {
            RankOutcome::Done(_) => None,
            RankOutcome::Crashed(e) => Some(e),
        }
    }
}

/// Result of a [`Runtime::launch`]: per-rank outcomes plus statistics.
pub struct Launch<T> {
    /// One outcome per rank, in rank order.
    pub outcomes: Vec<RankOutcome<T>>,
    /// Communication statistics and event traces of the run.
    pub stats: RunStats,
}

impl<T> Launch<T> {
    /// Unwraps a launch that cannot have crashed ranks (no fault plan).
    fn into_unfaulted(self) -> (Vec<T>, RunStats) {
        let out = self
            .outcomes
            .into_iter()
            .map(|outcome| match outcome {
                RankOutcome::Done(value) => value,
                RankOutcome::Crashed(e) => {
                    panic!("ffw-mpi: rank crashed without a fault plan: {e}")
                }
            })
            .collect();
        (out, self.stats)
    }
}

/// Injected crashes unwind via `panic_any(FaultError)` and are caught by
/// the launch — they are data, not failures — so the default panic hook's
/// "thread panicked" report and backtrace are just noise. Replace the hook
/// once, process-wide, with one that stays silent for `FaultError` payloads
/// and delegates every other panic to the previous hook unchanged.
fn install_quiet_crash_hook() {
    static HOOK: std::sync::Once = std::sync::Once::new();
    HOOK.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<FaultError>().is_none() {
                prev(info);
            }
        }));
    });
}

/// Builder for a verified multi-rank launch: programmatic watchdog timeout
/// and optional seeded fault injection.
///
/// ```
/// use ffw_mpi::Runtime;
/// use std::time::Duration;
///
/// let launch = Runtime::new(2)
///     .deadlock_timeout(Duration::from_millis(200))
///     .launch(|comm| comm.rank() * 10);
/// assert_eq!(launch.outcomes.len(), 2);
/// ```
#[derive(Debug, Default)]
pub struct Runtime {
    n_ranks: usize,
    timeout: Option<Duration>,
    fault_plan: Option<FaultPlan>,
}

impl Runtime {
    /// A runtime for `n_ranks` ranks with default settings.
    pub fn new(n_ranks: usize) -> Self {
        Runtime {
            n_ranks,
            timeout: None,
            fault_plan: None,
        }
    }

    /// Sets the deadlock-watchdog timeout programmatically. The
    /// `FFW_DEADLOCK_TIMEOUT_MS` environment variable, if set, still takes
    /// precedence (env > builder > 1000 ms default).
    pub fn deadlock_timeout(mut self, timeout: Duration) -> Self {
        self.timeout = Some(timeout);
        self
    }

    /// Injects the given seeded fault plan into the launch.
    pub fn fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// Launches the ranks and collects per-rank [`RankOutcome`]s.
    ///
    /// Unlike [`run`], a rank crashed by fault injection becomes
    /// [`RankOutcome::Crashed`] instead of a re-raised panic, so drivers
    /// can observe which ranks died and degrade gracefully. Organic (non-
    /// injected) panics are still re-raised, lowest rank first. Post-run
    /// trace validation runs in a fault-tolerant mode when ranks died
    /// (message leaks and truncated collective sequences are expected
    /// consequences of a death) and in strict mode otherwise.
    pub fn launch<F, T>(self, f: F) -> Launch<T>
    where
        F: Fn(Comm) -> T + Send + Sync,
        T: Send,
    {
        let n_ranks = self.n_ranks;
        let timeout = resolve_timeout(self.timeout);
        if self.fault_plan.is_some() {
            install_quiet_crash_hook();
        }
        assert!(n_ranks >= 1);
        assert!(
            timeout >= Duration::from_millis(1),
            "watchdog timeout too small"
        );
        let shared = Arc::new(Shared {
            size: n_ranks,
            mailboxes: (0..n_ranks * n_ranks).map(|_| Mailbox::new()).collect(),
            stats: CommStats::new(n_ranks),
            barrier: Barrier {
                state: Mutex::new(BarrierState {
                    generation: 0,
                    arrived: 0,
                }),
                cond: Condvar::new(),
            },
            registry: Mutex::new(vec![WaitState::Running; n_ranks]),
            traces: (0..n_ranks).map(|_| Mutex::new(Vec::new())).collect(),
            timeout,
            verdict: Mutex::new(None),
            faults: self.fault_plan.map(|plan| plan.activate(n_ranks)),
        });
        let results: Vec<Mutex<Option<T>>> = (0..n_ranks).map(|_| Mutex::new(None)).collect();
        let crashes: Vec<Mutex<Option<FaultError>>> =
            (0..n_ranks).map(|_| Mutex::new(None)).collect();
        let panics: Mutex<Vec<(usize, Box<dyn std::any::Any + Send>)>> = Mutex::new(Vec::new());

        // Each rank runs under catch_unwind so a panic marks it Panicked in
        // the registry instead of silently vanishing: peers blocked on it
        // then get a diagnosed dead-dependency error rather than hanging
        // forever. An injected crash (typed FaultError payload) becomes
        // data; any other panic is a genuine failure to re-raise.
        let run_rank = |rank: usize| {
            let comm = Comm {
                rank,
                shared: Arc::clone(&shared),
            };
            match catch_unwind(AssertUnwindSafe(|| f(comm))) {
                Ok(value) => {
                    shared.set_state(rank, WaitState::Finished);
                    *results[rank].lock() = Some(value);
                }
                Err(payload) => {
                    shared.set_state(rank, WaitState::Panicked);
                    match payload.downcast::<FaultError>() {
                        Ok(fault) => *crashes[rank].lock() = Some(*fault),
                        Err(other) => panics.lock().push((rank, other)),
                    }
                }
            }
        };

        std::thread::scope(|scope| {
            for rank in 1..n_ranks {
                let run_rank = &run_rank;
                std::thread::Builder::new()
                    .name(format!("ffw-mpi-{rank}"))
                    .spawn_scoped(scope, move || run_rank(rank))
                    .expect("spawn rank");
            }
            run_rank(0);
        });

        let mut panics = panics.into_inner();
        if !panics.is_empty() {
            panics.sort_by_key(|(rank, _)| *rank);
            std::panic::resume_unwind(panics.remove(0).1);
        }

        // Statically validate the complete traces plus whatever was left
        // undelivered in the mailboxes. Runs in which a rank died (injected
        // crash, exhausted send retries, or a peer declared dead) use the
        // fault-tolerant validator: leaks and truncated collective
        // sequences are expected fallout of a death, while self-sends,
        // reserved tags and true collective divergence remain hard errors.
        let mut leaked = Vec::new();
        for src in 0..n_ranks {
            for dst in 0..n_ranks {
                let q = shared.mailboxes[src * n_ranks + dst].queue.lock();
                for (tag, payload) in q.iter() {
                    leaked.push(LeakedMessage {
                        src,
                        dst,
                        tag: *tag,
                        bytes: payload.n_bytes(),
                    });
                }
            }
        }
        let traces: Vec<Vec<Event>> = shared.traces.iter().map(|t| t.lock().clone()).collect();
        let any_crashed = crashes.iter().any(|c| c.lock().is_some());
        let any_death_event = traces.iter().flatten().any(|e| {
            matches!(
                e,
                Event::Fault(
                    FaultEvent::SendRetriesExhausted { .. } | FaultEvent::PeerDeclaredDead { .. }
                )
            )
        });
        let violations = if any_crashed || any_death_event {
            validate_traces_faulty(&traces, &leaked)
        } else {
            validate_traces(&traces, &leaked)
        };
        if !violations.is_empty() {
            panic!("{}", render_report(&violations));
        }

        let outcomes = results
            .into_iter()
            .zip(crashes)
            .enumerate()
            .map(
                |(rank, (result, crash))| match (result.into_inner(), crash.into_inner()) {
                    (Some(value), None) => RankOutcome::Done(value),
                    (None, Some(fault)) => RankOutcome::Crashed(fault),
                    _ => panic!("ffw-mpi: rank {rank} produced neither result nor crash"),
                },
            )
            .collect();
        Launch {
            outcomes,
            stats: RunStats { inner: shared },
        }
    }
}

/// Launches `n_ranks` ranks running `f` concurrently and returns their
/// results in rank order, along with the communication statistics.
///
/// The run is verified: blocked ranks are watched for deadlock (see
/// [`resolve_timeout`]'s `FFW_DEADLOCK_TIMEOUT_MS` knob), and on normal exit
/// the recorded communication traces are statically validated — undelivered
/// messages, self-sends, reserved-tag misuse, and cross-rank
/// collective-ordering mismatches all fail the run with a report. If any rank
/// panics, the lowest-ranked panic is re-raised after every rank has stopped.
pub fn run<F, T>(n_ranks: usize, f: F) -> (Vec<T>, RunStats)
where
    F: Fn(Comm) -> T + Send + Sync,
    T: Send,
{
    Runtime::new(n_ranks).launch(f).into_unfaulted()
}

/// [`run`] with an explicit deadlock-watchdog timeout (tests use short
/// timeouts to detect seeded deadlocks quickly). The
/// `FFW_DEADLOCK_TIMEOUT_MS` environment variable, if set, overrides the
/// explicit value.
pub fn run_with_timeout<F, T>(n_ranks: usize, timeout: Duration, f: F) -> (Vec<T>, RunStats)
where
    F: Fn(Comm) -> T + Send + Sync,
    T: Send,
{
    Runtime::new(n_ranks)
        .deadlock_timeout(timeout)
        .launch(f)
        .into_unfaulted()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_to_point_roundtrip() {
        let (results, _) = run(2, |comm| {
            if comm.rank() == 0 {
                comm.send(1, 7, Payload::F64(vec![1.0, 2.0, 3.0]));
                comm.recv(1, 8).into_f64()
            } else {
                let got = comm.recv(0, 7).into_f64();
                let doubled: Vec<f64> = got.iter().map(|v| v * 2.0).collect();
                comm.send(0, 8, Payload::F64(doubled.clone()));
                doubled
            }
        });
        assert_eq!(results[0], vec![2.0, 4.0, 6.0]);
        assert_eq!(results[1], vec![2.0, 4.0, 6.0]);
    }

    #[test]
    fn tag_matching_out_of_order() {
        let (results, _) = run(2, |comm| {
            if comm.rank() == 0 {
                comm.send(1, 1, Payload::U64(vec![111]));
                comm.send(1, 2, Payload::U64(vec![222]));
                0
            } else {
                // Receive in the opposite order of sending.
                let b = comm.recv(0, 2).into_u64()[0];
                let a = comm.recv(0, 1).into_u64()[0];
                assert_eq!((a, b), (111, 222));
                1
            }
        });
        assert_eq!(results, vec![0, 1]);
    }

    #[test]
    fn allreduce_sums_across_ranks() {
        let n = 5;
        let (results, _) = run(n, |comm| {
            let mut data = vec![(comm.rank() as f64, 1.0); 3];
            comm.allreduce_sum_c64(&mut data);
            data
        });
        let expect_re = (0..n).sum::<usize>() as f64;
        for r in results {
            for (re, im) in r {
                assert_eq!(re, expect_re);
                assert_eq!(im, n as f64);
            }
        }
    }

    #[test]
    fn allreduce_f64_and_max() {
        let (results, _) = run(4, |comm| {
            let mut v = vec![comm.rank() as f64];
            comm.allreduce_sum_f64(&mut v);
            let m = comm.allreduce_max_f64(comm.rank() as f64 * 10.0);
            (v[0], m)
        });
        for (s, m) in results {
            assert_eq!(s, 6.0);
            assert_eq!(m, 30.0);
        }
    }

    #[test]
    fn broadcast_and_gather() {
        let (results, _) = run(3, |comm| {
            let mut data = if comm.rank() == 1 {
                vec![(9.0, -1.0); 4]
            } else {
                Vec::new()
            };
            comm.broadcast_c64(1, &mut data);
            assert_eq!(data.len(), 4);
            let chunk = vec![(comm.rank() as f64, 0.0); comm.rank() + 1];
            let gathered = comm.gather_c64(0, &chunk);
            if comm.rank() == 0 {
                let g = gathered.expect("root gathers");
                assert_eq!(g[2].len(), 3);
                assert_eq!(g[1][0].0, 1.0);
            }
            data[0].0
        });
        assert!(results.iter().all(|&v| v == 9.0));
    }

    #[test]
    fn barrier_synchronizes() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let counter = AtomicUsize::new(0);
        let (results, _) = run(4, |comm| {
            counter.fetch_add(1, Ordering::SeqCst);
            comm.barrier();
            // After the barrier, every rank must observe all 4 increments.
            counter.load(Ordering::SeqCst)
        });
        assert!(results.iter().all(|&v| v == 4));
    }

    #[test]
    fn stats_account_messages_and_bytes() {
        let (_, handle) = run(2, |comm| {
            if comm.rank() == 0 {
                comm.send(1, 0, Payload::C64(vec![(1.0, 2.0); 10]));
            } else {
                let _ = comm.recv(0, 0);
            }
        });
        let stats = handle.stats();
        assert_eq!(stats.edge_messages(0, 1), 1);
        assert_eq!(stats.edge_bytes(0, 1), 160);
        assert_eq!(stats.edge_messages(1, 0), 0);
        assert_eq!(stats.total_bytes(), 160);
    }

    #[test]
    fn try_recv_nonblocking() {
        let (results, _) = run(2, |comm| {
            if comm.rank() == 0 {
                comm.barrier();
                comm.send(1, 3, Payload::U64(vec![5]));
                comm.barrier();
                true
            } else {
                assert!(comm.try_recv(0, 3).is_none(), "nothing sent yet");
                comm.barrier();
                comm.barrier();
                // Now it must be there (sent before the second barrier).
                comm.try_recv(0, 3).is_some()
            }
        });
        assert!(results[1]);
    }

    #[test]
    fn single_rank_collectives_are_identity() {
        let (results, _) = run(1, |comm| {
            let mut v = vec![(1.0, 2.0)];
            comm.allreduce_sum_c64(&mut v);
            let m = comm.allreduce_max_f64(3.5);
            comm.barrier();
            (v[0], m)
        });
        assert_eq!(results[0], ((1.0, 2.0), 3.5));
    }

    // ---- verification-layer tests ------------------------------------------

    const FAST: Duration = Duration::from_millis(80);

    /// Runs `f` expecting a panic; returns the panic message.
    fn panic_message(f: impl FnOnce() + std::panic::UnwindSafe) -> String {
        let payload = catch_unwind(f).expect_err("expected a panic");
        payload
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
            .expect("panic payload is a string")
    }

    #[test]
    fn deadlocked_recv_names_both_ranks() {
        // Rank 0 waits for a message rank 1 never sends; rank 1 finishes.
        let msg = panic_message(|| {
            let _ = run_with_timeout(2, FAST, |comm| {
                if comm.rank() == 0 {
                    let _ = comm.recv(1, 5);
                }
            });
        });
        assert!(msg.contains("deadlock detected"), "got: {msg}");
        assert!(
            msg.contains("rank 0") && msg.contains("rank 1"),
            "got: {msg}"
        );
        assert!(msg.contains("can never satisfy"), "got: {msg}");
    }

    #[test]
    fn mutual_recv_deadlock_reports_cycle() {
        let msg = panic_message(|| {
            let _ = run_with_timeout(2, FAST, |comm| {
                let peer = 1 - comm.rank();
                let _ = comm.recv(peer, 9);
            });
        });
        assert!(msg.contains("deadlock detected"), "got: {msg}");
        assert!(msg.contains("cycle"), "got: {msg}");
    }

    #[test]
    fn undelivered_message_fails_validation() {
        let msg = panic_message(|| {
            let _ = run(2, |comm| {
                if comm.rank() == 0 {
                    comm.send(1, 9, Payload::U64(vec![1, 2, 3]));
                }
            });
        });
        assert!(msg.contains("message leak"), "got: {msg}");
        assert!(
            msg.contains("src=0") && msg.contains("dst=1") && msg.contains("0x9"),
            "got: {msg}"
        );
    }

    #[test]
    fn mismatched_allreduce_lengths_fail_with_diagnostic() {
        // Rank 1 contributes a shorter buffer: the root's length check must
        // fire (and propagate out of `run`) instead of the ranks hanging.
        let msg = panic_message(|| {
            let _ = run_with_timeout(2, FAST, |comm| {
                let mut data = vec![1.0; 4 - comm.rank()];
                comm.allreduce_sum_f64(&mut data);
            });
        });
        assert!(msg.contains("allreduce_sum_f64"), "got: {msg}");
        assert!(msg.contains("equal-length"), "got: {msg}");
    }

    #[test]
    fn wrong_root_gather_fails_with_diagnostic() {
        // Both ranks believe they are the gather root: each waits for the
        // other's chunk — a cycle the watchdog must report.
        let msg = panic_message(|| {
            let _ = run_with_timeout(2, FAST, |comm| {
                let chunk = [(comm.rank() as f64, 0.0)];
                let _ = comm.gather_c64(comm.rank(), &chunk);
            });
        });
        assert!(msg.contains("deadlock detected"), "got: {msg}");
        assert!(msg.contains("cycle"), "got: {msg}");
    }

    #[test]
    fn traces_record_and_coalesce() {
        let (_, handle) = run(2, |comm| {
            if comm.rank() == 0 {
                comm.barrier();
                comm.send(1, 4, Payload::U64(vec![7]));
            } else {
                // Three misses back-to-back must coalesce into one event.
                assert!(comm.try_recv(0, 4).is_none());
                assert!(comm.try_recv(0, 4).is_none());
                assert!(comm.try_recv(0, 4).is_none());
                comm.barrier();
                let _ = comm.recv(0, 4);
            }
        });
        let events = handle.events(1);
        let misses: Vec<_> = events
            .iter()
            .filter_map(|e| match e {
                Event::TryRecvMiss { polls, .. } => Some(*polls),
                _ => None,
            })
            .collect();
        assert_eq!(misses, vec![3], "consecutive misses must coalesce");
        assert!(events
            .iter()
            .any(|e| matches!(e, Event::Recv { src: 0, tag: 4, .. })));
        assert!(handle
            .events(0)
            .iter()
            .any(|e| matches!(e, Event::Send { dst: 1, tag: 4, .. })));
    }

    #[test]
    fn barrier_straggler_panic_is_diagnosed() {
        // Rank 1 panics before ever reaching the barrier: rank 0's watchdog
        // must observe the Panicked dependency and abort its wait, so the run
        // terminates with a diagnosis instead of hanging. (`run` re-raises
        // the lowest-ranked panic, which here is rank 0's deadlock report.)
        let msg = panic_message(|| {
            let _ = run_with_timeout(2, FAST, |comm| {
                if comm.rank() == 0 {
                    comm.barrier();
                } else {
                    panic!("rank 1 exploded");
                }
            });
        });
        assert!(
            msg.contains("deadlock detected") || msg.contains("rank 1 exploded"),
            "got: {msg}"
        );
    }

    // ---- fault-injection tests ---------------------------------------------

    #[test]
    fn builder_timeout_is_programmatic() {
        // Same seeded deadlock as `deadlocked_recv_names_both_ranks`, but the
        // short timeout comes from the builder instead of run_with_timeout.
        let msg = panic_message(|| {
            let _ = Runtime::new(2).deadlock_timeout(FAST).launch(|comm| {
                if comm.rank() == 0 {
                    let _ = comm.recv(1, 5);
                }
            });
        });
        assert!(msg.contains("deadlock detected"), "got: {msg}");
    }

    #[test]
    fn injected_crash_becomes_outcome_and_peer_gets_typed_error() {
        let launch = Runtime::new(2)
            .deadlock_timeout(FAST)
            .fault_plan(FaultPlan::new().crash_at(1, 1))
            .launch(|comm| {
                if comm.rank() == 0 {
                    comm.recv_checked(1, 5).map(|_| ())
                } else {
                    // First op: crashed by the plan before delivery.
                    comm.send_checked(0, 5, Payload::U64(vec![1]))
                }
            });
        match launch.outcomes[1].crash() {
            Some(FaultError::InjectedCrash { rank: 1, op: 1 }) => {}
            other => panic!("expected injected crash on rank 1, got {other:?}"),
        }
        match &launch.outcomes[0] {
            RankOutcome::Done(Err(FaultError::PeerDead {
                rank: 0,
                peer: 1,
                detail,
            })) => {
                assert!(detail.contains("deadlock detected"), "got: {detail}");
            }
            other => panic!("expected typed PeerDead on rank 0, got {other:?}"),
        }
    }

    #[test]
    fn dropped_send_is_retried_and_delivered() {
        // Dropped twice, the retry budget is 3: delivery succeeds and the
        // attempts are visible in the trace.
        let launch = Runtime::new(2)
            .fault_plan(FaultPlan::new().drop_send(0, 1, 1, 2))
            .launch(|comm| {
                if comm.rank() == 0 {
                    comm.send_checked(1, 5, Payload::U64(vec![42])).is_ok() as u64
                } else {
                    comm.recv_checked(0, 5).expect("delivered").into_u64()[0]
                }
            });
        let values: Vec<u64> = launch
            .outcomes
            .into_iter()
            .map(|o| o.into_done().expect("no rank crashed"))
            .collect();
        assert_eq!(values, vec![1, 42]);
        let drops = launch
            .stats
            .events(0)
            .iter()
            .filter(|e| matches!(e, Event::Fault(FaultEvent::SendDropped { .. })))
            .count();
        assert_eq!(drops, 2, "both forced drops must be traced");
    }

    #[test]
    fn exhausted_send_retries_surface_send_lost() {
        // Dropped more times than the retry budget allows: the sender gets
        // a typed SendLost, the receiver a typed PeerDead — no panics, no
        // hangs, and the post-run validation tolerates the fallout.
        let launch = Runtime::new(2)
            .deadlock_timeout(FAST)
            .fault_plan(FaultPlan::new().drop_send(0, 1, 1, 10))
            .launch(|comm| {
                if comm.rank() == 0 {
                    comm.send_checked(1, 5, Payload::U64(vec![42])).map(|_| 0)
                } else {
                    comm.recv_checked(0, 5).map(|p| p.into_u64()[0])
                }
            });
        match &launch.outcomes[0] {
            RankOutcome::Done(Err(FaultError::SendLost {
                rank: 0,
                dst: 1,
                attempts,
                ..
            })) => assert_eq!(*attempts, 4, "initial try + 3 retries"),
            other => panic!("expected SendLost on rank 0, got {other:?}"),
        }
        match &launch.outcomes[1] {
            RankOutcome::Done(Err(FaultError::PeerDead { peer: 0, .. })) => {}
            other => panic!("expected PeerDead on rank 1, got {other:?}"),
        }
    }

    #[test]
    fn straggler_delays_but_does_not_change_results() {
        let body = |comm: &Comm| {
            let mut v = vec![comm.rank() as f64];
            comm.allreduce_sum_f64(&mut v);
            v[0]
        };
        let (clean, _) = run(3, |comm| body(&comm));
        let launch = Runtime::new(3)
            .fault_plan(FaultPlan::new().straggler(1, 1, 4, 2))
            .launch(|comm| body(&comm));
        let slowed: Vec<f64> = launch
            .outcomes
            .into_iter()
            .map(|o| o.into_done().expect("no rank crashed"))
            .collect();
        assert_eq!(clean, slowed);
        assert!(launch
            .stats
            .events(1)
            .iter()
            .any(|e| matches!(e, Event::Fault(FaultEvent::Straggle { .. }))));
    }
}
