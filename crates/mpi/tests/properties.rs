//! Property-based tests for the message-passing runtime: collectives must
//! equal their sequential definitions for arbitrary rank counts and payloads.

use ffw_mpi::{run, Payload};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn allreduce_equals_sequential_sum(
        n_ranks in 1usize..8,
        len in 1usize..64,
        seed in 0u64..10_000,
    ) {
        let (results, _) = run(n_ranks, |comm| {
            let r = comm.rank() as u64;
            let mut data: Vec<(f64, f64)> = (0..len)
                .map(|i| {
                    let v = ((seed.wrapping_mul(31).wrapping_add(r * 17 + i as u64)) % 1000) as f64;
                    (v, -v * 0.5)
                })
                .collect();
            comm.allreduce_sum_c64(&mut data);
            data
        });
        // sequential reference
        let mut expect = vec![(0.0f64, 0.0f64); len];
        for r in 0..n_ranks as u64 {
            for (i, e) in expect.iter_mut().enumerate() {
                let v = ((seed.wrapping_mul(31).wrapping_add(r * 17 + i as u64)) % 1000) as f64;
                e.0 += v;
                e.1 -= v * 0.5;
            }
        }
        for res in &results {
            prop_assert_eq!(res, &expect);
        }
    }

    #[test]
    fn ring_pass_accumulates(
        n_ranks in 2usize..8,
        start in 0u64..100,
    ) {
        // token passed around the ring, each rank adds its id
        let (results, _) = run(n_ranks, move |comm| {
            let me = comm.rank();
            let next = (me + 1) % comm.size();
            let prev = (me + comm.size() - 1) % comm.size();
            if me == 0 {
                comm.send(next, 1, Payload::U64(vec![start]));
                comm.recv(prev, 1).into_u64()[0]
            } else {
                let v = comm.recv(prev, 1).into_u64()[0] + me as u64;
                comm.send(next, 1, Payload::U64(vec![v]));
                v
            }
        });
        let total: u64 = start + (1..n_ranks as u64).sum::<u64>();
        prop_assert_eq!(results[0], total);
    }

    #[test]
    fn gather_broadcast_roundtrip(
        n_ranks in 1usize..6,
        len in 1usize..32,
    ) {
        let (results, _) = run(n_ranks, |comm| {
            let chunk: Vec<(f64, f64)> = (0..len)
                .map(|i| ((comm.rank() * 100 + i) as f64, 0.0))
                .collect();
            let gathered = comm.gather_c64(0, &chunk);
            let mut flat = if comm.rank() == 0 {
                gathered.expect("root").into_iter().flatten().collect()
            } else {
                Vec::new()
            };
            comm.broadcast_c64(0, &mut flat);
            flat.len()
        });
        prop_assert!(results.iter().all(|&l| l == n_ranks * len));
    }
}
