//! Demonstrates the deadlock watchdog: two ranks that each block receiving
//! from the other. Instead of hanging forever, the run panics within the
//! watchdog timeout with the global wait-for graph and the cycle.
//!
//! ```sh
//! cargo run -p ffw-mpi --example deadlock_demo   # exits non-zero, by design
//! ```
//!
//! Tune the timeout with `FFW_DEADLOCK_TIMEOUT_MS` (default 1000).

fn main() {
    println!("starting 2 ranks that recv from each other (this must panic) ...");
    ffw_mpi::run(2, |comm| {
        let peer = 1 - comm.rank();
        // Both ranks block here; neither ever sends.
        let _ = comm.recv(peer, 7);
    });
    unreachable!("the watchdog should have diagnosed the cycle");
}
