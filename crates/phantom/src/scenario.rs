//! The scenario zoo: reproducible imaging scenarios for the regularizer ×
//! scenario quality matrix (EXPERIMENTS.md).
//!
//! A [`Scenario`] bundles the experimental knobs that are *not* part of the
//! solver: the phantom contrast, the transducer [`Aperture`] (full ring,
//! limited arc, sparse mask), an optional seeded complex-Gaussian
//! [`NoiseModel`], and an optional absorption (lossy media via
//! [`Lossy`] / [`lossy_object_from_contrast`]).
//!
//! Determinism contract: every random element is derived from explicit
//! seeds through splitmix64 streams. The noise model draws one independent
//! stream per transmitter, so rows can be generated in any order — or on
//! any number of threads — and the result is bit-identical.

use crate::Phantom;
use ffw_geometry::{Domain, Point2, QuadTree, TransducerArray};
use ffw_numerics::{c64, C64};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Which transducers of a nominal ring participate in the experiment.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Aperture {
    /// The full ring — every view available.
    Full,
    /// A contiguous arc of the given angular width (radians); transmitters
    /// and receivers share the arc. Models one-sided access.
    Arc {
        /// Angular width of the arc in radians, `(0, 2π)`.
        span: f64,
    },
    /// A sparse seeded mask: of the nominal ring positions, keep a random
    /// subset. Models randomly failed or sparsely populated arrays.
    Sparse {
        /// Fraction of ring positions kept, `(0, 1]`.
        keep: f64,
        /// Seed for the mask selection (deterministic).
        seed: u64,
    },
}

impl Aperture {
    /// Builds the transmitter and receiver arrays for this aperture on a
    /// ring of the given radius.
    ///
    /// `n_tx` / `n_rx` are the *nominal* full-ring counts; `Arc` places that
    /// many elements on the arc, `Sparse` keeps a seeded subset of the ring
    /// (at least 2 elements so the problem stays overdetermined in views).
    pub fn build(
        &self,
        n_tx: usize,
        n_rx: usize,
        radius: f64,
    ) -> (TransducerArray, TransducerArray) {
        match *self {
            Aperture::Full => (
                TransducerArray::ring(n_tx, radius),
                TransducerArray::ring(n_rx, radius),
            ),
            Aperture::Arc { span } => {
                assert!(
                    span > 0.0 && span < 2.0 * std::f64::consts::PI,
                    "arc span must be in (0, 2*pi), got {span}"
                );
                (
                    TransducerArray::arc(n_tx, radius, 0.0, span),
                    TransducerArray::arc(n_rx, radius, 0.0, span),
                )
            }
            Aperture::Sparse { keep, seed } => {
                assert!(
                    keep > 0.0 && keep <= 1.0,
                    "keep fraction must be in (0, 1], got {keep}"
                );
                (
                    sparse_ring(n_tx, radius, keep, splitmix64(seed ^ 0x7478)), // "tx"
                    sparse_ring(n_rx, radius, keep, splitmix64(seed ^ 0x7278)), // "rx"
                )
            }
        }
    }
}

/// Keeps a seeded subset of a full ring via a Fisher–Yates prefix, then
/// restores angular order so the geometry stays reproducible to the eye.
fn sparse_ring(count: usize, radius: f64, keep: f64, seed: u64) -> TransducerArray {
    let kept = ((count as f64 * keep).round() as usize).clamp(2, count);
    let mut idx: Vec<usize> = (0..count).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    for i in 0..kept {
        let j = i + (rng.gen::<u64>() % (count - i) as u64) as usize;
        idx.swap(i, j);
    }
    let mut chosen: Vec<usize> = idx[..kept].to_vec();
    chosen.sort_unstable();
    let positions: Vec<Point2> = chosen
        .into_iter()
        .map(|i| {
            let theta = 2.0 * std::f64::consts::PI * i as f64 / count as f64;
            Point2::unit(theta) * radius
        })
        .collect();
    TransducerArray::from_positions(positions)
}

/// Seeded additive complex-Gaussian measurement noise at a target SNR.
///
/// Each transmitter row gets its own splitmix64-derived stream, so the
/// noise is independent of row generation order and thread count, and no
/// stream seed is ever reused across transmitters.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct NoiseModel {
    /// Signal-to-noise ratio in dB (per transmitter row).
    pub snr_db: f64,
    /// Master seed; per-transmitter streams are derived from it.
    pub seed: u64,
}

impl NoiseModel {
    /// The derived stream seed for transmitter `tx`. Distinct transmitters
    /// always get distinct streams (splitmix64 is a bijection composed with
    /// distinct inputs).
    pub fn stream_seed(&self, tx: usize) -> u64 {
        // Golden-ratio spacing keeps inputs distinct for any tx, then
        // splitmix64 scrambles them into well-separated streams.
        splitmix64(self.seed ^ (tx as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// Adds noise to one transmitter row in place. Bit-deterministic in
    /// `(self.seed, tx)` alone.
    pub fn apply_row(&self, tx: usize, row: &mut [C64]) {
        let power: f64 = row.iter().map(|v| v.norm_sqr()).sum::<f64>() / row.len().max(1) as f64;
        if power == 0.0 {
            return;
        }
        let sigma = (power / 10f64.powf(self.snr_db / 10.0) / 2.0).sqrt();
        let mut rng = StdRng::seed_from_u64(self.stream_seed(tx));
        for v in row.iter_mut() {
            *v += c64(sigma * gauss(&mut rng), sigma * gauss(&mut rng));
        }
    }

    /// Adds noise to a full `[n_tx][n_rx]` measurement set in place.
    pub fn apply(&self, measured: &mut [Vec<C64>]) {
        for (tx, row) in measured.iter_mut().enumerate() {
            self.apply_row(tx, row);
        }
    }
}

/// One standard-normal draw via Box–Muller (matches the repo's
/// `ffw_inverse::add_noise` construction, but per-stream).
fn gauss(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// splitmix64 — the standard 64-bit mix (Steele–Lea–Flood), used to derive
/// independent stream seeds from one master seed.
pub fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Wraps a phantom with a uniform loss tangent: where the real contrast is
/// `c`, the complex contrast becomes `c * (1 + i * loss_tangent)` —
/// absorption proportional to the material density.
#[derive(Clone, Debug)]
pub struct Lossy<P> {
    /// The lossless phantom supplying the real contrast.
    pub phantom: P,
    /// Imaginary/real contrast ratio (`>= 0`).
    pub loss_tangent: f64,
}

impl<P: Phantom> Lossy<P> {
    /// The tree-order complex object `O = k0^2 * c * (1 + i*tan_delta)`.
    pub fn object(&self, domain: &Domain, tree: &QuadTree) -> Vec<C64> {
        lossy_object_from_contrast(
            domain,
            tree,
            &self.phantom.rasterize(domain),
            self.loss_tangent,
        )
    }
}

/// Converts a real grid-order contrast raster into a tree-order *lossy*
/// object vector: `O = k0^2 * c * (1 + i * loss_tangent)`.
pub fn lossy_object_from_contrast(
    domain: &Domain,
    tree: &QuadTree,
    contrast: &[f64],
    loss_tangent: f64,
) -> Vec<C64> {
    assert_eq!(contrast.len(), domain.n_pixels());
    assert!(loss_tangent >= 0.0, "loss tangent must be non-negative");
    let k0sq = domain.k0() * domain.k0();
    let complex: Vec<C64> = contrast
        .iter()
        .map(|&c| c64(k0sq * c, k0sq * c * loss_tangent))
        .collect();
    tree.to_tree_order(&complex)
}

/// One named entry of the scenario zoo.
#[derive(Clone, Debug)]
pub struct Scenario {
    /// Short identifier used in the quality matrix and test names.
    pub name: &'static str,
    /// Cylinder permittivity contrast.
    pub contrast: f64,
    /// Cylinder radius as a fraction of the domain side.
    pub radius_factor: f64,
    /// Transducer aperture.
    pub aperture: Aperture,
    /// Optional measurement noise.
    pub noise: Option<NoiseModel>,
    /// Loss tangent of the medium (0 = lossless).
    pub loss_tangent: f64,
}

/// The standard zoo exercised by the regularizer × scenario matrix
/// (`crates/inverse/tests/scenario_zoo.rs`, EXPERIMENTS.md).
pub fn scenario_zoo() -> Vec<Scenario> {
    let arc210 = 7.0 * std::f64::consts::PI / 6.0;
    vec![
        Scenario {
            name: "full_clean",
            contrast: 0.1,
            radius_factor: 0.3,
            aperture: Aperture::Full,
            noise: None,
            loss_tangent: 0.0,
        },
        Scenario {
            name: "full_noisy30",
            contrast: 0.1,
            radius_factor: 0.3,
            aperture: Aperture::Full,
            noise: Some(NoiseModel {
                snr_db: 30.0,
                seed: 0x5EED_0001,
            }),
            loss_tangent: 0.0,
        },
        Scenario {
            name: "arc210_clean",
            contrast: 0.25,
            radius_factor: 0.35,
            aperture: Aperture::Arc { span: arc210 },
            noise: None,
            loss_tangent: 0.0,
        },
        Scenario {
            name: "sparse_half_noisy30",
            contrast: 0.1,
            radius_factor: 0.3,
            aperture: Aperture::Sparse {
                keep: 0.5,
                seed: 0x5EED_0002,
            },
            noise: Some(NoiseModel {
                snr_db: 30.0,
                seed: 0x5EED_0003,
            }),
            loss_tangent: 0.0,
        },
        Scenario {
            name: "full_lossy",
            contrast: 0.1,
            radius_factor: 0.3,
            aperture: Aperture::Full,
            noise: None,
            loss_tangent: 0.2,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Cylinder;
    use std::collections::HashSet;

    fn sample_rows(n_tx: usize, n_rx: usize) -> Vec<Vec<C64>> {
        (0..n_tx)
            .map(|t| {
                (0..n_rx)
                    .map(|r| c64(1.0 + t as f64 * 0.1, 0.5 - r as f64 * 0.05))
                    .collect()
            })
            .collect()
    }

    #[test]
    fn noise_same_seed_is_bit_identical_across_thread_counts() {
        let model = NoiseModel {
            snr_db: 30.0,
            seed: 42,
        };
        let base = sample_rows(8, 16);
        // Sequential reference.
        let mut seq = base.clone();
        model.apply(&mut seq);
        // Four threads, rows interleaved — any partition must agree.
        for n_threads in [1usize, 2, 4] {
            let mut par = base.clone();
            std::thread::scope(|s| {
                for (chunk_id, chunk) in par.chunks_mut(base.len().div_ceil(n_threads)).enumerate()
                {
                    let offset = chunk_id * base.len().div_ceil(n_threads);
                    s.spawn(move || {
                        for (i, row) in chunk.iter_mut().enumerate() {
                            model.apply_row(offset + i, row);
                        }
                    });
                }
            });
            for (a, b) in seq.iter().zip(&par) {
                for (x, y) in a.iter().zip(b) {
                    assert!(x.re.to_bits() == y.re.to_bits() && x.im.to_bits() == y.im.to_bits());
                }
            }
        }
    }

    #[test]
    fn noise_different_seeds_are_statistically_distinct() {
        let base = sample_rows(4, 32);
        let mut a = base.clone();
        let mut b = base.clone();
        NoiseModel {
            snr_db: 20.0,
            seed: 1,
        }
        .apply(&mut a);
        NoiseModel {
            snr_db: 20.0,
            seed: 2,
        }
        .apply(&mut b);
        // The two noise realizations must differ on the vast majority of
        // samples (they are independent Gaussian draws).
        let differing = a
            .iter()
            .flatten()
            .zip(b.iter().flatten())
            .filter(|(x, y)| x != y)
            .count();
        assert!(differing > 120, "only {differing}/128 samples differ");
        // And the achieved noise level matches the target SNR roughly.
        let signal: f64 = base.iter().flatten().map(|v| v.norm_sqr()).sum();
        let noise: f64 = a
            .iter()
            .flatten()
            .zip(base.iter().flatten())
            .map(|(x, s)| (*x - *s).norm_sqr())
            .sum();
        let snr = 10.0 * (signal / noise).log10();
        assert!((snr - 20.0).abs() < 3.0, "achieved SNR {snr:.1} dB");
    }

    #[test]
    fn noise_streams_never_reuse_seeds_across_transmitters() {
        let model = NoiseModel {
            snr_db: 30.0,
            seed: 7,
        };
        let mut seen = HashSet::new();
        for tx in 0..4096 {
            assert!(
                seen.insert(model.stream_seed(tx)),
                "stream seed reused at tx {tx}"
            );
        }
        // Distinct master seeds shift every stream.
        let other = NoiseModel {
            snr_db: 30.0,
            seed: 8,
        };
        assert_ne!(model.stream_seed(0), other.stream_seed(0));
    }

    #[test]
    fn noise_skips_silent_rows_and_scales_with_snr() {
        let model = NoiseModel {
            snr_db: 10.0,
            seed: 3,
        };
        let mut silent = vec![vec![C64::ZERO; 8]];
        model.apply(&mut silent);
        assert!(silent[0].iter().all(|v| *v == C64::ZERO));

        let base = sample_rows(1, 64);
        let apply_at = |snr: f64| {
            let mut m = base.clone();
            NoiseModel {
                snr_db: snr,
                seed: 3,
            }
            .apply(&mut m);
            m.iter()
                .flatten()
                .zip(base.iter().flatten())
                .map(|(x, s)| (*x - *s).norm_sqr())
                .sum::<f64>()
        };
        // 20 dB less SNR => ~100x the noise power.
        let ratio = apply_at(10.0) / apply_at(30.0);
        assert!((ratio - 100.0).abs() < 30.0, "ratio {ratio}");
    }

    #[test]
    fn aperture_full_arc_sparse_shapes() {
        let (tx, rx) = Aperture::Full.build(8, 16, 2.0);
        assert_eq!((tx.len(), rx.len()), (8, 16));

        let (tx, rx) = Aperture::Arc {
            span: std::f64::consts::PI,
        }
        .build(8, 16, 2.0);
        assert_eq!((tx.len(), rx.len()), (8, 16));
        // Every element sits in the upper half-plane (arc from angle 0 to pi).
        for p in tx.positions().iter().chain(rx.positions()) {
            assert!(p.y >= -1e-12, "arc element below the aperture: {p:?}");
        }

        let (tx, rx) = Aperture::Sparse { keep: 0.5, seed: 9 }.build(16, 16, 2.0);
        assert_eq!((tx.len(), rx.len()), (8, 8));
        // tx and rx masks are derived from distinct streams.
        assert_ne!(tx.positions(), rx.positions());
        // Deterministic in the seed.
        let (tx2, _) = Aperture::Sparse { keep: 0.5, seed: 9 }.build(16, 16, 2.0);
        assert_eq!(tx.positions(), tx2.positions());
        let (tx3, _) = Aperture::Sparse {
            keep: 0.5,
            seed: 10,
        }
        .build(16, 16, 2.0);
        assert_ne!(tx.positions(), tx3.positions());
        // All kept elements stay on the nominal ring.
        for p in tx.positions() {
            assert!((p.norm() - 2.0).abs() < 1e-12);
        }
    }

    #[test]
    fn lossy_object_carries_absorption() {
        let domain = Domain::new(32, 1.0);
        let tree = QuadTree::new(&domain);
        let lossy = Lossy {
            phantom: Cylinder {
                center: Point2::ZERO,
                radius: 0.8,
                contrast: 0.1,
            },
            loss_tangent: 0.2,
        };
        let obj = lossy.object(&domain, &tree);
        let max_re = obj.iter().map(|v| v.re).fold(0.0, f64::max);
        let max_im = obj.iter().map(|v| v.im).fold(0.0, f64::max);
        assert!(max_re > 0.0 && max_im > 0.0);
        assert!((max_im / max_re - 0.2).abs() < 1e-12);
        // Zero loss tangent reduces to the real object.
        let real =
            lossy_object_from_contrast(&domain, &tree, &lossy.phantom.rasterize(&domain), 0.0);
        assert!(real.iter().all(|v| v.im == 0.0));
    }

    #[test]
    fn zoo_entries_are_well_formed() {
        let zoo = scenario_zoo();
        assert!(zoo.len() >= 5);
        let mut names = HashSet::new();
        for s in &zoo {
            assert!(names.insert(s.name), "duplicate scenario name {}", s.name);
            assert!(s.contrast > 0.0 && s.radius_factor > 0.0 && s.loss_tangent >= 0.0);
            // Every aperture builds.
            let (tx, rx) = s.aperture.build(8, 16, 2.0);
            assert!(tx.len() >= 2 && rx.len() >= 2);
        }
    }
}
