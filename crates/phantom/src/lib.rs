//! # ffw-phantom
//!
//! Numerical phantoms for the imaging experiments: the Shepp–Logan head
//! section (paper Fig. 13), the high-contrast homogeneous annulus (Fig. 1),
//! circular cylinders (validation against the analytic Mie series), and
//! random smooth blobs (property tests, workload generation).
//!
//! A phantom defines the dielectric permittivity *contrast*
//! `delta_eps_r(r)`; the solver's object function is
//! `O(r) = k0^2 delta_eps_r(r)` (paper Section VI-A).

#![warn(missing_docs)]

pub mod scenario;

pub use scenario::{
    lossy_object_from_contrast, scenario_zoo, Aperture, Lossy, NoiseModel, Scenario,
};

use ffw_geometry::{Domain, Point2, QuadTree};
use ffw_numerics::{c64, C64};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A spatial permittivity-contrast distribution.
pub trait Phantom {
    /// Permittivity contrast at a point (0 = background).
    fn contrast_at(&self, p: Point2) -> f64;

    /// Rasterizes the contrast onto the domain's pixel centers, row-major
    /// grid order.
    fn rasterize(&self, domain: &Domain) -> Vec<f64> {
        (0..domain.n_pixels())
            .map(|i| self.contrast_at(domain.pixel_center_rm(i)))
            .collect()
    }
}

/// Converts a grid-order contrast raster into the solver's tree-order
/// complex object vector `O = k0^2 * contrast`.
pub fn object_from_contrast(domain: &Domain, tree: &QuadTree, contrast: &[f64]) -> Vec<C64> {
    assert_eq!(contrast.len(), domain.n_pixels());
    let k0sq = domain.k0() * domain.k0();
    let complex: Vec<C64> = contrast.iter().map(|&c| c64(k0sq * c, 0.0)).collect();
    tree.to_tree_order(&complex)
}

/// Recovers the real contrast raster (grid order) from a tree-order object
/// vector (drops any imaginary part picked up during optimization).
pub fn contrast_from_object(domain: &Domain, tree: &QuadTree, object: &[C64]) -> Vec<f64> {
    let grid = tree.to_grid_order(object);
    let inv = 1.0 / (domain.k0() * domain.k0());
    grid.iter().map(|o| o.re * inv).collect()
}

/// A homogeneous circular cylinder.
#[derive(Clone, Debug)]
pub struct Cylinder {
    /// Center position.
    pub center: Point2,
    /// Radius.
    pub radius: f64,
    /// Permittivity contrast inside.
    pub contrast: f64,
}

impl Phantom for Cylinder {
    fn contrast_at(&self, p: Point2) -> f64 {
        if p.dist(self.center) <= self.radius {
            self.contrast
        } else {
            0.0
        }
    }
}

/// The high-contrast homogeneous annular object of the paper's Fig. 1.
#[derive(Clone, Debug)]
pub struct Annulus {
    /// Center position.
    pub center: Point2,
    /// Inner radius (hole).
    pub inner: f64,
    /// Outer radius.
    pub outer: f64,
    /// Permittivity contrast of the ring material.
    pub contrast: f64,
}

impl Phantom for Annulus {
    fn contrast_at(&self, p: Point2) -> f64 {
        let r = p.dist(self.center);
        if r >= self.inner && r <= self.outer {
            self.contrast
        } else {
            0.0
        }
    }
}

/// One ellipse of the Shepp–Logan phantom, in normalized `[-1, 1]^2` coords.
#[derive(Clone, Copy, Debug)]
struct Ellipse {
    x0: f64,
    y0: f64,
    a: f64,
    b: f64,
    /// rotation in degrees
    theta_deg: f64,
    value: f64,
}

/// The synthetic Shepp–Logan head phantom (Shepp & Logan 1974), scaled to a
/// target maximum contrast — the paper's Fig. 13 uses 0.02.
#[derive(Clone, Debug)]
pub struct SheppLogan {
    /// Half-width of the phantom in physical units (the `[-1,1]` box maps to
    /// `[-scale, scale]`).
    pub scale: f64,
    /// Maximum permittivity contrast after normalization.
    pub max_contrast: f64,
    ellipses: Vec<Ellipse>,
    raw_max: f64,
}

impl SheppLogan {
    /// Builds the standard 10-ellipse phantom.
    pub fn new(scale: f64, max_contrast: f64) -> Self {
        let ellipses = vec![
            Ellipse {
                x0: 0.0,
                y0: 0.0,
                a: 0.69,
                b: 0.92,
                theta_deg: 0.0,
                value: 2.0,
            },
            Ellipse {
                x0: 0.0,
                y0: -0.0184,
                a: 0.6624,
                b: 0.874,
                theta_deg: 0.0,
                value: -0.98,
            },
            Ellipse {
                x0: 0.22,
                y0: 0.0,
                a: 0.11,
                b: 0.31,
                theta_deg: -18.0,
                value: -0.02,
            },
            Ellipse {
                x0: -0.22,
                y0: 0.0,
                a: 0.16,
                b: 0.41,
                theta_deg: 18.0,
                value: -0.02,
            },
            Ellipse {
                x0: 0.0,
                y0: 0.35,
                a: 0.21,
                b: 0.25,
                theta_deg: 0.0,
                value: 0.01,
            },
            Ellipse {
                x0: 0.0,
                y0: 0.1,
                a: 0.046,
                b: 0.046,
                theta_deg: 0.0,
                value: 0.01,
            },
            Ellipse {
                x0: 0.0,
                y0: -0.1,
                a: 0.046,
                b: 0.046,
                theta_deg: 0.0,
                value: 0.01,
            },
            Ellipse {
                x0: -0.08,
                y0: -0.605,
                a: 0.046,
                b: 0.023,
                theta_deg: 0.0,
                value: 0.01,
            },
            Ellipse {
                x0: 0.0,
                y0: -0.605,
                a: 0.023,
                b: 0.023,
                theta_deg: 0.0,
                value: 0.01,
            },
            Ellipse {
                x0: 0.06,
                y0: -0.605,
                a: 0.023,
                b: 0.046,
                theta_deg: 0.0,
                value: 0.01,
            },
        ];
        SheppLogan {
            scale,
            max_contrast,
            ellipses,
            raw_max: 2.0, // the skull ellipse value dominates
        }
    }

    /// Sized to fill a fraction of the given domain.
    pub fn for_domain(domain: &Domain, max_contrast: f64) -> Self {
        Self::new(0.45 * domain.side(), max_contrast)
    }
}

impl Phantom for SheppLogan {
    fn contrast_at(&self, p: Point2) -> f64 {
        let x = p.x / self.scale;
        let y = p.y / self.scale;
        let mut v = 0.0;
        for e in &self.ellipses {
            let th = e.theta_deg.to_radians();
            let (s, c) = th.sin_cos();
            let dx = x - e.x0;
            let dy = y - e.y0;
            let xr = c * dx + s * dy;
            let yr = -s * dx + c * dy;
            if (xr / e.a).powi(2) + (yr / e.b).powi(2) <= 1.0 {
                v += e.value;
            }
        }
        v * self.max_contrast / self.raw_max
    }
}

/// A sum of smooth Gaussian blobs with reproducible random parameters.
#[derive(Clone, Debug)]
pub struct RandomBlobs {
    blobs: Vec<(Point2, f64, f64)>, // center, sigma, amplitude
}

impl RandomBlobs {
    /// `count` blobs inside a disc of `radius`, peak contrast `max_contrast`,
    /// deterministic in `seed`.
    pub fn new(count: usize, radius: f64, max_contrast: f64, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let blobs = (0..count)
            .map(|_| {
                let r = radius * rng.gen::<f64>().sqrt() * 0.8;
                let th = rng.gen::<f64>() * std::f64::consts::TAU;
                let sigma = radius * (0.05 + 0.15 * rng.gen::<f64>());
                let amp = max_contrast * (0.3 + 0.7 * rng.gen::<f64>());
                (Point2::unit(th) * r, sigma, amp)
            })
            .collect();
        RandomBlobs { blobs }
    }
}

impl Phantom for RandomBlobs {
    fn contrast_at(&self, p: Point2) -> f64 {
        self.blobs
            .iter()
            .map(|&(c, sigma, amp)| amp * (-(p.dist(c) / sigma).powi(2) / 2.0).exp())
            .sum()
    }
}

/// A composite phantom: sum of parts.
pub struct Composite(pub Vec<Box<dyn Phantom + Sync>>);

impl Phantom for Composite {
    fn contrast_at(&self, p: Point2) -> f64 {
        self.0.iter().map(|ph| ph.contrast_at(p)).sum()
    }
}

/// Relative L2 error between two rasters (image-quality metric of the
/// reconstruction experiments).
pub fn image_rel_error(reconstructed: &[f64], truth: &[f64]) -> f64 {
    assert_eq!(reconstructed.len(), truth.len());
    let num: f64 = reconstructed
        .iter()
        .zip(truth)
        .map(|(a, b)| (a - b) * (a - b))
        .sum();
    let den: f64 = truth.iter().map(|b| b * b).sum();
    if den == 0.0 {
        num.sqrt()
    } else {
        (num / den).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ffw_geometry::pt;

    #[test]
    fn cylinder_inside_outside() {
        let c = Cylinder {
            center: pt(0.1, 0.0),
            radius: 0.5,
            contrast: 0.3,
        };
        assert_eq!(c.contrast_at(pt(0.1, 0.0)), 0.3);
        assert_eq!(c.contrast_at(pt(0.59, 0.0)), 0.3);
        assert_eq!(c.contrast_at(pt(0.61, 0.0)), 0.0);
    }

    #[test]
    fn annulus_has_hole() {
        let a = Annulus {
            center: Point2::ZERO,
            inner: 0.3,
            outer: 0.6,
            contrast: 0.5,
        };
        assert_eq!(a.contrast_at(Point2::ZERO), 0.0);
        assert_eq!(a.contrast_at(pt(0.45, 0.0)), 0.5);
        assert_eq!(a.contrast_at(pt(0.7, 0.0)), 0.0);
    }

    #[test]
    fn shepp_logan_structure() {
        let ph = SheppLogan::new(1.0, 0.02);
        // Center of the head: inside skull and brain -> small positive value.
        let center = ph.contrast_at(Point2::ZERO);
        assert!(center > 0.0 && center < 0.02, "center {center}");
        // Outside the skull: zero.
        assert_eq!(ph.contrast_at(pt(0.95, 0.0)), 0.0);
        // Skull rim (inside outer ellipse, outside brain): the maximum 0.02.
        let rim = ph.contrast_at(pt(0.0, 0.9));
        assert!((rim - 0.02).abs() < 1e-12, "rim {rim}");
        // Ventricles are darker than surrounding brain tissue.
        let ventricle = ph.contrast_at(pt(0.22, 0.0));
        let tissue = ph.contrast_at(pt(0.45, 0.0));
        assert!(ventricle < tissue);
    }

    #[test]
    fn rasterize_and_roundtrip_object() {
        let domain = Domain::new(32, 1.0);
        let tree = QuadTree::new(&domain);
        let ph = Cylinder {
            center: Point2::ZERO,
            radius: 0.8,
            contrast: 0.1,
        };
        let raster = ph.rasterize(&domain);
        assert_eq!(raster.len(), 1024);
        assert!(raster.iter().any(|&v| v > 0.0));
        let obj = object_from_contrast(&domain, &tree, &raster);
        let back = contrast_from_object(&domain, &tree, &obj);
        for (a, b) in raster.iter().zip(&back) {
            assert!((a - b).abs() < 1e-12);
        }
        // object includes k0^2
        let k0sq = domain.k0() * domain.k0();
        let max_obj = obj.iter().map(|v| v.re).fold(0.0, f64::max);
        assert!((max_obj - 0.1 * k0sq).abs() < 1e-9);
    }

    #[test]
    fn random_blobs_deterministic_and_smooth() {
        let a = RandomBlobs::new(5, 1.0, 0.1, 42);
        let b = RandomBlobs::new(5, 1.0, 0.1, 42);
        let c = RandomBlobs::new(5, 1.0, 0.1, 43);
        let p = pt(0.2, -0.3);
        assert_eq!(a.contrast_at(p), b.contrast_at(p));
        assert_ne!(a.contrast_at(p), c.contrast_at(p));
        // smooth: nearby points have nearby values
        let q = pt(0.201, -0.3);
        assert!((a.contrast_at(p) - a.contrast_at(q)).abs() < 1e-2);
    }

    #[test]
    fn image_error_metric() {
        let t = vec![1.0, 0.0, 2.0];
        assert_eq!(image_rel_error(&t, &t), 0.0);
        let r = vec![0.0, 0.0, 0.0];
        assert!((image_rel_error(&r, &t) - 1.0).abs() < 1e-14);
    }

    #[test]
    fn composite_sums() {
        let comp = Composite(vec![
            Box::new(Cylinder {
                center: Point2::ZERO,
                radius: 1.0,
                contrast: 0.1,
            }),
            Box::new(Cylinder {
                center: Point2::ZERO,
                radius: 0.5,
                contrast: 0.2,
            }),
        ]);
        assert!((comp.contrast_at(Point2::ZERO) - 0.3).abs() < 1e-14);
        assert!((comp.contrast_at(pt(0.7, 0.0)) - 0.1).abs() < 1e-14);
    }
}
