//! # ffw-tomo
//!
//! High-level API for fast full-wave tomographic image reconstruction —
//! the facade over the FFW-Tomo workspace, reproducing
//! *"A Fast and Massively-Parallel Inverse Solver for Multiple-Scattering
//! Tomographic Image Reconstruction"* (IPDPS 2018).
//!
//! ```no_run
//! use ffw_tomo::{Reconstruction, SceneConfig};
//! use ffw_phantom::{Cylinder, Phantom};
//! use ffw_geometry::Point2;
//!
//! let scene = SceneConfig::new(64, 8, 16); // 6.4-lambda domain, T=8, R=16
//! let truth = Cylinder { center: Point2::ZERO, radius: 1.5, contrast: 0.05 };
//! let recon = Reconstruction::new(&scene);
//! let measured = recon.synthesize(&truth);
//! let result = recon.run_dbim(&measured, 10).unwrap();
//! println!("residual: {:.3}%", 100.0 * result.final_residual);
//! let image = recon.image(&result.object); // grid-order contrast raster
//! # let _ = image;
//! ```

#![warn(missing_docs)]

pub mod exit;
pub mod viz;

use ffw_geometry::{Domain, QuadTree, TransducerArray};
use ffw_inverse::{
    born_inversion, dbim, synthesize_measurements, BornConfig, DbimConfig, DbimError, DbimResult,
    ImagingSetup, MlfmaG0,
};
use ffw_mlfma::{Accuracy, MlfmaEngine, MlfmaPlan};
use ffw_numerics::C64;
use ffw_par::Pool;
use ffw_phantom::{contrast_from_object, object_from_contrast, Phantom};
use std::sync::Arc;

pub use ffw_inverse::BornResult;

/// Scene description: domain size and transducer layout.
#[derive(Clone, Debug)]
pub struct SceneConfig {
    /// Pixels per side (must be `8 * 2^m`, `m >= 2`).
    pub n_side_px: usize,
    /// Free-space wavelength.
    pub wavelength: f64,
    /// Number of transmitters.
    pub n_tx: usize,
    /// Number of receivers.
    pub n_rx: usize,
    /// Transducer ring radius as a multiple of the domain side.
    pub ring_radius_factor: f64,
    /// Limited-angle setup: `(start, span)` radians; `None` = full ring.
    pub arc: Option<(f64, f64)>,
    /// MLFMA accuracy.
    pub accuracy: Accuracy,
    /// Worker threads (0 = all available).
    pub threads: usize,
}

impl SceneConfig {
    /// Full-ring scene with default accuracy.
    pub fn new(n_side_px: usize, n_tx: usize, n_rx: usize) -> Self {
        SceneConfig {
            n_side_px,
            wavelength: 1.0,
            n_tx,
            n_rx,
            ring_radius_factor: 2.0,
            arc: None,
            accuracy: Accuracy::default(),
            threads: 0,
        }
    }

    /// Restricts transmitters and receivers to an arc (the paper's Fig. 2
    /// limited-angle study).
    pub fn with_arc(mut self, start: f64, span: f64) -> Self {
        self.arc = Some((start, span));
        self
    }
}

/// A ready-to-run reconstruction pipeline: geometry, measurement operators
/// and the MLFMA-accelerated Green's operator.
pub struct Reconstruction {
    /// The imaging setup (domain, transducers, `GR`, incident fields).
    pub setup: ImagingSetup,
    /// The MLFMA plan (shared, reusable across engines).
    pub plan: Arc<MlfmaPlan>,
    g0: MlfmaG0,
}

impl Reconstruction {
    /// Builds the pipeline for a scene.
    pub fn new(scene: &SceneConfig) -> Self {
        let threads = if scene.threads == 0 {
            Pool::global().n_threads()
        } else {
            scene.threads
        };
        Self::with_pool(scene, Arc::new(Pool::new(threads)))
    }

    /// Builds the pipeline on a caller-supplied thread pool, ignoring
    /// `scene.threads`. Lets a multi-tenant host (e.g. `ffw-serve`) run many
    /// pipelines on one shared pool instead of spawning a thread team per
    /// job.
    pub fn with_pool(scene: &SceneConfig, pool: Arc<Pool>) -> Self {
        let domain = Domain::new(scene.n_side_px, scene.wavelength);
        let radius = scene.ring_radius_factor * domain.side();
        let (txs, rxs) = match scene.arc {
            None => (
                TransducerArray::ring(scene.n_tx, radius),
                TransducerArray::ring(scene.n_rx, radius),
            ),
            Some((start, span)) => (
                TransducerArray::arc(scene.n_tx, radius, start, span),
                TransducerArray::arc(scene.n_rx, radius, start, span),
            ),
        };
        let setup = ImagingSetup::new(domain.clone(), txs, rxs);
        let plan = Arc::new(MlfmaPlan::new(&domain, scene.accuracy));
        let g0 = MlfmaG0(Arc::new(MlfmaEngine::new(Arc::clone(&plan), pool)));
        Reconstruction { setup, plan, g0 }
    }

    /// The imaging domain.
    pub fn domain(&self) -> &Domain {
        &self.setup.domain
    }

    /// The cluster tree (defines the solver's pixel ordering).
    pub fn tree(&self) -> &QuadTree {
        &self.setup.tree
    }

    /// The MLFMA-backed `G0` operator.
    pub fn g0(&self) -> &MlfmaG0 {
        &self.g0
    }

    /// Converts a phantom into the solver's object vector (tree order).
    pub fn object_of(&self, phantom: &dyn Phantom) -> Vec<C64> {
        let raster = (0..self.domain().n_pixels())
            .map(|i| phantom.contrast_at(self.domain().pixel_center_rm(i)))
            .collect::<Vec<_>>();
        object_from_contrast(self.domain(), self.tree(), &raster)
    }

    /// Synthesizes measurement data for a known phantom (solves the forward
    /// problem for every transmitter).
    pub fn synthesize(&self, phantom: &dyn Phantom) -> Vec<Vec<C64>> {
        let object = self.object_of(phantom);
        synthesize_measurements(&self.setup, &self.g0, &object, Default::default())
    }

    /// Runs the nonlinear multiple-scattering DBIM reconstruction.
    ///
    /// Fails typed when the configured forward backend rejects the problem
    /// (e.g. the Born-series contrast bound); the default BiCGStab backend
    /// never rejects.
    pub fn run_dbim(
        &self,
        measured: &[Vec<C64>],
        iterations: usize,
    ) -> Result<DbimResult, DbimError> {
        let cfg = DbimConfig {
            iterations,
            ..Default::default()
        };
        dbim(&self.setup, &self.g0, measured, &cfg)
    }

    /// Runs DBIM with full configuration control.
    pub fn run_dbim_with(
        &self,
        measured: &[Vec<C64>],
        cfg: &DbimConfig,
    ) -> Result<DbimResult, DbimError> {
        dbim(&self.setup, &self.g0, measured, cfg)
    }

    /// Runs the linear single-scattering Born baseline.
    pub fn run_born(&self, measured: &[Vec<C64>], cfg: &BornConfig) -> BornResult {
        born_inversion(&self.setup, measured, cfg)
    }

    /// Converts a reconstructed object vector into a grid-order contrast
    /// raster (row-major, `n_side x n_side`).
    pub fn image(&self, object: &[C64]) -> Vec<f64> {
        contrast_from_object(self.domain(), self.tree(), object)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ffw_geometry::Point2;
    use ffw_phantom::{image_rel_error, Cylinder};

    #[test]
    fn end_to_end_pipeline_reduces_residual_and_error() {
        let scene = SceneConfig {
            accuracy: Accuracy::low(),
            ..SceneConfig::new(32, 4, 8)
        };
        let recon = Reconstruction::new(&scene);
        let truth = Cylinder {
            center: Point2::ZERO,
            radius: 0.8,
            contrast: 0.05,
        };
        let measured = recon.synthesize(&truth);
        let result = recon.run_dbim(&measured, 4).expect("dbim");
        assert!(result.final_residual < 0.5, "{}", result.final_residual);
        assert!(
            result.final_residual < result.history[0].rel_residual,
            "residual decreases"
        );
        let image = recon.image(&result.object);
        let truth_raster = truth.rasterize(recon.domain());
        let err = image_rel_error(&image, &truth_raster);
        assert!(err < 1.0, "some signal recovered: {err}");
        // paper accounting: 3 forward-class solves per tx per iteration,
        // plus the final residual pass (1 per tx)
        assert_eq!(result.forward_solves, 4 * 4 * 3 + 4);
    }

    #[test]
    fn limited_angle_scene_builds() {
        let scene = SceneConfig {
            accuracy: Accuracy::low(),
            ..SceneConfig::new(32, 3, 5)
        }
        .with_arc(0.0, std::f64::consts::FRAC_PI_2);
        let recon = Reconstruction::new(&scene);
        assert_eq!(recon.setup.n_tx(), 3);
        // all transducers within the quarter arc
        for i in 0..recon.setup.n_rx() {
            let a = recon.setup.receivers.position(i).angle();
            assert!((-1e-9..=std::f64::consts::FRAC_PI_2 + 1e-9).contains(&a));
        }
    }
}
