//! # ffw-tomo
//!
//! High-level API for fast full-wave tomographic image reconstruction —
//! the facade over the FFW-Tomo workspace, reproducing
//! *"A Fast and Massively-Parallel Inverse Solver for Multiple-Scattering
//! Tomographic Image Reconstruction"* (IPDPS 2018).
//!
//! ```no_run
//! use ffw_tomo::{Reconstruction, SceneConfig};
//! use ffw_phantom::{Cylinder, Phantom};
//! use ffw_geometry::Point2;
//!
//! let scene = SceneConfig::new(64, 8, 16); // 6.4-lambda domain, T=8, R=16
//! let truth = Cylinder { center: Point2::ZERO, radius: 1.5, contrast: 0.05 };
//! let recon = Reconstruction::new(&scene);
//! let measured = recon.synthesize(&truth);
//! let result = recon.run_dbim(&measured, 10).unwrap();
//! println!("residual: {:.3}%", 100.0 * result.final_residual);
//! let image = recon.image(&result.object); // grid-order contrast raster
//! # let _ = image;
//! ```

#![warn(missing_docs)]

pub mod exit;
pub mod viz;

use ffw_fault::Fingerprint;
use ffw_geometry::{Domain, QuadTree, TransducerArray};
use ffw_inverse::{
    born_inversion, dbim, multi_frequency_dbim_with, synthesize_measurements, BornConfig,
    DbimConfig, DbimError, DbimResult, FrequencyHop, ImagingSetup, MlfmaG0, MultiFreqConfig,
    MultiFreqError, MultiFreqResult,
};
use ffw_mlfma::{Accuracy, MlfmaEngine, MlfmaPlan};
use ffw_numerics::C64;
use ffw_par::Pool;
use ffw_phantom::{contrast_from_object, object_from_contrast, NoiseModel, Phantom};
use std::path::PathBuf;
use std::sync::Arc;

pub use ffw_inverse::{BornResult, HopSchedule, MultiFreqError as HopError, Regularizer};

/// Scene description: domain size and transducer layout.
#[derive(Clone, Debug)]
pub struct SceneConfig {
    /// Pixels per side (must be `8 * 2^m`, `m >= 2`).
    pub n_side_px: usize,
    /// Free-space wavelength.
    pub wavelength: f64,
    /// Number of transmitters.
    pub n_tx: usize,
    /// Number of receivers.
    pub n_rx: usize,
    /// Transducer ring radius as a multiple of the domain side.
    pub ring_radius_factor: f64,
    /// Limited-angle setup: `(start, span)` radians; `None` = full ring.
    pub arc: Option<(f64, f64)>,
    /// MLFMA accuracy.
    pub accuracy: Accuracy,
    /// Worker threads (0 = all available).
    pub threads: usize,
}

impl SceneConfig {
    /// Full-ring scene with default accuracy.
    pub fn new(n_side_px: usize, n_tx: usize, n_rx: usize) -> Self {
        SceneConfig {
            n_side_px,
            wavelength: 1.0,
            n_tx,
            n_rx,
            ring_radius_factor: 2.0,
            arc: None,
            accuracy: Accuracy::default(),
            threads: 0,
        }
    }

    /// Restricts transmitters and receivers to an arc (the paper's Fig. 2
    /// limited-angle study).
    pub fn with_arc(mut self, start: f64, span: f64) -> Self {
        self.arc = Some((start, span));
        self
    }
}

/// A ready-to-run reconstruction pipeline: geometry, measurement operators
/// and the MLFMA-accelerated Green's operator.
pub struct Reconstruction {
    /// The imaging setup (domain, transducers, `GR`, incident fields).
    pub setup: ImagingSetup,
    /// The MLFMA plan (shared, reusable across engines).
    pub plan: Arc<MlfmaPlan>,
    g0: MlfmaG0,
}

impl Reconstruction {
    /// Builds the pipeline for a scene.
    pub fn new(scene: &SceneConfig) -> Self {
        let threads = if scene.threads == 0 {
            Pool::global().n_threads()
        } else {
            scene.threads
        };
        Self::with_pool(scene, Arc::new(Pool::new(threads)))
    }

    /// Builds the pipeline on a caller-supplied thread pool, ignoring
    /// `scene.threads`. Lets a multi-tenant host (e.g. `ffw-serve`) run many
    /// pipelines on one shared pool instead of spawning a thread team per
    /// job.
    pub fn with_pool(scene: &SceneConfig, pool: Arc<Pool>) -> Self {
        Self::build(scene, Domain::new(scene.n_side_px, scene.wavelength), pool)
    }

    /// Builds the pipeline for one stage of a hop schedule: the scene's
    /// pixel grid (sized `lambda/10` at the scene wavelength) is kept, the
    /// illumination wavelength is scaled by `factor >= 1`. All stages of a
    /// schedule therefore share one grid — the invariant the hop carry
    /// rescale relies on — and the transducer ring stays physically fixed.
    pub fn for_hop_stage(scene: &SceneConfig, factor: f64, pool: Arc<Pool>) -> Self {
        assert!(factor >= 1.0, "hop factor must be >= 1, got {factor}");
        let base = Domain::new(scene.n_side_px, scene.wavelength);
        let domain = Domain::with_pixel_size(
            scene.n_side_px,
            factor * scene.wavelength,
            base.pixel_size(),
        );
        Self::build(scene, domain, pool)
    }

    fn build(scene: &SceneConfig, domain: Domain, pool: Arc<Pool>) -> Self {
        let radius = scene.ring_radius_factor * domain.side();
        let (txs, rxs) = match scene.arc {
            None => (
                TransducerArray::ring(scene.n_tx, radius),
                TransducerArray::ring(scene.n_rx, radius),
            ),
            Some((start, span)) => (
                TransducerArray::arc(scene.n_tx, radius, start, span),
                TransducerArray::arc(scene.n_rx, radius, start, span),
            ),
        };
        let setup = ImagingSetup::new(domain.clone(), txs, rxs);
        let plan = Arc::new(MlfmaPlan::new(&domain, scene.accuracy));
        let g0 = MlfmaG0(Arc::new(MlfmaEngine::new(Arc::clone(&plan), pool)));
        Reconstruction { setup, plan, g0 }
    }

    /// The imaging domain.
    pub fn domain(&self) -> &Domain {
        &self.setup.domain
    }

    /// The cluster tree (defines the solver's pixel ordering).
    pub fn tree(&self) -> &QuadTree {
        &self.setup.tree
    }

    /// The MLFMA-backed `G0` operator.
    pub fn g0(&self) -> &MlfmaG0 {
        &self.g0
    }

    /// Converts a phantom into the solver's object vector (tree order).
    pub fn object_of(&self, phantom: &dyn Phantom) -> Vec<C64> {
        let raster = (0..self.domain().n_pixels())
            .map(|i| phantom.contrast_at(self.domain().pixel_center_rm(i)))
            .collect::<Vec<_>>();
        object_from_contrast(self.domain(), self.tree(), &raster)
    }

    /// Synthesizes measurement data for a known phantom (solves the forward
    /// problem for every transmitter).
    pub fn synthesize(&self, phantom: &dyn Phantom) -> Vec<Vec<C64>> {
        let object = self.object_of(phantom);
        synthesize_measurements(&self.setup, &self.g0, &object, Default::default())
    }

    /// Runs the nonlinear multiple-scattering DBIM reconstruction.
    ///
    /// Fails typed when the configured forward backend rejects the problem
    /// (e.g. the Born-series contrast bound); the default BiCGStab backend
    /// never rejects.
    pub fn run_dbim(
        &self,
        measured: &[Vec<C64>],
        iterations: usize,
    ) -> Result<DbimResult, DbimError> {
        let cfg = DbimConfig {
            iterations,
            ..Default::default()
        };
        dbim(&self.setup, &self.g0, measured, &cfg)
    }

    /// Runs DBIM with full configuration control.
    pub fn run_dbim_with(
        &self,
        measured: &[Vec<C64>],
        cfg: &DbimConfig,
    ) -> Result<DbimResult, DbimError> {
        dbim(&self.setup, &self.g0, measured, cfg)
    }

    /// Runs the linear single-scattering Born baseline.
    pub fn run_born(&self, measured: &[Vec<C64>], cfg: &BornConfig) -> BornResult {
        born_inversion(&self.setup, measured, cfg)
    }

    /// Converts a reconstructed object vector into a grid-order contrast
    /// raster (row-major, `n_side x n_side`).
    pub fn image(&self, object: &[C64]) -> Vec<f64> {
        contrast_from_object(self.domain(), self.tree(), object)
    }
}

/// A prepared frequency-hopping pipeline: one [`Reconstruction`] per stage
/// of a [`HopSchedule`], lowest frequency first, all sharing one pixel grid
/// and one thread pool. This is the single entry point the CLI, the serve
/// engine and the benches use for hop runs.
pub struct HopPipeline {
    /// Per-stage pipelines, lowest frequency (largest wavelength factor)
    /// first; the last stage is the scene frequency itself.
    pub stages: Vec<Reconstruction>,
    schedule: HopSchedule,
}

impl HopPipeline {
    /// Builds every stage on one shared pool sized from `scene.threads`.
    pub fn new(scene: &SceneConfig, schedule: &HopSchedule) -> Self {
        let threads = if scene.threads == 0 {
            Pool::global().n_threads()
        } else {
            scene.threads
        };
        Self::with_pool(scene, schedule, Arc::new(Pool::new(threads)))
    }

    /// Builds every stage on a caller-supplied pool.
    pub fn with_pool(scene: &SceneConfig, schedule: &HopSchedule, pool: Arc<Pool>) -> Self {
        let stages = schedule
            .factors()
            .iter()
            .map(|&f| Reconstruction::for_hop_stage(scene, f, Arc::clone(&pool)))
            .collect();
        HopPipeline {
            stages,
            schedule: schedule.clone(),
        }
    }

    /// The validated schedule this pipeline was built for.
    pub fn schedule(&self) -> &HopSchedule {
        &self.schedule
    }

    /// The scene-frequency stage (factor 1.0 — always the last).
    pub fn final_stage(&self) -> &Reconstruction {
        self.stages.last().expect("schedules are never empty")
    }

    /// Synthesizes per-stage measurements for one physical phantom: the
    /// object is frequency-invariant contrast, so each stage solves its own
    /// forward problem at its own wavenumber.
    pub fn synthesize(&self, phantom: &dyn Phantom) -> Vec<Vec<Vec<C64>>> {
        self.stages.iter().map(|s| s.synthesize(phantom)).collect()
    }

    /// Adds seeded measurement noise to every stage. Stages get independent
    /// noise realizations (the per-stage model seed is derived from the
    /// master seed), and within a stage each transmitter row has its own
    /// stream — bit-deterministic regardless of thread count.
    pub fn add_noise(measured: &mut [Vec<Vec<C64>>], snr_db: f64, seed: u64) {
        for (stage_idx, stage) in measured.iter_mut().enumerate() {
            NoiseModel {
                snr_db,
                seed: ffw_phantom::scenario::splitmix64(seed ^ stage_idx as u64),
            }
            .apply(stage);
        }
    }

    /// The scene + schedule fingerprint hop checkpoints are bound to: a
    /// resume against a different scene, schedule, or iteration budget is
    /// rejected instead of silently mixing incompatible carries.
    pub fn fingerprint(&self, scene: &SceneConfig, iterations: usize) -> u64 {
        self.schedule
            .fold_fingerprint(
                Fingerprint::new()
                    .u64(scene.n_side_px as u64)
                    .u64(scene.n_tx as u64)
                    .u64(scene.n_rx as u64)
                    .f64(scene.wavelength)
                    .f64(scene.ring_radius_factor)
                    .f64(scene.arc.map_or(-1.0, |(s, _)| s))
                    .f64(scene.arc.map_or(-1.0, |(_, sp)| sp))
                    .u64(iterations as u64),
            )
            .finish()
    }

    /// Runs the schedule: `iterations` is the *total* DBIM budget, split
    /// across stages by [`HopSchedule::split_iterations`] (later stages get
    /// the remainder). `base` supplies all other DBIM settings — notably the
    /// [`Regularizer`]. With a checkpoint path the driver saves at every hop
    /// boundary and `resume` skips completed stages bit-identically; `stop`
    /// is polled between stages (SIGTERM handling).
    #[allow(clippy::too_many_arguments)]
    pub fn run(
        &self,
        measured: &[Vec<Vec<C64>>],
        iterations: usize,
        base: &DbimConfig,
        checkpoint: Option<PathBuf>,
        resume: bool,
        fingerprint: u64,
        stop: Option<&dyn Fn() -> bool>,
    ) -> Result<MultiFreqResult, MultiFreqError> {
        assert_eq!(measured.len(), self.stages.len(), "one dataset per stage");
        let split = self.schedule.split_iterations(iterations);
        let hops: Vec<FrequencyHop<'_, MlfmaG0>> = self
            .stages
            .iter()
            .zip(measured)
            .zip(&split)
            .map(|((stage, mea), &its)| FrequencyHop {
                setup: &stage.setup,
                g0: stage.g0(),
                measured: mea,
                iterations: its,
            })
            .collect();
        let cfg = MultiFreqConfig {
            base: base.clone(),
            checkpoint,
            resume,
            fingerprint,
        };
        multi_frequency_dbim_with(&hops, &cfg, stop)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ffw_geometry::Point2;
    use ffw_phantom::{image_rel_error, Cylinder};

    #[test]
    fn end_to_end_pipeline_reduces_residual_and_error() {
        let scene = SceneConfig {
            accuracy: Accuracy::low(),
            ..SceneConfig::new(32, 4, 8)
        };
        let recon = Reconstruction::new(&scene);
        let truth = Cylinder {
            center: Point2::ZERO,
            radius: 0.8,
            contrast: 0.05,
        };
        let measured = recon.synthesize(&truth);
        let result = recon.run_dbim(&measured, 4).expect("dbim");
        assert!(result.final_residual < 0.5, "{}", result.final_residual);
        assert!(
            result.final_residual < result.history[0].rel_residual,
            "residual decreases"
        );
        let image = recon.image(&result.object);
        let truth_raster = truth.rasterize(recon.domain());
        let err = image_rel_error(&image, &truth_raster);
        assert!(err < 1.0, "some signal recovered: {err}");
        // paper accounting: 3 forward-class solves per tx per iteration,
        // plus the final residual pass (1 per tx)
        assert_eq!(result.forward_solves, 4 * 4 * 3 + 4);
    }

    #[test]
    fn limited_angle_scene_builds() {
        let scene = SceneConfig {
            accuracy: Accuracy::low(),
            ..SceneConfig::new(32, 3, 5)
        }
        .with_arc(0.0, std::f64::consts::FRAC_PI_2);
        let recon = Reconstruction::new(&scene);
        assert_eq!(recon.setup.n_tx(), 3);
        // all transducers within the quarter arc
        for i in 0..recon.setup.n_rx() {
            let a = recon.setup.receivers.position(i).angle();
            assert!((-1e-9..=std::f64::consts::FRAC_PI_2 + 1e-9).contains(&a));
        }
    }
}
