//! Command-line reconstruction driver.
//!
//! ```sh
//! cargo run --release -p ffw-tomo --bin ffw-reconstruct -- \
//!     --size 64 --tx 16 --rx 32 --phantom annulus --contrast 0.2 \
//!     --iterations 10 --out /tmp/annulus
//! ```
//!
//! Writes `<out>_truth.pgm` and `<out>_reconstruction.pgm` and prints the
//! reconstruction metrics.

use ffw_dist::{run_dbim_ft, FtConfig, JobControl};
use ffw_geometry::Point2;
use ffw_inverse::{add_noise, BornConfig, DbimConfig, DbimError};
use ffw_mpi::FaultPlan;
use ffw_phantom::{image_rel_error, Annulus, Cylinder, Phantom, RandomBlobs, SheppLogan};
use ffw_solver::{BackendChoice, VerifyConfig};
use ffw_tomo::exit::{exit_code_for, EXIT_BREAKDOWN, EXIT_BUDGET, EXIT_INTERRUPTED};
use ffw_tomo::viz::write_pgm;
use ffw_tomo::{HopPipeline, HopSchedule, Reconstruction, Regularizer, SceneConfig};
use std::path::PathBuf;
use std::sync::Arc;

struct Cli {
    size: usize,
    tx: usize,
    rx: usize,
    phantom: String,
    contrast: f64,
    iterations: usize,
    noise_db: Option<f64>,
    arc_deg: Option<f64>,
    born: bool,
    precondition: bool,
    positivity: bool,
    batch: Option<usize>,
    backend: BackendChoice,
    hops: Option<HopSchedule>,
    regularizer: Regularizer,
    out: Option<String>,
    groups: Option<usize>,
    subtree: usize,
    checkpoint: Option<PathBuf>,
    resume: bool,
    chaos_seed: Option<u64>,
    verify_compute: bool,
    chaos_compute: Option<u64>,
    max_restarts: u32,
    min_groups: usize,
    metrics: Option<PathBuf>,
    profile: bool,
}

/// Validates the distributed-run geometry up front, so a bad `--groups` /
/// `--subtree` combination is a clear CLI error (exit code 2) instead of a
/// mid-run assertion failure deep inside the rank grid.
fn validate(cli: &Cli) -> Result<(), String> {
    if let Some(batch) = cli.batch {
        if batch == 0 {
            return Err("--batch must be at least 1".into());
        }
        if batch > cli.tx {
            return Err(format!(
                "--batch {batch} must not exceed --tx {} (a batch is a block of \
                 per-transmitter right-hand sides)",
                cli.tx
            ));
        }
        if cli.precondition {
            return Err(
                "--batch cannot be combined with --precondition (the leaf-block \
                 Jacobi path is single-RHS)"
                    .into(),
            );
        }
    }
    if cli.backend != BackendChoice::Bicgstab {
        if cli.precondition {
            return Err(format!(
                "--backend {} cannot be combined with --precondition (the \
                 leaf-block Jacobi preconditioner is specific to the BiCGStab \
                 backend)",
                cli.backend
            ));
        }
        if cli.born {
            return Err(format!(
                "--backend {} has no effect on --born (the linear Born baseline \
                 performs no forward solves)",
                cli.backend
            ));
        }
        if cli.groups.is_some() {
            return Err(format!(
                "--backend {} is not supported in distributed mode (--groups); \
                 the fault-tolerant pipeline currently runs BiCGStab only",
                cli.backend
            ));
        }
    }
    if let Some(groups) = cli.groups {
        if groups == 0 {
            return Err("--groups must be at least 1".into());
        }
        if !cli.tx.is_multiple_of(groups) {
            return Err(format!(
                "--groups {groups} must divide --tx {} (each illumination group \
                 gets an equal transmitter block)",
                cli.tx
            ));
        }
        if cli.subtree == 0 || 16 % cli.subtree != 0 {
            return Err(format!(
                "--subtree {} must divide 16 (the MLFMA finest-level box count \
                 per dimension)",
                cli.subtree
            ));
        }
        if cli.min_groups == 0 || cli.min_groups > groups {
            return Err(format!(
                "--min-groups {} must be between 1 and --groups {groups}",
                cli.min_groups
            ));
        }
    } else {
        if cli.chaos_seed.is_some() {
            return Err("--chaos-seed requires --groups (distributed mode)".into());
        }
        if cli.hops.is_none() {
            for (set, flag) in [
                (cli.checkpoint.is_some(), "--checkpoint"),
                (cli.resume, "--resume"),
            ] {
                if set {
                    return Err(format!(
                        "{flag} requires --groups (distributed mode) or --hops \
                         (hop-boundary checkpoints)"
                    ));
                }
            }
        }
    }
    if let Some(schedule) = &cli.hops {
        if cli.born {
            return Err(
                "--hops cannot be combined with --born (the hop carry is a DBIM \
                 initial guess; the linear Born baseline takes none)"
                    .into(),
            );
        }
        if cli.groups.is_some() {
            return Err(
                "--hops cannot be combined with --groups (hop schedules run the \
                 serial driver; distributed mode has its own outer-iteration \
                 checkpoints)"
                    .into(),
            );
        }
        if cli.iterations < schedule.len() {
            return Err(format!(
                "--iterations {} is less than the {} hop stages (every stage \
                 needs at least one DBIM iteration)",
                cli.iterations,
                schedule.len()
            ));
        }
        if cli.precondition {
            return Err(
                "--hops cannot be combined with --precondition (the leaf-block \
                 Jacobi factorization is bound to one frequency's plan)"
                    .into(),
            );
        }
    }
    if cli.resume && cli.checkpoint.is_none() {
        return Err("--resume requires --checkpoint (the path to resume from)".into());
    }
    if cli.regularizer != Regularizer::default() {
        if cli.born {
            return Err(
                "--regularizer has no effect on --born (the linear Born baseline \
                 has its own truncated-SVD regularization)"
                    .into(),
            );
        }
        if cli.groups.is_some() {
            return Err(
                "--regularizer is not supported in distributed mode (--groups); \
                 the fault-tolerant pipeline runs the plain linear step"
                    .into(),
            );
        }
    }
    if matches!(cli.regularizer, Regularizer::WgcvLsqr { .. }) && cli.precondition {
        return Err(
            "--regularizer wgcv-lsqr cannot be combined with --precondition (the \
             hybrid-projection step builds its own Krylov basis)"
                .into(),
        );
    }
    if cli.chaos_compute.is_some() {
        if cli.born {
            return Err(
                "--chaos-compute has no effect on --born (the linear Born baseline \
                 performs no checksum-verified forward solves)"
                    .into(),
            );
        }
        if cli.groups.is_some() {
            return Err(
                "--chaos-compute is the serial compute-corruption injector; \
                 distributed runs inject faults with --chaos-seed"
                    .into(),
            );
        }
        if !cli.verify_compute {
            return Err(
                "--chaos-compute requires --verify-compute on (an injected flip \
                 with verification off would corrupt the output silently)"
                    .into(),
            );
        }
    }
    Ok(())
}

fn parse_args() -> Result<Cli, String> {
    let mut cli = Cli {
        size: 64,
        tx: 16,
        rx: 32,
        phantom: "cylinder".into(),
        contrast: 0.1,
        iterations: 10,
        noise_db: None,
        arc_deg: None,
        born: false,
        precondition: false,
        positivity: false,
        batch: None,
        backend: BackendChoice::default(),
        hops: None,
        regularizer: Regularizer::default(),
        out: None,
        groups: None,
        subtree: 2,
        checkpoint: None,
        resume: false,
        chaos_seed: None,
        verify_compute: true,
        chaos_compute: None,
        max_restarts: 1,
        min_groups: 1,
        metrics: None,
        profile: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut val = |name: &str| {
            args.next()
                .ok_or_else(|| format!("missing value for {name}"))
        };
        match flag.as_str() {
            "--size" => cli.size = val("--size")?.parse().map_err(|e| format!("{e}"))?,
            "--tx" => cli.tx = val("--tx")?.parse().map_err(|e| format!("{e}"))?,
            "--rx" => cli.rx = val("--rx")?.parse().map_err(|e| format!("{e}"))?,
            "--phantom" => cli.phantom = val("--phantom")?,
            "--contrast" => {
                cli.contrast = val("--contrast")?.parse().map_err(|e| format!("{e}"))?
            }
            "--iterations" => {
                cli.iterations = val("--iterations")?.parse().map_err(|e| format!("{e}"))?
            }
            "--noise-db" => {
                cli.noise_db = Some(val("--noise-db")?.parse().map_err(|e| format!("{e}"))?)
            }
            "--arc-deg" => {
                cli.arc_deg = Some(val("--arc-deg")?.parse().map_err(|e| format!("{e}"))?)
            }
            "--born" => cli.born = true,
            "--precondition" => cli.precondition = true,
            "--positivity" => cli.positivity = true,
            "--batch" => cli.batch = Some(val("--batch")?.parse().map_err(|e| format!("{e}"))?),
            "--backend" => cli.backend = val("--backend")?.parse()?,
            "--hops" => {
                cli.hops = Some(val("--hops")?.parse().map_err(|e| format!("--hops: {e}"))?)
            }
            "--regularizer" => {
                cli.regularizer = val("--regularizer")?
                    .parse()
                    .map_err(|e| format!("--regularizer: {e}"))?
            }
            "--out" => cli.out = Some(val("--out")?),
            "--groups" => cli.groups = Some(val("--groups")?.parse().map_err(|e| format!("{e}"))?),
            "--subtree" => cli.subtree = val("--subtree")?.parse().map_err(|e| format!("{e}"))?,
            "--checkpoint" => cli.checkpoint = Some(PathBuf::from(val("--checkpoint")?)),
            "--resume" => cli.resume = true,
            "--chaos-seed" => {
                cli.chaos_seed = Some(val("--chaos-seed")?.parse().map_err(|e| format!("{e}"))?)
            }
            "--verify-compute" => {
                cli.verify_compute = match val("--verify-compute")?.as_str() {
                    "on" => true,
                    "off" => false,
                    other => return Err(format!("--verify-compute takes on|off, got {other}")),
                }
            }
            "--chaos-compute" => {
                cli.chaos_compute = Some(
                    val("--chaos-compute")?
                        .parse()
                        .map_err(|e| format!("{e}"))?,
                )
            }
            "--max-restarts" => {
                cli.max_restarts = val("--max-restarts")?.parse().map_err(|e| format!("{e}"))?
            }
            "--min-groups" => {
                cli.min_groups = val("--min-groups")?.parse().map_err(|e| format!("{e}"))?
            }
            "--metrics" => cli.metrics = Some(PathBuf::from(val("--metrics")?)),
            "--profile" => cli.profile = true,
            "--help" | "-h" => {
                println!(
                    "usage: ffw-reconstruct [--size N] [--tx T] [--rx R] \
                     [--phantom cylinder|annulus|shepp-logan|blobs] [--contrast C] \
                     [--iterations K] [--noise-db D] [--arc-deg A] [--born] \
                     [--precondition] [--positivity] [--batch B] \
                     [--backend bicgstab|born-series] [--hops F1,F2,...,1.0] \
                     [--regularizer SPEC] [--out PREFIX] \
                     [--groups G [--subtree P] [--chaos-seed S] \
                     [--max-restarts N] [--min-groups M]] \
                     [--checkpoint PATH] [--resume] \
                     [--verify-compute on|off] [--chaos-compute S] \
                     [--metrics PATH] [--profile]\n\n\
                     --hops runs the frequency-hopping (multi-frequency) DBIM: \
                     a comma-separated list of wavelength factors, strictly \
                     descending and ending at 1.0 (e.g. \"2.0,1.5,1.0\" halves \
                     the frequency, then 1.5x wavelength, then the scene \
                     frequency). All stages share one pixel grid; each stage's \
                     reconstruction seeds the next (rescaled by the wavenumber \
                     ratio). --iterations is the total budget, split across \
                     stages with the remainder on the later, higher-resolution \
                     stages. --checkpoint/--resume save and restore at hop \
                     boundaries. Not compatible with --born, --groups, or \
                     --precondition.\n\n\
                     --regularizer selects the DBIM linear-step regularizer: \
                     'tikhonov[:lambda]' (default, lambda 0 = unregularized), \
                     'smoothness[:lambda]' (seeded spatial prior penalizing the \
                     image Laplacian, lambda relative to the measured data \
                     power), or 'wgcv-lsqr[:steps[:omega]]' (hybrid-projection \
                     LSQR with automatic weighted-GCV lambda selection on a \
                     projected bidiagonal problem; steps = Golub-Kahan \
                     dimension, default 4; omega in (0, 1.5], default 0.8). \
                     Serial and --hops modes only; wgcv-lsqr is incompatible \
                     with --precondition.\n\n\
                     --batch B solves B transmitter systems per fused multi-RHS \
                     MLFMA traversal (1 <= B <= --tx; default min(tx, 8)); every \
                     batch width gives the bit-identical reconstruction. Not \
                     compatible with --precondition (that path is single-RHS).\n\n\
                     --backend selects the forward engine for every forward and \
                     adjoint solve: bicgstab (default, the paper's Krylov solver) \
                     or born-series (the convergent Born series — a fixed-point \
                     iteration with a guaranteed contraction, admitted only while \
                     the contrast bound ||G0||*max|O| stays under the limit; an \
                     over-contrast scene exits with code 3 instead of diverging). \
                     Not compatible with --precondition (BiCGStab-specific).\n\n\
                     --groups switches to the fault-tolerant distributed DBIM on a \
                     G x P in-process rank grid (G must divide --tx, P must divide \
                     16): outer-iteration checkpoints (--checkpoint), bit-identical \
                     restart (--resume), seeded fault injection (--chaos-seed), and \
                     elastic recovery when ranks die (up to --max-restarts \
                     relaunches; dead groups' transmitters are redistributed over \
                     the survivors while at least --min-groups groups remain, and \
                     dropped only below that).\n\n\
                     --verify-compute (default on) guards serial DBIM runs against \
                     silent data corruption: every MLFMA panel apply is checked \
                     against an ABFT checksum column and the Krylov recurrences \
                     are audited against the true residual. A detected flip is \
                     recomputed (checksum) or rolled back (drift) bit-identically; \
                     corruption that survives the recovery budget aborts with exit \
                     code 4 before any image is written — never a silently wrong \
                     reconstruction. --chaos-compute S injects the seeded bit-flip \
                     from FaultPlan::seeded_compute(S, 1) to exercise that ladder \
                     end to end (serial only, requires --verify-compute on).\n\n\
                     --metrics writes the run's spans, counters, series and events \
                     as JSON (JSONL when PATH ends in .jsonl); --profile prints a \
                     flamegraph-style span breakdown to stderr. Either flag turns \
                     the recorder on.\n\n\
                     exit codes: 0 success; 1 generic failure; 2 invalid usage; \
                     3 Krylov breakdown; 4 recovery budget exhausted; 5 interrupted \
                     by SIGTERM/SIGINT with the checkpoint flushed (distributed \
                     runs stop at the next outer-iteration boundary and --resume \
                     continues bit-identically)."
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(cli)
}

fn build_phantom(cli: &Cli, side: f64) -> Box<dyn Phantom + Sync> {
    match cli.phantom.as_str() {
        "cylinder" => Box::new(Cylinder {
            center: Point2::ZERO,
            radius: 0.25 * side,
            contrast: cli.contrast,
        }),
        "annulus" => Box::new(Annulus {
            center: Point2::ZERO,
            inner: 0.18 * side,
            outer: 0.30 * side,
            contrast: cli.contrast,
        }),
        "shepp-logan" => Box::new(SheppLogan::new(0.45 * side, cli.contrast)),
        "blobs" => Box::new(RandomBlobs::new(6, 0.4 * side, cli.contrast, 42)),
        other => {
            eprintln!("unknown phantom '{other}'");
            std::process::exit(2);
        }
    }
}

fn main() {
    let cli = match parse_args().and_then(|c| validate(&c).map(|()| c)) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e} (try --help)");
            std::process::exit(2);
        }
    };
    let observing = cli.metrics.is_some() || cli.profile;
    if observing {
        ffw_obs::set_enabled(true);
        if cli.groups.is_none() {
            // Serial run: one in-process "rank" that never communicates.
            // Register the per-rank comm counters anyway so the metrics JSON
            // always carries them (at zero) regardless of run mode.
            ffw_obs::counter("mpi.bytes.rank0");
            ffw_obs::counter("mpi.messages.rank0");
            ffw_obs::counter("mpi.bytes.total");
            ffw_obs::counter("mpi.messages.total");
        }
    }
    let run_span = ffw_obs::span("reconstruct");
    let mut scene = SceneConfig::new(cli.size, cli.tx, cli.rx);
    if let Some(deg) = cli.arc_deg {
        let span = deg.to_radians();
        scene = scene.with_arc(-span / 2.0, span);
    }
    let setup_span = ffw_obs::span("setup");
    // Hop mode builds one pipeline per frequency stage (shared pool and
    // pixel grid); the factor-1.0 stage doubles as the imaging pipeline.
    let hop = cli.hops.as_ref().map(|s| HopPipeline::new(&scene, s));
    let recon_single = if hop.is_none() {
        Some(Reconstruction::new(&scene))
    } else {
        None
    };
    let recon: &Reconstruction = hop
        .as_ref()
        .map(HopPipeline::final_stage)
        .or(recon_single.as_ref())
        .expect("one of the pipelines is always built");
    drop(setup_span);
    let phantom = build_phantom(&cli, recon.domain().side());
    let truth_raster = phantom.rasterize(recon.domain());

    println!(
        "scene: {0}x{0} px ({1:.1} lambda), T={2}, R={3}, phantom={4}, contrast={5}",
        cli.size,
        recon.domain().side_lambda(),
        cli.tx,
        cli.rx,
        cli.phantom,
        cli.contrast
    );
    let mut measured = Vec::new();
    if hop.is_none() {
        let synth_span = ffw_obs::span("synthesize");
        measured = recon.synthesize(phantom.as_ref());
        drop(synth_span);
        if let Some(db) = cli.noise_db {
            add_noise(&mut measured, db, 1);
            println!("added {db} dB SNR noise");
        }
    }

    let (image, label) = if let Some(h) = &hop {
        // Frequency-hopping DBIM: per-stage measurement synthesis, the hop
        // carry between stages, checkpoint/resume at hop boundaries, and a
        // cooperative SIGTERM stop between stages (exit code 5).
        let synth_span = ffw_obs::span("synthesize");
        let mut staged = h.synthesize(phantom.as_ref());
        drop(synth_span);
        if let Some(db) = cli.noise_db {
            HopPipeline::add_noise(&mut staged, db, 1);
            println!("added {db} dB SNR noise (independent per-stage streams)");
        }
        ffw_fault::install_shutdown_handler();
        let cfg = DbimConfig {
            positivity: cli.positivity,
            batch: cli.batch,
            backend: cli.backend,
            regularizer: cli.regularizer,
            verify: cli
                .verify_compute
                .then(|| VerifyConfig::with_rel_tol(recon.plan.accuracy.checksum_rel_tol())),
            ..Default::default()
        };
        let fingerprint = h.fingerprint(&scene, cli.iterations);
        let stop = ffw_fault::shutdown_requested;
        let result = match h.run(
            &staged,
            cli.iterations,
            &cfg,
            cli.checkpoint.clone(),
            cli.resume,
            fingerprint,
            Some(&stop),
        ) {
            Ok(r) => r,
            Err(ffw_tomo::HopError::Dbim(e @ DbimError::Backend(_))) => {
                eprintln!("hop stage failed: {e}");
                std::process::exit(EXIT_BREAKDOWN);
            }
            Err(ffw_tomo::HopError::Dbim(e @ DbimError::ComputeCorruption(_))) => {
                eprintln!("hop stage aborted: {e}");
                std::process::exit(EXIT_BUDGET);
            }
            Err(e @ ffw_tomo::HopError::Checkpoint(_)) => {
                eprintln!("error: {e}");
                std::process::exit(1);
            }
        };
        if let Some(stage) = result.interrupted {
            eprintln!(
                "interrupted: stopped before hop stage {stage} with every \
                 completed stage checkpointed{}; rerun with --resume to \
                 continue bit-identically",
                match &cli.checkpoint {
                    Some(p) => format!(" to {}", p.display()),
                    None => String::new(),
                }
            );
            std::process::exit(EXIT_INTERRUPTED);
        }
        println!(
            "hop DBIM ({} stages: {}; {} resumed): final residual {:.3}%",
            result.completed,
            h.schedule(),
            result.resumed,
            100.0 * result.stages.last().map_or(f64::NAN, |s| s.final_residual)
        );
        for (stage, r) in result.stages.iter().enumerate() {
            let lambda = r
                .lambdas
                .last()
                .map(|l| format!(", lambda {l:.3e}"))
                .unwrap_or_default();
            println!(
                "  stage {}: residual {:.3}%, {} forward solves{lambda}",
                result.resumed + stage,
                100.0 * r.final_residual,
                r.forward_solves
            );
        }
        (recon.image(&result.object), "DBIM (hop)")
    } else if cli.born {
        let result = recon.run_born(&measured, &BornConfig::default());
        println!("Born (single scattering): {:?}", result.stats);
        (recon.image(&result.object), "Born")
    } else if let Some(groups) = cli.groups {
        // SIGTERM/SIGINT stop the run cooperatively at the next
        // outer-iteration boundary, *after* that iteration's checkpoint is
        // flushed, so a `--resume` continues bit-identically (exit code 5).
        ffw_fault::install_shutdown_handler();
        let ft = FtConfig {
            dbim: DbimConfig {
                iterations: cli.iterations,
                positivity: cli.positivity,
                batch: cli.batch,
                backend: cli.backend,
                // Every rank's G0 panels carry the ABFT checksum column; a
                // rank that detects corruption escalates (its halo inputs
                // are consumed, so there is nothing local to recompute) and
                // the driver recovers through checkpoint-restart.
                verify: cli
                    .verify_compute
                    .then(|| VerifyConfig::with_rel_tol(recon.plan.accuracy.checksum_rel_tol())),
                ..Default::default()
            },
            groups,
            subtree_ranks: cli.subtree,
            checkpoint: cli.checkpoint.clone(),
            resume: cli.resume,
            max_restarts: cli.max_restarts,
            min_groups: cli.min_groups,
            fault_plan: cli
                .chaos_seed
                .map(|s| FaultPlan::seeded(s, groups * cli.subtree)),
            deadlock_timeout: None,
            control: Some(JobControl::new().with_shutdown()),
        };
        let result = match run_dbim_ft(&recon.setup, Arc::clone(&recon.plan), &measured, &ft) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("fault-tolerant DBIM failed: {e}");
                std::process::exit(exit_code_for(&e));
            }
        };
        if let Some(next_iter) = result.interrupted {
            eprintln!(
                "interrupted: stopped after outer iteration {} with checkpoint \
                 flushed{}; rerun with --resume to continue bit-identically",
                next_iter,
                match &cli.checkpoint {
                    Some(p) => format!(" to {}", p.display()),
                    None => String::new(),
                }
            );
            std::process::exit(EXIT_INTERRUPTED);
        }
        println!(
            "fault-tolerant DBIM ({groups} groups x {} sub-trees): residual {:.3}%, \
             lost illuminations {:?}, restarts {}",
            cli.subtree,
            100.0 * result.final_residual,
            result.lost_txs,
            result.restarts
        );
        (recon.image(&result.object), "DBIM (distributed)")
    } else {
        let cfg = DbimConfig {
            iterations: cli.iterations,
            positivity: cli.positivity,
            precondition: cli.precondition.then(|| Arc::clone(&recon.plan)),
            batch: cli.batch,
            backend: cli.backend,
            regularizer: cli.regularizer,
            verify: cli.verify_compute.then(|| {
                let mut vc = VerifyConfig::with_rel_tol(recon.plan.accuracy.checksum_rel_tol());
                if let Some(seed) = cli.chaos_compute {
                    // Per-panel verification so a recoverable seeded flip is
                    // repaired in place before its outputs are released,
                    // instead of escalating from an already-consumed panel
                    // of the amortized window.
                    vc = vc.immediate();
                    let faults = ffw_fault::FaultPlan::seeded_compute(seed, 1).activate(1);
                    vc.injector = Some(Arc::new(move |_panel| faults.on_apply(0)));
                }
                vc
            }),
            ..Default::default()
        };
        let result = match recon.run_dbim_with(&measured, &cfg) {
            Ok(r) => r,
            Err(e @ DbimError::Backend(_)) => {
                // Same exit class as a Krylov breakdown: the scene is too
                // hard for this engine — perturb it or pick another backend.
                eprintln!("DBIM failed: {e}");
                std::process::exit(EXIT_BREAKDOWN);
            }
            Err(e @ DbimError::ComputeCorruption(_)) => {
                // The recovery budget is spent and the iterate cannot be
                // trusted; abort before any image is written rather than
                // emit a silently corrupted reconstruction.
                eprintln!("DBIM aborted: {e}");
                std::process::exit(EXIT_BUDGET);
            }
        };
        println!(
            "DBIM ({}): residual {:.2}% -> {:.3}%, {:.1} MLFMA mults/solve, {} forward solves",
            cli.backend,
            100.0 * result.history[0].rel_residual,
            100.0 * result.final_residual,
            result.mlfma_mults_per_solve(),
            result.forward_solves
        );
        (recon.image(&result.object), "DBIM")
    };
    let err = image_rel_error(&image, &truth_raster);
    println!("{label} image relative error: {err:.4}");

    if let Some(prefix) = &cli.out {
        let vmax = cli.contrast.max(1e-9);
        write_pgm(
            format!("{prefix}_truth.pgm"),
            &truth_raster,
            cli.size,
            0.0,
            vmax,
        )
        .expect("write truth image");
        write_pgm(
            format!("{prefix}_reconstruction.pgm"),
            &image,
            cli.size,
            0.0,
            vmax,
        )
        .expect("write reconstruction image");
        println!("wrote {prefix}_truth.pgm and {prefix}_reconstruction.pgm");
    }

    drop(run_span);
    if observing {
        let snap = ffw_obs::snapshot();
        if cli.profile {
            eprint!("{}", snap.render_profile());
        }
        if let Some(path) = &cli.metrics {
            match snap.write_to(path) {
                Ok(()) => println!("wrote metrics to {}", path.display()),
                Err(e) => {
                    eprintln!("error: could not write metrics to {}: {e}", path.display());
                    std::process::exit(1);
                }
            }
        }
    }
}
