//! Lightweight visual output: PGM images of reconstructions and SVG line
//! charts of convergence/scaling series — no plotting dependency, plain
//! files a reviewer can open.

use std::io::Write;
use std::path::Path;

/// Writes a grid-order raster as a binary 8-bit PGM, mapping `[vmin, vmax]`
/// to `[0, 255]` (values clamped).
pub fn write_pgm(
    path: impl AsRef<Path>,
    raster: &[f64],
    n_side: usize,
    vmin: f64,
    vmax: f64,
) -> std::io::Result<()> {
    assert_eq!(raster.len(), n_side * n_side);
    assert!(vmax > vmin);
    let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
    writeln!(f, "P5\n{n_side} {n_side}\n255")?;
    let scale = 255.0 / (vmax - vmin);
    // PGM rows run top-to-bottom; our rasters are row-major bottom-up in y,
    // so flip vertically for a conventional image orientation.
    for row in (0..n_side).rev() {
        let bytes: Vec<u8> = raster[row * n_side..(row + 1) * n_side]
            .iter()
            .map(|&v| ((v - vmin) * scale).clamp(0.0, 255.0) as u8)
            .collect();
        f.write_all(&bytes)?;
    }
    Ok(())
}

/// A named series for [`write_svg_chart`].
pub struct Series<'a> {
    /// Legend label.
    pub label: &'a str,
    /// `(x, y)` points.
    pub points: Vec<(f64, f64)>,
}

/// Writes a minimal SVG line chart (log-x optional) — used to regenerate the
/// paper's scaling figures as actual figure files.
pub fn write_svg_chart(
    path: impl AsRef<Path>,
    title: &str,
    x_label: &str,
    y_label: &str,
    log_x: bool,
    series: &[Series<'_>],
) -> std::io::Result<()> {
    let (w, h) = (640.0, 420.0);
    let (ml, mr, mt, mb) = (70.0, 20.0, 40.0, 50.0);
    let tx = |x: f64| -> f64 {
        if log_x {
            x.log2()
        } else {
            x
        }
    };
    let mut xmin = f64::INFINITY;
    let mut xmax = f64::NEG_INFINITY;
    let mut ymin = 0.0f64;
    let mut ymax = f64::NEG_INFINITY;
    for s in series {
        for &(x, y) in &s.points {
            xmin = xmin.min(tx(x));
            xmax = xmax.max(tx(x));
            ymax = ymax.max(y);
            ymin = ymin.min(y);
        }
    }
    if !xmin.is_finite() || xmax <= xmin {
        xmax = xmin + 1.0;
    }
    if ymax <= ymin {
        ymax = ymin + 1.0;
    }
    ymax *= 1.05;
    let px = |x: f64| ml + (tx(x) - xmin) / (xmax - xmin) * (w - ml - mr);
    let py = |y: f64| h - mb - (y - ymin) / (ymax - ymin) * (h - mt - mb);
    let colors = ["#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e"];

    let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
    writeln!(
        f,
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{w}" height="{h}" font-family="sans-serif" font-size="12">"#
    )?;
    writeln!(f, r#"<rect width="{w}" height="{h}" fill="white"/>"#)?;
    writeln!(
        f,
        r#"<text x="{}" y="20" text-anchor="middle" font-size="14">{}</text>"#,
        w / 2.0,
        title
    )?;
    // axes
    writeln!(
        f,
        r#"<line x1="{ml}" y1="{}" x2="{}" y2="{}" stroke="black"/>"#,
        h - mb,
        w - mr,
        h - mb
    )?;
    writeln!(
        f,
        r#"<line x1="{ml}" y1="{mt}" x2="{ml}" y2="{}" stroke="black"/>"#,
        h - mb
    )?;
    writeln!(
        f,
        r#"<text x="{}" y="{}" text-anchor="middle">{}</text>"#,
        w / 2.0,
        h - 12.0,
        x_label
    )?;
    writeln!(
        f,
        r#"<text x="16" y="{}" text-anchor="middle" transform="rotate(-90 16 {})">{}</text>"#,
        h / 2.0,
        h / 2.0,
        y_label
    )?;
    // y ticks
    for i in 0..=4 {
        let yv = ymin + (ymax - ymin) * i as f64 / 4.0;
        let y = py(yv);
        writeln!(
            f,
            r#"<line x1="{}" y1="{y}" x2="{ml}" y2="{y}" stroke="black"/><text x="{}" y="{}" text-anchor="end">{:.3}</text>"#,
            ml - 4.0,
            ml - 8.0,
            y + 4.0,
            yv
        )?;
    }
    // series
    for (si, s) in series.iter().enumerate() {
        let color = colors[si % colors.len()];
        let pts: Vec<String> = s
            .points
            .iter()
            .map(|&(x, y)| format!("{:.1},{:.1}", px(x), py(y)))
            .collect();
        writeln!(
            f,
            r#"<polyline points="{}" fill="none" stroke="{color}" stroke-width="2"/>"#,
            pts.join(" ")
        )?;
        for &(x, y) in &s.points {
            writeln!(
                f,
                r#"<circle cx="{:.1}" cy="{:.1}" r="3" fill="{color}"/>"#,
                px(x),
                py(y)
            )?;
            // x tick labels from the first series
            if si == 0 {
                writeln!(
                    f,
                    r#"<text x="{:.1}" y="{}" text-anchor="middle">{}</text>"#,
                    px(x),
                    h - mb + 16.0,
                    x
                )?;
            }
        }
        writeln!(
            f,
            r#"<text x="{}" y="{}" fill="{color}">{}</text>"#,
            w - mr - 150.0,
            mt + 16.0 * si as f64,
            s.label
        )?;
    }
    writeln!(f, "</svg>")?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pgm_roundtrip_header_and_size() {
        let dir = std::env::temp_dir().join("ffw-viz-test.pgm");
        let raster: Vec<f64> = (0..64).map(|i| i as f64).collect();
        write_pgm(&dir, &raster, 8, 0.0, 63.0).expect("write");
        let bytes = std::fs::read(&dir).expect("read");
        let header = b"P5\n8 8\n255\n";
        assert_eq!(&bytes[..header.len()], header);
        assert_eq!(bytes.len(), header.len() + 64);
        // brightest pixel is the last raster value, which lands on the top row
        assert_eq!(bytes[header.len() + 7], 255);
    }

    #[test]
    fn pgm_clamps_out_of_range() {
        let dir = std::env::temp_dir().join("ffw-viz-clamp.pgm");
        write_pgm(&dir, &[-10.0, 0.5, 10.0, 1.0], 2, 0.0, 1.0).expect("write");
        let bytes = std::fs::read(&dir).expect("read");
        let n = bytes.len();
        // bottom row written last: [-10 -> 0, 0.5 -> 127ish]
        assert_eq!(bytes[n - 2], 0);
        assert!(bytes[n - 1] > 120 && bytes[n - 1] < 135);
    }

    #[test]
    fn svg_is_well_formed_enough() {
        let dir = std::env::temp_dir().join("ffw-viz-test.svg");
        write_svg_chart(
            &dir,
            "test",
            "nodes",
            "efficiency",
            true,
            &[Series {
                label: "model",
                points: vec![(64.0, 1.0), (128.0, 0.9), (256.0, 0.8)],
            }],
        )
        .expect("write");
        let s = std::fs::read_to_string(&dir).expect("read");
        assert!(s.starts_with("<svg"));
        assert!(s.trim_end().ends_with("</svg>"));
        assert!(s.contains("polyline"));
        assert!(s.matches("circle").count() == 3);
    }
}
