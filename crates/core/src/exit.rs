//! Documented process exit codes for the `ffw` command-line binaries.
//!
//! A supervisor (the `ffw-serve` retry loop, a batch scheduler, CI) must be
//! able to tell *why* a reconstruction process ended without parsing stderr:
//! a Krylov breakdown wants a different response (perturb and retry, or give
//! up on the scene) than an exhausted restart budget (requeue elsewhere) or
//! an operator-requested interruption (resume later from the checkpoint).
//! Each failure class therefore gets its own stable exit code, extending the
//! long-standing "exit 2 = CLI usage error" convention.

use ffw_fault::FaultError;

/// Success.
pub const EXIT_OK: i32 = 0;
/// Generic, unclassified failure (I/O errors, lost sends, corruption…).
pub const EXIT_FAILURE: i32 = 1;
/// Invalid command-line usage, rejected before any work started.
pub const EXIT_USAGE: i32 = 2;
/// A forward solve could not be completed: an iterative Krylov solve broke
/// down (rho underflow / non-finite residual) and did not recover after its
/// automatic restart, or the selected backend rejected the scene outright
/// (the Born-series engine's contrast bound). Either way the response is the
/// same — perturb the scene, or pick another engine.
pub const EXIT_BREAKDOWN: i32 = 3;
/// A recovery budget was exhausted: the relaunch/retry budget was spent or
/// no further recovery is possible (e.g. every illumination group lost).
pub const EXIT_BUDGET: i32 = 4;
/// The run was interrupted (SIGTERM/SIGINT or a cancel request) and stopped
/// cleanly at an outer-iteration boundary with its checkpoint flushed;
/// rerunning with `--resume` continues bit-identically.
pub const EXIT_INTERRUPTED: i32 = 5;

/// Maps a terminal [`FaultError`] from the fault-tolerant driver to its
/// documented exit code.
pub fn exit_code_for(err: &FaultError) -> i32 {
    match err {
        FaultError::KrylovBreakdown { .. } => EXIT_BREAKDOWN,
        // Detected silent data corruption that survived the bounded
        // recompute/rollback budget is a spent recovery budget, not a scene
        // property: requeue the job (ideally elsewhere), never trust the
        // output.
        FaultError::ComputeCorruption { .. } => EXIT_BUDGET,
        FaultError::Unrecoverable { .. } => EXIT_BUDGET,
        _ => EXIT_FAILURE,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breakdown_and_budget_get_distinct_codes() {
        let breakdown = FaultError::KrylovBreakdown {
            rank: 0,
            iterations: 7,
            rel_residual: 1e-3,
            detail: "rho underflow".into(),
        };
        let budget = FaultError::Unrecoverable {
            detail: "rank(s) {1} died and the restart budget (1) is exhausted".into(),
        };
        assert_eq!(exit_code_for(&breakdown), EXIT_BREAKDOWN);
        assert_eq!(exit_code_for(&budget), EXIT_BUDGET);
        assert_ne!(EXIT_BREAKDOWN, EXIT_BUDGET);
        let sdc = FaultError::ComputeCorruption {
            rank: 2,
            stage: "mlfma.apply_block".into(),
            panel: 17,
            attempts: 3,
        };
        assert_eq!(
            exit_code_for(&sdc),
            EXIT_BUDGET,
            "unrecoverable silent data corruption exhausts a recovery budget"
        );
        // The classified codes never collide with the established ones.
        for code in [EXIT_BREAKDOWN, EXIT_BUDGET, EXIT_INTERRUPTED] {
            assert!(code != EXIT_OK && code != EXIT_FAILURE && code != EXIT_USAGE);
        }
    }

    #[test]
    fn unclassified_faults_stay_generic() {
        let lost = FaultError::SendLost {
            rank: 0,
            dst: 1,
            tag: 0x100,
            attempts: 4,
        };
        assert_eq!(exit_code_for(&lost), EXIT_FAILURE);
    }
}
