//! CLI contract tests for `ffw-reconstruct`: invalid flag combinations must
//! fail *up front* with exit code 2 and a message naming the offending flag,
//! never as a mid-run assertion deep inside the rank grid.

use std::process::Command;

fn run(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_ffw-reconstruct"))
        .args(args)
        .output()
        .expect("spawn ffw-reconstruct")
}

fn assert_cli_error(args: &[&str], needle: &str) {
    let out = run(args);
    assert_eq!(
        out.status.code(),
        Some(2),
        "{args:?}: expected exit code 2, got {:?}\nstderr: {}",
        out.status.code(),
        String::from_utf8_lossy(&out.stderr)
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains(needle),
        "{args:?}: stderr does not mention '{needle}': {stderr}"
    );
}

#[test]
fn groups_must_divide_tx() {
    assert_cli_error(&["--tx", "10", "--groups", "3"], "--groups 3 must divide");
}

#[test]
fn groups_zero_is_rejected() {
    assert_cli_error(&["--groups", "0"], "--groups must be at least 1");
}

#[test]
fn subtree_must_divide_sixteen() {
    assert_cli_error(
        &["--tx", "16", "--groups", "2", "--subtree", "5"],
        "--subtree 5 must divide 16",
    );
}

#[test]
fn min_groups_must_not_exceed_groups() {
    assert_cli_error(
        &["--tx", "16", "--groups", "2", "--min-groups", "3"],
        "--min-groups 3 must be between 1 and --groups 2",
    );
}

#[test]
fn chaos_seed_requires_distributed_mode() {
    assert_cli_error(&["--chaos-seed", "7"], "--chaos-seed requires --groups");
}

#[test]
fn unknown_flag_is_a_clean_error() {
    assert_cli_error(&["--frobnicate"], "unknown flag --frobnicate");
}

#[test]
fn batch_zero_is_rejected() {
    assert_cli_error(&["--batch", "0"], "--batch must be at least 1");
}

#[test]
fn batch_must_not_exceed_tx() {
    assert_cli_error(
        &["--tx", "4", "--batch", "5"],
        "--batch 5 must not exceed --tx 4",
    );
}

#[test]
fn batch_rejects_preconditioned_mode() {
    assert_cli_error(
        &["--batch", "2", "--precondition"],
        "--batch cannot be combined with --precondition",
    );
}

#[test]
fn help_documents_batch() {
    let out = run(&["--help"]);
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("--batch"), "help does not document --batch");
}

#[test]
fn help_exits_zero_and_documents_recovery_flags() {
    let out = run(&["--help"]);
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8_lossy(&out.stdout);
    for flag in ["--min-groups", "--chaos-seed", "--max-restarts"] {
        assert!(stdout.contains(flag), "help does not document {flag}");
    }
}

#[test]
fn help_documents_every_exit_code() {
    let out = run(&["--help"]);
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8_lossy(&out.stdout);
    for needle in [
        "exit codes:",
        "3 Krylov breakdown",
        "4 recovery budget exhausted",
        "5 interrupted",
    ] {
        assert!(stdout.contains(needle), "help does not document '{needle}'");
    }
}

/// Seed 0 of the chaos matrix is a crash-class fault plan (`seed % 6 == 0`);
/// with `--max-restarts 0` the driver cannot relaunch, so the run must end
/// with the documented budget-exhausted exit code 4 — not a generic 1 and
/// not a panic.
#[test]
fn exhausted_recovery_budget_exits_with_code_4() {
    let out = Command::new(env!("CARGO_BIN_EXE_ffw-reconstruct"))
        .args([
            "--size",
            "32",
            "--tx",
            "4",
            "--rx",
            "8",
            "--iterations",
            "2",
            "--groups",
            "2",
            "--subtree",
            "2",
            "--chaos-seed",
            "0",
            "--max-restarts",
            "0",
        ])
        .env("FFW_THREADS", "2")
        .env("FFW_DEADLOCK_TIMEOUT_MS", "500")
        .output()
        .expect("spawn ffw-reconstruct");
    assert_eq!(
        out.status.code(),
        Some(4),
        "expected budget-exhausted exit code 4\nstderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("fault-tolerant DBIM failed"),
        "stderr must attribute the failure: {stderr}"
    );
}

#[test]
fn chaos_compute_rejects_distributed_mode() {
    assert_cli_error(
        &["--tx", "16", "--groups", "2", "--chaos-compute", "1"],
        "--chaos-compute is the serial compute-corruption injector",
    );
}

#[test]
fn chaos_compute_requires_verification_on() {
    assert_cli_error(
        &["--chaos-compute", "1", "--verify-compute", "off"],
        "--chaos-compute requires --verify-compute on",
    );
}

#[test]
fn verify_compute_value_must_be_on_or_off() {
    assert_cli_error(
        &["--verify-compute", "maybe"],
        "--verify-compute takes on|off",
    );
}

#[test]
fn help_documents_compute_integrity_flags() {
    let out = run(&["--help"]);
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8_lossy(&out.stdout);
    for flag in ["--verify-compute", "--chaos-compute"] {
        assert!(stdout.contains(flag), "help does not document {flag}");
    }
}

/// Seed 1 of the compute chaos matrix (`seed % 4 == 1`) corrupts more
/// consecutive recompute attempts than the budget allows, so the run must
/// abort with the documented exit code 4 — and, critically, must NOT write
/// any `.pgm`: a corrupted reconstruction on disk is exactly the silent
/// failure the integrity layer exists to prevent.
#[test]
fn unrecoverable_compute_corruption_exits_4_without_writing_images() {
    let dir = std::env::temp_dir().join(format!("ffw-cli-sdc-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create tmp dir");
    let prefix = dir.join("corrupted");
    let out = Command::new(env!("CARGO_BIN_EXE_ffw-reconstruct"))
        .args([
            "--size",
            "32",
            "--tx",
            "4",
            "--rx",
            "8",
            "--iterations",
            "2",
        ])
        .args(["--chaos-compute", "1"])
        .args(["--out", prefix.to_str().expect("utf8 path")])
        .env("FFW_THREADS", "2")
        .output()
        .expect("spawn ffw-reconstruct");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(
        out.status.code(),
        Some(4),
        "expected budget-exhausted exit code 4\nstderr: {stderr}"
    );
    assert!(
        stderr.contains("compute corruption"),
        "stderr must name the corruption: {stderr}"
    );
    for suffix in ["truth", "reconstruction"] {
        let path = format!("{}_{suffix}.pgm", prefix.display());
        assert!(
            !std::path::Path::new(&path).exists(),
            "aborted run must not leave {path} on disk"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Seed 0 of the compute chaos matrix (`seed % 4 == 0`) stays within the
/// recompute budget: the flip is detected, the panel recomputed in place,
/// and the run must finish with exit code 0 and the bit-identical
/// reconstruction of an uninjected run.
#[test]
fn recoverable_compute_corruption_recovers_bit_identically() {
    let dir = std::env::temp_dir().join(format!("ffw-cli-sdc-ok-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create tmp dir");
    let scene = [
        "--size",
        "32",
        "--tx",
        "4",
        "--rx",
        "8",
        "--iterations",
        "2",
    ];
    let clean = dir.join("clean");
    let out = Command::new(env!("CARGO_BIN_EXE_ffw-reconstruct"))
        .args(scene)
        .args(["--out", clean.to_str().expect("utf8 path")])
        .env("FFW_THREADS", "2")
        .output()
        .expect("clean run");
    assert_eq!(
        out.status.code(),
        Some(0),
        "clean run failed\nstderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let injected = dir.join("injected");
    let out = Command::new(env!("CARGO_BIN_EXE_ffw-reconstruct"))
        .args(scene)
        .args(["--chaos-compute", "0"])
        .args(["--out", injected.to_str().expect("utf8 path")])
        .env("FFW_THREADS", "2")
        .output()
        .expect("injected run");
    assert_eq!(
        out.status.code(),
        Some(0),
        "recoverable injection must not abort\nstderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let a = std::fs::read(format!("{}_reconstruction.pgm", clean.display())).expect("clean image");
    let b = std::fs::read(format!("{}_reconstruction.pgm", injected.display()))
        .expect("injected image");
    assert_eq!(
        a, b,
        "recovered reconstruction must be bit-identical to the clean run"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn hops_must_be_strictly_descending() {
    assert_cli_error(&["--hops", "1.0,2.0"], "strictly descending");
}

#[test]
fn hops_must_end_at_the_scene_frequency() {
    assert_cli_error(&["--hops", "2.0,1.5"], "must end at factor 1.0");
}

#[test]
fn hops_reject_non_numeric_factors() {
    assert_cli_error(&["--hops", "2.0,banana,1.0"], "'banana' is not a number");
}

#[test]
fn hops_reject_out_of_range_factors() {
    assert_cli_error(&["--hops", "64,1.0"], "out of range");
}

#[test]
fn hops_reject_born_mode() {
    assert_cli_error(
        &["--hops", "2.0,1.0", "--born"],
        "--hops cannot be combined with --born",
    );
}

#[test]
fn hops_reject_distributed_mode() {
    assert_cli_error(
        &["--hops", "2.0,1.0", "--tx", "16", "--groups", "2"],
        "--hops cannot be combined with --groups",
    );
}

#[test]
fn hops_reject_preconditioned_mode() {
    assert_cli_error(
        &["--hops", "2.0,1.0", "--precondition"],
        "--hops cannot be combined with --precondition",
    );
}

#[test]
fn hops_need_one_iteration_per_stage() {
    assert_cli_error(
        &["--hops", "3.0,2.0,1.0", "--iterations", "2"],
        "--iterations 2 is less than the 3 hop stages",
    );
}

#[test]
fn regularizer_rejects_unknown_family() {
    assert_cli_error(&["--regularizer", "banana"], "banana");
}

#[test]
fn regularizer_rejects_bad_wgcv_parameters() {
    assert_cli_error(&["--regularizer", "wgcv-lsqr:0"], "--regularizer");
    assert_cli_error(&["--regularizer", "wgcv-lsqr:4:9"], "--regularizer");
    assert_cli_error(&["--regularizer", "tikhonov:-1"], "--regularizer");
}

#[test]
fn wgcv_rejects_preconditioned_mode() {
    assert_cli_error(
        &["--regularizer", "wgcv-lsqr", "--precondition"],
        "cannot be combined with --precondition",
    );
}

#[test]
fn regularizer_rejects_born_mode() {
    assert_cli_error(
        &["--regularizer", "smoothness", "--born"],
        "--regularizer has no effect on --born",
    );
}

#[test]
fn regularizer_rejects_distributed_mode() {
    assert_cli_error(
        &["--regularizer", "wgcv-lsqr", "--tx", "16", "--groups", "2"],
        "--regularizer is not supported in distributed mode",
    );
}

#[test]
fn resume_requires_a_checkpoint_path() {
    assert_cli_error(
        &["--hops", "2.0,1.0", "--resume"],
        "--resume requires --checkpoint",
    );
}

#[test]
fn help_documents_hops_and_regularizer() {
    let out = run(&["--help"]);
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8_lossy(&out.stdout);
    for needle in ["--hops", "--regularizer", "wgcv-lsqr", "smoothness"] {
        assert!(stdout.contains(needle), "help does not document {needle}");
    }
}

/// The pinned 32x32 hop run: same flags twice must produce byte-identical
/// `.pgm` images (the hop driver, the wGCV lambda search, and the per-stage
/// seeded noise are all deterministic), and a `--resume` against the
/// completed checkpoint must reproduce the image without rerunning stages.
#[test]
fn hop_run_is_byte_identical_across_reruns_and_resume() {
    let dir = std::env::temp_dir().join(format!("ffw-cli-hop-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create tmp dir");
    let ckpt = dir.join("hop.ckpt");
    let scene = [
        "--size",
        "32",
        "--tx",
        "4",
        "--rx",
        "8",
        "--iterations",
        "4",
        "--hops",
        "2.0,1.0",
        "--regularizer",
        "wgcv-lsqr:4",
        "--noise-db",
        "40",
    ];
    let mut images = Vec::new();
    for name in ["a", "b"] {
        let prefix = dir.join(name);
        let out = Command::new(env!("CARGO_BIN_EXE_ffw-reconstruct"))
            .args(scene)
            .args(["--out", prefix.to_str().expect("utf8 path")])
            .args(if name == "a" {
                vec!["--checkpoint", ckpt.to_str().expect("utf8 path")]
            } else {
                vec![]
            })
            .env("FFW_THREADS", "2")
            .output()
            .expect("hop run");
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert_eq!(
            out.status.code(),
            Some(0),
            "hop run failed\nstderr: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        assert!(
            stdout.contains("hop DBIM (2 stages"),
            "stdout must report the hop stages: {stdout}"
        );
        assert!(
            stdout.contains("lambda"),
            "stdout must report the wGCV-chosen lambda: {stdout}"
        );
        images.push(
            std::fs::read(format!("{}_reconstruction.pgm", prefix.display()))
                .expect("reconstruction image"),
        );
    }
    assert_eq!(images[0], images[1], "hop reruns must be byte-identical");
    assert!(ckpt.exists(), "hop run must leave its checkpoint");

    // Resume against the completed checkpoint: all stages skip, image
    // byte-identical.
    let prefix = dir.join("resumed");
    let out = Command::new(env!("CARGO_BIN_EXE_ffw-reconstruct"))
        .args(scene)
        .args([
            "--checkpoint",
            ckpt.to_str().expect("utf8 path"),
            "--resume",
        ])
        .args(["--out", prefix.to_str().expect("utf8 path")])
        .env("FFW_THREADS", "2")
        .output()
        .expect("resumed hop run");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(
        out.status.code(),
        Some(0),
        "resumed hop run failed\nstderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(
        stdout.contains("2 resumed"),
        "resume must skip the completed stages: {stdout}"
    );
    let resumed =
        std::fs::read(format!("{}_reconstruction.pgm", prefix.display())).expect("resumed image");
    assert_eq!(
        images[0], resumed,
        "resumed image must be byte-identical to the original run"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// SIGTERM mid-run must flush the in-flight checkpoint, exit with the
/// documented code 5, and leave a state from which `--resume` finishes and
/// produces the bit-identical image of an uninterrupted run.
#[test]
fn sigterm_flushes_checkpoint_and_resume_is_bit_identical() {
    use std::time::{Duration, Instant};
    let dir = std::env::temp_dir().join(format!("ffw-cli-sigterm-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create tmp dir");
    let ckpt = dir.join("run.ckpt");
    let scene_args = [
        "--size",
        "32",
        "--tx",
        "4",
        "--rx",
        "8",
        "--iterations",
        "6",
        "--groups",
        "2",
        "--subtree",
        "2",
    ];

    // Reference: the same scene run to completion without interruption.
    let ref_out = dir.join("reference");
    let out = Command::new(env!("CARGO_BIN_EXE_ffw-reconstruct"))
        .args(scene_args)
        .args(["--out", ref_out.to_str().expect("utf8 path")])
        .env("FFW_THREADS", "2")
        .output()
        .expect("reference run");
    assert_eq!(out.status.code(), Some(0), "reference run failed");

    // Interrupted run: SIGTERM as soon as the first checkpoint lands.
    let mut child = Command::new(env!("CARGO_BIN_EXE_ffw-reconstruct"))
        .args(scene_args)
        .args(["--checkpoint", ckpt.to_str().expect("utf8 path")])
        .env("FFW_THREADS", "2")
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::piped())
        .spawn()
        .expect("spawn interruptible run");
    let deadline = Instant::now() + Duration::from_secs(120);
    while !ckpt.exists() {
        assert!(Instant::now() < deadline, "no checkpoint appeared");
        if let Some(status) = child.try_wait().expect("try_wait") {
            panic!("run finished (status {status:?}) before any checkpoint");
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    let term = Command::new("kill")
        .args(["-TERM", &child.id().to_string()])
        .status()
        .expect("send SIGTERM");
    assert!(term.success(), "kill -TERM failed");
    let out = child.wait_with_output().expect("wait for interrupted run");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(
        out.status.code(),
        Some(5),
        "expected interrupted exit code 5\nstderr: {stderr}"
    );
    assert!(
        stderr.contains("checkpoint") && stderr.contains("--resume"),
        "stderr must say the checkpoint was flushed and how to resume: {stderr}"
    );
    assert!(ckpt.exists(), "interrupted run must leave its checkpoint");

    // Resume must finish cleanly and reproduce the reference bit-for-bit.
    let res_out = dir.join("resumed");
    let out = Command::new(env!("CARGO_BIN_EXE_ffw-reconstruct"))
        .args(scene_args)
        .args([
            "--checkpoint",
            ckpt.to_str().expect("utf8 path"),
            "--resume",
        ])
        .args(["--out", res_out.to_str().expect("utf8 path")])
        .env("FFW_THREADS", "2")
        .output()
        .expect("resume run");
    assert_eq!(
        out.status.code(),
        Some(0),
        "resume failed\nstderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let reference = std::fs::read(format!("{}_reconstruction.pgm", ref_out.display()))
        .expect("reference image");
    let resumed =
        std::fs::read(format!("{}_reconstruction.pgm", res_out.display())).expect("resumed image");
    assert_eq!(
        reference, resumed,
        "resumed reconstruction must be bit-identical to the uninterrupted run"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
