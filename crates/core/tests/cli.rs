//! CLI contract tests for `ffw-reconstruct`: invalid flag combinations must
//! fail *up front* with exit code 2 and a message naming the offending flag,
//! never as a mid-run assertion deep inside the rank grid.

use std::process::Command;

fn run(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_ffw-reconstruct"))
        .args(args)
        .output()
        .expect("spawn ffw-reconstruct")
}

fn assert_cli_error(args: &[&str], needle: &str) {
    let out = run(args);
    assert_eq!(
        out.status.code(),
        Some(2),
        "{args:?}: expected exit code 2, got {:?}\nstderr: {}",
        out.status.code(),
        String::from_utf8_lossy(&out.stderr)
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains(needle),
        "{args:?}: stderr does not mention '{needle}': {stderr}"
    );
}

#[test]
fn groups_must_divide_tx() {
    assert_cli_error(&["--tx", "10", "--groups", "3"], "--groups 3 must divide");
}

#[test]
fn groups_zero_is_rejected() {
    assert_cli_error(&["--groups", "0"], "--groups must be at least 1");
}

#[test]
fn subtree_must_divide_sixteen() {
    assert_cli_error(
        &["--tx", "16", "--groups", "2", "--subtree", "5"],
        "--subtree 5 must divide 16",
    );
}

#[test]
fn min_groups_must_not_exceed_groups() {
    assert_cli_error(
        &["--tx", "16", "--groups", "2", "--min-groups", "3"],
        "--min-groups 3 must be between 1 and --groups 2",
    );
}

#[test]
fn chaos_seed_requires_distributed_mode() {
    assert_cli_error(&["--chaos-seed", "7"], "--chaos-seed requires --groups");
}

#[test]
fn unknown_flag_is_a_clean_error() {
    assert_cli_error(&["--frobnicate"], "unknown flag --frobnicate");
}

#[test]
fn batch_zero_is_rejected() {
    assert_cli_error(&["--batch", "0"], "--batch must be at least 1");
}

#[test]
fn batch_must_not_exceed_tx() {
    assert_cli_error(
        &["--tx", "4", "--batch", "5"],
        "--batch 5 must not exceed --tx 4",
    );
}

#[test]
fn batch_rejects_preconditioned_mode() {
    assert_cli_error(
        &["--batch", "2", "--precondition"],
        "--batch cannot be combined with --precondition",
    );
}

#[test]
fn help_documents_batch() {
    let out = run(&["--help"]);
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("--batch"), "help does not document --batch");
}

#[test]
fn help_exits_zero_and_documents_recovery_flags() {
    let out = run(&["--help"]);
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8_lossy(&out.stdout);
    for flag in ["--min-groups", "--chaos-seed", "--max-restarts"] {
        assert!(stdout.contains(flag), "help does not document {flag}");
    }
}
