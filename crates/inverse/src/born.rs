//! The linear single-scattering (Born approximation) inversion baseline —
//! the "conventional diffraction tomography" comparator of the paper's
//! Figs. 1 and 2.
//!
//! Under the Born approximation the total field inside the object is replaced
//! by the incident field, making the data *linear* in the object:
//! `phi_sca_t ~ GR diag(phi_inc_t) O`. Stacking transmitters gives an
//! `(R T) x N` linear least-squares problem, solved here by CGNR with early
//! termination as the only regularization (mirroring the DBIM setting).

use crate::problem::ImagingSetup;
use ffw_numerics::C64;
use ffw_solver::{cgnr, FnOp, IterConfig, SolveStats};

/// Configuration for the Born inversion.
#[derive(Clone, Copy, Debug)]
pub struct BornConfig {
    /// CGNR settings; iterations act as the regularizer.
    pub solver: IterConfig,
}

impl Default for BornConfig {
    fn default() -> Self {
        BornConfig {
            solver: IterConfig {
                tol: 1e-6,
                max_iters: 60,
            },
        }
    }
}

/// Result of the linear inversion.
#[derive(Clone, Debug)]
pub struct BornResult {
    /// Reconstructed object (tree order, includes the k0^2 factor).
    pub object: Vec<C64>,
    /// CGNR statistics.
    pub stats: SolveStats,
}

/// Runs the Born (single-scattering) reconstruction.
pub fn born_inversion(setup: &ImagingSetup, measured: &[Vec<C64>], cfg: &BornConfig) -> BornResult {
    let n = setup.n_pixels();
    let n_tx = setup.n_tx();
    let n_rx = setup.n_rx();
    assert_eq!(measured.len(), n_tx);
    let m = n_tx * n_rx;

    // Stacked forward map: B O = [GR (phi_inc_t . O)]_t
    let b_op = FnOp::new(m, n, |o: &[C64], out: &mut [C64]| {
        let mut w = vec![C64::ZERO; n];
        for t in 0..n_tx {
            let inc = setup.incident(t);
            for i in 0..n {
                w[i] = inc[i] * o[i];
            }
            setup.gr_apply(&w, &mut out[t * n_rx..(t + 1) * n_rx]);
        }
    });
    // Adjoint: B^H b = sum_t conj(phi_inc_t) . (GR^H b_t)
    let bh_op = FnOp::new(n, m, |b: &[C64], out: &mut [C64]| {
        out.iter_mut().for_each(|v| *v = C64::ZERO);
        let mut y = vec![C64::ZERO; n];
        for t in 0..n_tx {
            setup.gr_adjoint_apply(&b[t * n_rx..(t + 1) * n_rx], &mut y);
            let inc = setup.incident(t);
            for i in 0..n {
                out[i] += inc[i].conj() * y[i];
            }
        }
    });

    let stacked: Vec<C64> = measured.iter().flat_map(|v| v.iter().copied()).collect();
    let mut object = vec![C64::ZERO; n];
    let stats = cgnr(&b_op, &bh_op, &stacked, &mut object, cfg.solver);
    BornResult { object, stats }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ffw_numerics::vecops::zdotc;

    #[test]
    fn born_operator_adjoint_consistency() {
        // <B x, y> == <x, B^H y> exercised through a tiny real setup.
        let domain = ffw_geometry::Domain::new(32, 1.0);
        let r = 2.0 * domain.side();
        let setup = ImagingSetup::new(
            domain,
            ffw_geometry::TransducerArray::ring(3, r),
            ffw_geometry::TransducerArray::ring(5, r),
        );
        let n = setup.n_pixels();
        let n_tx = setup.n_tx();
        let n_rx = setup.n_rx();
        let m = n_tx * n_rx;
        let x: Vec<C64> = (0..n).map(|i| C64::cis(0.13 * i as f64)).collect();
        let y: Vec<C64> = (0..m).map(|i| C64::cis(0.7 * i as f64 + 1.0)).collect();

        let mut bx = vec![C64::ZERO; m];
        {
            let mut w = vec![C64::ZERO; n];
            for t in 0..n_tx {
                let inc = setup.incident(t);
                for i in 0..n {
                    w[i] = inc[i] * x[i];
                }
                setup.gr_apply(&w, &mut bx[t * n_rx..(t + 1) * n_rx]);
            }
        }
        let mut bhy = vec![C64::ZERO; n];
        {
            let mut yy = vec![C64::ZERO; n];
            for t in 0..n_tx {
                setup.gr_adjoint_apply(&y[t * n_rx..(t + 1) * n_rx], &mut yy);
                let inc = setup.incident(t);
                for i in 0..n {
                    bhy[i] += inc[i].conj() * yy[i];
                }
            }
        }
        let lhs = zdotc(&bx, &y);
        let rhs = zdotc(&x, &bhy);
        assert!((lhs - rhs).abs() < 1e-10 * lhs.abs(), "{lhs:?} vs {rhs:?}");
    }
}
