//! # ffw-inverse
//!
//! The inverse-scattering solvers: the distorted Born iterative method
//! (DBIM, the paper's full-wave multiple-scattering reconstruction) with
//! nonlinear conjugate-gradient optimization, and the linear Born
//! (single-scattering) baseline it is compared against in Figs. 1–2.

#![warn(missing_docs)]

pub mod born;
pub mod dbim;
pub mod multifreq;
pub mod ops;
pub mod precond;
pub mod problem;
pub mod regularize;

pub use born::{born_inversion, BornConfig, BornResult};
pub use dbim::{dbim, DbimConfig, DbimError, DbimResult, IterationRecord};
pub use ffw_solver::{BackendChoice, BackendError};
pub use multifreq::{
    multi_frequency_dbim, multi_frequency_dbim_with, FrequencyHop, HopSchedule, MultiFreqConfig,
    MultiFreqError, MultiFreqResult,
};
pub use ops::MlfmaG0;
pub use precond::LeafBlockJacobi;
pub use problem::{add_noise, synthesize_measurements, ImagingSetup};
pub use regularize::Regularizer;
