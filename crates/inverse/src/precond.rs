//! Leaf-block Jacobi preconditioner for the forward-scattering system —
//! implements the paper's Section VIII future-work item (preconditioning to
//! tame resonance/near-resonance regimes).
//!
//! The system is `A = I - G0 diag(O)`. Its block diagonal by MLFMA leaf is
//! `B_c = I - N_self diag(O_c)`, where `N_self` is the shared 64 x 64
//! self-interaction matrix (the strongest couplings in the whole operator).
//! Each block is LU-factorized once per object update; application is an
//! independent 64 x 64 solve per leaf — embarrassingly parallel and `O(N)`.

use ffw_geometry::LEAF_PIXELS;
use ffw_mlfma::MlfmaPlan;
use ffw_numerics::linalg::Matrix;
use ffw_numerics::lu::LuFactors;
use ffw_numerics::C64;
use ffw_solver::Precond;

/// Block-Jacobi preconditioner over MLFMA leaf clusters.
pub struct LeafBlockJacobi {
    blocks: Vec<Option<LuFactors>>,
}

impl LeafBlockJacobi {
    /// Builds the preconditioner for the current object (tree order).
    /// Singular blocks (possible only at exact resonances) fall back to
    /// identity.
    pub fn new(plan: &MlfmaPlan, object: &[C64]) -> Self {
        Self::build(plan, object, false)
    }

    /// Builds the preconditioner for the *adjoint* system
    /// `A^H = I - diag(conj O) N_self^H` (blockwise).
    pub fn new_adjoint(plan: &MlfmaPlan, object: &[C64]) -> Self {
        Self::build(plan, object, true)
    }

    fn build(plan: &MlfmaPlan, object: &[C64], adjoint: bool) -> Self {
        assert_eq!(object.len(), plan.n_pixels());
        let self_idx = 4; // NEAR_OFFSETS position of (0, 0)
        let n_self = &plan.near[self_idx];
        let n_leaves = plan.tree.n_leaves();
        let blocks = (0..n_leaves)
            .map(|c| {
                let o = &object[c * LEAF_PIXELS..(c + 1) * LEAF_PIXELS];
                if o.iter().all(|v| v.abs() == 0.0) {
                    // empty leaf: block is the identity, skip the LU
                    return None;
                }
                let b = Matrix::from_fn(LEAF_PIXELS, LEAF_PIXELS, |r, cc| {
                    let v = if adjoint {
                        // (I - N diag(O))^H = I - diag(conj O) N^H
                        -(o[r].conj() * n_self.at(cc, r).conj())
                    } else {
                        -(n_self.at(r, cc) * o[cc])
                    };
                    if r == cc {
                        v + C64::ONE
                    } else {
                        v
                    }
                });
                LuFactors::new(&b).ok()
            })
            .collect();
        LeafBlockJacobi { blocks }
    }

    /// Number of factorized (non-identity) blocks.
    pub fn active_blocks(&self) -> usize {
        self.blocks.iter().filter(|b| b.is_some()).count()
    }
}

impl Precond for LeafBlockJacobi {
    fn apply(&self, r: &[C64], z: &mut [C64]) {
        assert_eq!(r.len(), self.blocks.len() * LEAF_PIXELS);
        assert_eq!(z.len(), r.len());
        for (c, block) in self.blocks.iter().enumerate() {
            let range = c * LEAF_PIXELS..(c + 1) * LEAF_PIXELS;
            match block {
                Some(lu) => {
                    let mut local = r[range.clone()].to_vec();
                    lu.solve_in_place(&mut local);
                    z[range].copy_from_slice(&local);
                }
                None => z[range.clone()].copy_from_slice(&r[range]),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ffw_geometry::{Domain, QuadTree};
    use ffw_greens::{assemble_g0, tree_positions, Kernel};
    use ffw_mlfma::Accuracy;
    use ffw_phantom::{object_from_contrast, Cylinder, Phantom};
    use ffw_solver::{bicgstab, bicgstab_precond, IterConfig, ScatteringOp};

    fn scene(contrast: f64) -> (MlfmaPlan, Vec<C64>, Matrix) {
        let domain = Domain::new(32, 1.0);
        let tree = QuadTree::new(&domain);
        let plan = MlfmaPlan::new(&domain, Accuracy::low());
        let cyl = Cylinder {
            center: ffw_geometry::Point2::ZERO,
            radius: 1.2,
            contrast,
        };
        let object = object_from_contrast(&domain, &tree, &cyl.rasterize(&domain));
        let kernel = Kernel::new(domain.k0(), domain.equivalent_radius());
        let pos = tree_positions(&domain, &tree);
        let g0 = assemble_g0(&kernel, &pos);
        (plan, object, g0)
    }

    #[test]
    fn preconditioned_solution_matches_plain() {
        let (plan, object, g0) = scene(0.3);
        let n = object.len();
        let a = ScatteringOp::new(&g0, &object);
        let b: Vec<C64> = (0..n).map(|i| C64::cis(0.1 * i as f64)).collect();
        let cfg = IterConfig {
            tol: 1e-10,
            max_iters: 2000,
        };
        let mut x_plain = vec![C64::ZERO; n];
        let plain = bicgstab(&a, &b, &mut x_plain, cfg);
        let m = LeafBlockJacobi::new(&plan, &object);
        let mut x_pre = vec![C64::ZERO; n];
        let pre = bicgstab_precond(&a, &m, &b, &mut x_pre, cfg);
        assert!(plain.converged && pre.converged);
        assert!(
            ffw_numerics::vecops::rel_diff(&x_pre, &x_plain) < 1e-6,
            "same solution"
        );
    }

    #[test]
    fn preconditioner_reduces_iterations_at_high_contrast() {
        let (plan, object, g0) = scene(0.8);
        let n = object.len();
        let a = ScatteringOp::new(&g0, &object);
        let b: Vec<C64> = (0..n).map(|i| C64::cis(0.37 * i as f64)).collect();
        let cfg = IterConfig {
            tol: 1e-8,
            max_iters: 4000,
        };
        let mut x1 = vec![C64::ZERO; n];
        let plain = bicgstab(&a, &b, &mut x1, cfg);
        let m = LeafBlockJacobi::new(&plan, &object);
        let mut x2 = vec![C64::ZERO; n];
        let pre = bicgstab_precond(&a, &m, &b, &mut x2, cfg);
        assert!(pre.converged);
        assert!(
            pre.iterations < plain.iterations,
            "block-Jacobi helps at high contrast: {} vs {}",
            pre.iterations,
            plain.iterations
        );
    }

    #[test]
    fn empty_leaves_skip_factorization() {
        let (plan, object, _) = scene(0.3);
        let m = LeafBlockJacobi::new(&plan, &object);
        // the 1.2-lambda cylinder does not touch every 0.8-lambda leaf
        assert!(m.active_blocks() > 0);
        assert!(m.active_blocks() < plan.tree.n_leaves());
        // identity on an empty-object vector region
        let zero_obj = vec![C64::ZERO; object.len()];
        let ident = LeafBlockJacobi::new(&plan, &zero_obj);
        assert_eq!(ident.active_blocks(), 0);
        let r: Vec<C64> = (0..object.len()).map(|i| C64::cis(i as f64)).collect();
        let mut z = vec![C64::ZERO; r.len()];
        ident.apply(&r, &mut z);
        assert!(ffw_numerics::vecops::rel_diff(&z, &r) == 0.0);
    }
}
