//! Operator adapters binding the MLFMA engine and the dense reference
//! operators into the solver's [`LinOp`] interface.

use ffw_mlfma::MlfmaEngine;
use ffw_numerics::C64;
use ffw_solver::{BlockLinOp, LinOp};
use std::sync::Arc;

/// The MLFMA-accelerated `G0` operator (`O(N)` per apply).
pub struct MlfmaG0(pub Arc<MlfmaEngine>);

impl LinOp for MlfmaG0 {
    fn dim_out(&self) -> usize {
        self.0.n()
    }
    fn dim_in(&self) -> usize {
        self.0.n()
    }
    fn apply(&self, x: &[C64], y: &mut [C64]) {
        self.0.apply(x, y);
    }
}

impl BlockLinOp for MlfmaG0 {
    /// Fused multi-RHS apply: one tree traversal for the whole panel.
    fn apply_block(&self, xs: &[&[C64]], ys: &mut [Vec<C64>]) {
        self.0.apply_block(xs, ys);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ffw_geometry::Domain;
    use ffw_mlfma::{Accuracy, MlfmaPlan};
    use ffw_par::Pool;

    #[test]
    fn adapter_dimensions_match_plan() {
        let domain = Domain::new(32, 1.0);
        let plan = Arc::new(MlfmaPlan::new(&domain, Accuracy::low()));
        let eng = Arc::new(MlfmaEngine::new(plan, Arc::new(Pool::new(1))));
        let op = MlfmaG0(Arc::clone(&eng));
        assert_eq!(op.dim_in(), 1024);
        assert_eq!(op.dim_out(), 1024);
    }
}
