//! The imaging problem setup: domain, transducers, incident fields and the
//! receiver Green's operator (paper Fig. 3).

use ffw_geometry::{Domain, Point2, QuadTree, TransducerArray};
use ffw_greens::{incident_field, tree_positions, Kernel};
use ffw_numerics::linalg::Matrix;
use ffw_numerics::C64;
use ffw_solver::BlockLinOp;

/// Geometry + precomputed measurement operators for one imaging experiment.
///
/// The receiver operator `GR` (`R x N`) is precomputed densely — it is tiny
/// compared to `G0` (`R << N`) and is applied once per transmitter per
/// forward solution. Incident fields `phi_inc_t` are precomputed per
/// transmitter.
pub struct ImagingSetup {
    /// The imaging domain.
    pub domain: Domain,
    /// The cluster tree defining the solver's pixel ordering.
    pub tree: QuadTree,
    /// Green's-function constants.
    pub kernel: Kernel,
    /// Transmitters (`T` illuminations).
    pub transmitters: TransducerArray,
    /// Receivers (`R` measurement points).
    pub receivers: TransducerArray,
    positions: Vec<Point2>,
    gr: Matrix,
    phi_inc: Vec<Vec<C64>>,
}

impl ImagingSetup {
    /// Builds the setup; transducers must lie outside the imaging domain.
    pub fn new(domain: Domain, transmitters: TransducerArray, receivers: TransducerArray) -> Self {
        let tree = QuadTree::new(&domain);
        let kernel = Kernel::new(domain.k0(), domain.equivalent_radius());
        let bound = domain.bounding_radius();
        assert!(
            transmitters.min_radius() > bound && receivers.min_radius() > bound,
            "transducers must surround the imaging domain"
        );
        let positions = tree_positions(&domain, &tree);
        let gr = ffw_greens::assemble_gr(&kernel, &receivers, &positions);
        let phi_inc = (0..transmitters.len())
            .map(|t| incident_field(&kernel, &transmitters, t, &positions))
            .collect();
        ImagingSetup {
            domain,
            tree,
            kernel,
            transmitters,
            receivers,
            positions,
            gr,
            phi_inc,
        }
    }

    /// Number of unknown pixels.
    pub fn n_pixels(&self) -> usize {
        self.positions.len()
    }

    /// Number of transmitters `T`.
    pub fn n_tx(&self) -> usize {
        self.transmitters.len()
    }

    /// Number of receivers `R`.
    pub fn n_rx(&self) -> usize {
        self.receivers.len()
    }

    /// Pixel positions in tree order.
    pub fn positions(&self) -> &[Point2] {
        &self.positions
    }

    /// Incident field of transmitter `t` on the pixels (tree order).
    pub fn incident(&self, t: usize) -> &[C64] {
        &self.phi_inc[t]
    }

    /// `out = GR w` — fields at the receivers radiated by pixel sources `w`.
    pub fn gr_apply(&self, w: &[C64], out: &mut [C64]) {
        self.gr.matvec(w, out);
    }

    /// `out = GR^H b` — adjoint of the receiver operator.
    pub fn gr_adjoint_apply(&self, b: &[C64], out: &mut [C64]) {
        out.iter_mut().for_each(|v| *v = C64::ZERO);
        self.gr.matvec_adjoint_acc(b, out);
    }

    /// Scattered field at the receivers for total internal field `phi` and
    /// object `object`: `phi_sca = GR (O . phi)`.
    pub fn scattered(&self, object: &[C64], phi: &[C64], out: &mut [C64]) {
        let w: Vec<C64> = object.iter().zip(phi).map(|(o, p)| *o * *p).collect();
        self.gr_apply(&w, out);
    }

    /// Relative residual norm of a measurement-space residual set:
    /// `sqrt(sum_t ||r_t||^2 / sum_t ||m_t||^2)` — the paper's reported
    /// "relative residual norm (of the right-hand side)".
    pub fn relative_residual(residuals: &[Vec<C64>], measured: &[Vec<C64>]) -> f64 {
        let num: f64 = residuals
            .iter()
            .map(|r| r.iter().map(|v| v.norm_sqr()).sum::<f64>())
            .sum();
        let den: f64 = measured
            .iter()
            .map(|m| m.iter().map(|v| v.norm_sqr()).sum::<f64>())
            .sum();
        (num / den).sqrt()
    }
}

/// Synthesizes measured data `phi_mea_t` for all transmitters by solving the
/// forward problem on a known object (the inverse crime is avoided in the
/// experiments by using a different accuracy/discretization for synthesis
/// where noted). Returns per-transmitter receiver samples.
pub fn synthesize_measurements<G: BlockLinOp + ?Sized>(
    setup: &ImagingSetup,
    g0: &G,
    object: &[C64],
    forward: ffw_solver::IterConfig,
) -> Vec<Vec<C64>> {
    let n = setup.n_pixels();
    let n_tx = setup.n_tx();
    let batch = n_tx.clamp(1, 8);
    let mut out = Vec::with_capacity(n_tx);
    for t0 in (0..n_tx).step_by(batch) {
        let t1 = (t0 + batch).min(n_tx);
        let incs: Vec<&[C64]> = (t0..t1).map(|t| setup.incident(t)).collect();
        // cold starts: each column solved from zero, as the scalar loop did
        let mut phis = vec![vec![C64::ZERO; n]; t1 - t0];
        let stats = ffw_solver::solve_forward_block(g0, object, &incs, &mut phis, forward);
        for (k, t) in (t0..t1).enumerate() {
            assert!(
                stats[k].converged,
                "synthesis forward solve failed for tx {t}: {:?}",
                stats[k]
            );
            let mut rx = vec![C64::ZERO; setup.n_rx()];
            setup.scattered(object, &phis[k], &mut rx);
            out.push(rx);
        }
    }
    out
}

/// Adds complex Gaussian noise at the given SNR (dB), deterministically.
pub fn add_noise(data: &mut [Vec<C64>], snr_db: f64, seed: u64) {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let power: f64 = data
        .iter()
        .flat_map(|v| v.iter())
        .map(|v| v.norm_sqr())
        .sum::<f64>()
        / data.iter().map(|v| v.len()).sum::<usize>() as f64;
    let sigma = (power * 10f64.powf(-snr_db / 10.0) / 2.0).sqrt();
    let mut rng = StdRng::seed_from_u64(seed);
    for v in data.iter_mut().flat_map(|v| v.iter_mut()) {
        // Box-Muller
        let u1: f64 = rng.gen::<f64>().max(1e-300);
        let u2: f64 = rng.gen();
        let mag = (-2.0 * u1.ln()).sqrt();
        v.re += sigma * mag * (std::f64::consts::TAU * u2).cos();
        v.im += sigma * mag * (std::f64::consts::TAU * u2).sin();
    }
}

impl ImagingSetup {
    /// `out = GR[:, cols] w_local`: the column-sliced receiver operator used
    /// by the sub-tree-distributed solver (each rank contributes its pixel
    /// range; the group reduces the partial receiver vectors).
    pub fn gr_apply_cols(&self, cols: std::ops::Range<usize>, w_local: &[C64], out: &mut [C64]) {
        assert_eq!(w_local.len(), cols.len());
        assert_eq!(out.len(), self.n_rx());
        for (r, o) in out.iter_mut().enumerate() {
            let mut acc = C64::ZERO;
            let row = &self.gr.row(r)[cols.clone()];
            for (g, w) in row.iter().zip(w_local) {
                acc = g.mul_add(*w, acc);
            }
            *o = acc;
        }
    }

    /// `out_local = (GR^H b)[cols]`: column-sliced adjoint.
    pub fn gr_adjoint_apply_cols(
        &self,
        cols: std::ops::Range<usize>,
        b: &[C64],
        out_local: &mut [C64],
    ) {
        assert_eq!(b.len(), self.n_rx());
        assert_eq!(out_local.len(), cols.len());
        out_local.iter_mut().for_each(|v| *v = C64::ZERO);
        for (r, br) in b.iter().enumerate() {
            let row = &self.gr.row(r)[cols.clone()];
            for (o, g) in out_local.iter_mut().zip(row) {
                *o = g.conj().mul_add(*br, *o);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ffw_greens::assemble_g0;

    fn tiny_setup() -> ImagingSetup {
        let domain = Domain::new(32, 1.0);
        let r = 2.0 * domain.side();
        ImagingSetup::new(
            domain,
            TransducerArray::ring(4, r),
            TransducerArray::ring(8, r),
        )
    }

    #[test]
    fn shapes() {
        let s = tiny_setup();
        assert_eq!(s.n_pixels(), 1024);
        assert_eq!(s.n_tx(), 4);
        assert_eq!(s.n_rx(), 8);
        assert_eq!(s.incident(0).len(), 1024);
    }

    #[test]
    #[should_panic(expected = "surround")]
    fn rejects_transducers_inside_domain() {
        let domain = Domain::new(32, 1.0);
        let r = 0.2 * domain.side();
        ImagingSetup::new(
            domain,
            TransducerArray::ring(4, r),
            TransducerArray::ring(4, r),
        );
    }

    #[test]
    fn gr_adjoint_identity() {
        let s = tiny_setup();
        let n = s.n_pixels();
        let w: Vec<C64> = (0..n).map(|i| C64::cis(0.3 * i as f64)).collect();
        let b: Vec<C64> = (0..s.n_rx())
            .map(|i| C64::cis(1.1 * i as f64 + 0.2))
            .collect();
        let mut grw = vec![C64::ZERO; s.n_rx()];
        s.gr_apply(&w, &mut grw);
        let mut ghb = vec![C64::ZERO; n];
        s.gr_adjoint_apply(&b, &mut ghb);
        let lhs = ffw_numerics::vecops::zdotc(&grw, &b);
        let rhs = ffw_numerics::vecops::zdotc(&w, &ghb);
        assert!((lhs - rhs).abs() < 1e-10 * lhs.abs());
    }

    #[test]
    fn zero_object_scatters_nothing() {
        let s = tiny_setup();
        let g0 = assemble_g0(&s.kernel, s.positions());
        let object = vec![C64::ZERO; s.n_pixels()];
        let data = synthesize_measurements(&s, &g0, &object, Default::default());
        for rx in data {
            assert!(rx.iter().all(|v| v.abs() < 1e-14));
        }
    }

    #[test]
    fn relative_residual_metric() {
        let m = vec![
            vec![ffw_numerics::c64(3.0, 0.0)],
            vec![ffw_numerics::c64(4.0, 0.0)],
        ];
        let r = vec![
            vec![ffw_numerics::c64(0.3, 0.0)],
            vec![ffw_numerics::c64(0.4, 0.0)],
        ];
        assert!((ImagingSetup::relative_residual(&r, &m) - 0.1).abs() < 1e-14);
    }

    #[test]
    fn noise_changes_data_at_expected_level() {
        let mut data = vec![vec![ffw_numerics::c64(1.0, 0.0); 100]; 4];
        let clean = data.clone();
        add_noise(&mut data, 20.0, 99);
        let num: f64 = data
            .iter()
            .zip(&clean)
            .flat_map(|(a, b)| a.iter().zip(b.iter()))
            .map(|(x, y)| (*x - *y).norm_sqr())
            .sum();
        let den: f64 = clean.iter().flatten().map(|v| v.norm_sqr()).sum();
        let snr = -10.0 * (num / den).log10();
        assert!((snr - 20.0).abs() < 1.5, "snr = {snr}");
    }
}
