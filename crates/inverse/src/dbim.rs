//! The distorted Born iterative method with nonlinear conjugate-gradient
//! steps — the paper's inverse scattering solver (Fig. 4, Section VI).
//!
//! Each iteration, for each transmitter `t`:
//!
//! 1. **Residual** — solve `[I - G0 O_b] phi_t = phi_inc_t` (E1), compute
//!    `r_t = GR (O_b . phi_t) - phi_mea_t` (E2);
//! 2. **Gradient** — `grad_t = F_t^H r_t` via one *adjoint* solve (E3, E4):
//!    `y_t = GR^H r_t`, `A^H z_t = conj(O_b) . y_t`,
//!    `grad_t = conj(phi_t) . (y_t + G0^H z_t)`;
//! 3. **Step size** — with search direction `d` (Polak–Ribière conjugate
//!    gradient on the combined gradient), apply the Fréchet operator
//!    `F_t d = GR (w_t + O_b u_t)`, `w_t = phi_t . d`, `u_t = A^{-1} G0 w_t`
//!    (one more forward solve; E3, E5), and take the quadratic-fit step
//!    `alpha = -Re sum_t <r_t, F_t d> / sum_t ||F_t d||^2` (Eq. 5).
//!
//! That is three forward-class solutions per transmitter per iteration —
//! exactly the paper's accounting. The paper's only regularization is early
//! termination (Section V-B); [`DbimConfig::regularizer`] adds selectable
//! penalties and a hybrid-projection update on the linearized step (see
//! [`crate::regularize`]).

use crate::precond::LeafBlockJacobi;
use crate::problem::ImagingSetup;
use crate::regularize::{laplacian_tree, Bidiag, ProjectedProblem, Regularizer};
use ffw_fault::FaultError;
use ffw_mlfma::MlfmaPlan;
use ffw_numerics::vecops::{axpy_real, norm2, norm2_sqr, zdotc};
use ffw_numerics::C64;
use ffw_solver::{
    bicgstab_precond, estimate_g0_norm, g0_adjoint_apply_block, make_backend, make_backend_guarded,
    AdjointScatteringOp, BackendChoice, BackendError, BlockLinOp, CountingOp, DriftGuard,
    ForwardBackend, IterConfig, LinOp, ScatteringOp, VerifiedBlockOp, VerifyConfig,
    NORM_ESTIMATE_ITERS, NORM_ESTIMATE_SEED,
};
use std::sync::Arc;

/// DBIM configuration.
#[derive(Clone)]
pub struct DbimConfig {
    /// Nonlinear CG iterations (the paper runs 50).
    pub iterations: usize,
    /// Forward/adjoint solver settings (paper: BiCGStab at 1e-4).
    pub forward: IterConfig,
    /// Constrain the object to be real (lossless dielectric phantoms).
    pub real_object: bool,
    /// Warm-start each transmitter's forward solve from its previous field.
    pub warm_start: bool,
    /// Use conjugate directions (`false` = plain steepest descent, the
    /// "naive" variant the paper mentions; kept for the ablation benchmark).
    pub conjugate: bool,
    /// Regularization on the linearized step (the paper uses none — the
    /// default `tikhonov:0` reproduces it exactly). See [`Regularizer`] for
    /// the Tikhonov / seeded-smoothness / hybrid wGCV-LSQR families.
    /// `wgcv-lsqr` replaces the gradient and step passes with a
    /// Golub–Kahan hybrid projection and is incompatible with
    /// `precondition` (that path is single-RHS nonlinear-CG specific).
    pub regularizer: Regularizer,
    /// Project the reconstruction onto nonnegative real contrasts after each
    /// step (physical prior for lossless dielectrics).
    pub positivity: bool,
    /// Initial guess for the object (tree order); `None` = zero background.
    /// Used by the multi-frequency driver to hop between frequencies.
    pub initial: Option<Vec<C64>>,
    /// Leaf-block Jacobi preconditioning of the forward/adjoint solves
    /// (paper Section VIII future work). Pass the plan whose tree matches the
    /// setup; rebuilds the block factorizations whenever the object changes.
    pub precondition: Option<Arc<MlfmaPlan>>,
    /// Transmitters per batched forward/adjoint solve: each batch shares one
    /// fused MLFMA traversal per Krylov iteration (the paper's illumination
    /// parallelism, Section IV-B, realized as multi-RHS blocking).
    /// `None` picks `min(n_tx, 8)`. Ignored (scalar solves) when
    /// `precondition` is set — the leaf-block Jacobi path is single-RHS.
    /// Per-column results are bit-identical for every batch size.
    pub batch: Option<usize>,
    /// Forward engine for the (batched) forward/adjoint solves. The choice
    /// is config, not code path: `dbim` routes every solve through the
    /// [`ffw_solver::ForwardBackend`] trait, so a new engine needs only a
    /// `make_backend` arm, never a `dbim` change. The Born-series engine
    /// validates its contrast bound against each object iterate and fails
    /// typed ([`DbimError::Backend`]) instead of diverging. Incompatible
    /// with `precondition` (the leaf-block Jacobi path is BiCGStab-specific).
    pub backend: BackendChoice,
    /// End-to-end compute-integrity verification. `Some` wraps every `G0`
    /// apply in an ABFT checksum window ([`VerifiedBlockOp`], calibrate
    /// `rel_tol` from `Accuracy::checksum_rel_tol()`) and attaches a Krylov
    /// [`DriftGuard`] to the forward engine. Detected corruption is
    /// recomputed / rolled back within the bounded budget; unrecoverable
    /// corruption surfaces as [`DbimError::ComputeCorruption`] instead of a
    /// silently wrong reconstruction. Clean-run reconstructions are
    /// bit-identical to `None` (audits and checksums only *read* panel
    /// outputs), at the cost of one checksum apply per window. `None`
    /// (the default) runs unverified.
    pub verify: Option<VerifyConfig>,
}

impl std::fmt::Debug for DbimConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DbimConfig")
            .field("iterations", &self.iterations)
            .field("forward", &self.forward)
            .field("real_object", &self.real_object)
            .field("warm_start", &self.warm_start)
            .field("conjugate", &self.conjugate)
            .field("regularizer", &self.regularizer)
            .field("positivity", &self.positivity)
            .field("initial", &self.initial.as_ref().map(|v| v.len()))
            .field("precondition", &self.precondition.is_some())
            .field("batch", &self.batch)
            .field("backend", &self.backend)
            .field("verify", &self.verify)
            .finish()
    }
}

impl Default for DbimConfig {
    fn default() -> Self {
        DbimConfig {
            iterations: 50,
            forward: IterConfig::default(),
            real_object: true,
            warm_start: true,
            conjugate: true,
            regularizer: Regularizer::default(),
            positivity: false,
            initial: None,
            precondition: None,
            batch: None,
            backend: BackendChoice::default(),
            verify: None,
        }
    }
}

/// Typed failure of a DBIM reconstruction.
#[derive(Clone, Debug, PartialEq)]
pub enum DbimError {
    /// The selected forward backend rejected the problem — e.g. the
    /// Born-series contrast bound was exceeded by an object iterate.
    Backend(BackendError),
    /// Silent data corruption was detected by the compute-integrity layer
    /// ([`DbimConfig::verify`]) and survived the bounded recompute /
    /// rollback budget — the reconstruction cannot be trusted and no object
    /// is returned.
    ComputeCorruption(FaultError),
}

impl std::fmt::Display for DbimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DbimError::Backend(e) => write!(f, "forward backend rejected the problem: {e}"),
            DbimError::ComputeCorruption(e) => {
                write!(f, "unrecoverable compute corruption: {e}")
            }
        }
    }
}

impl std::error::Error for DbimError {}

impl From<BackendError> for DbimError {
    fn from(e: BackendError) -> Self {
        DbimError::Backend(e)
    }
}

/// Per-iteration convergence record.
#[derive(Clone, Debug)]
pub struct IterationRecord {
    /// Cost `sum_t ||r_t||^2` at the start of the iteration.
    pub cost: f64,
    /// Relative residual norm at the start of the iteration.
    pub rel_residual: f64,
    /// Step length taken.
    pub step: f64,
    /// Forward-solver iterations spent this DBIM iteration (all solves,
    /// whichever backend performed them).
    pub solver_iters: usize,
}

/// Result of a DBIM reconstruction.
#[derive(Clone, Debug)]
pub struct DbimResult {
    /// Reconstructed object (tree order, includes the k0^2 factor).
    pub object: Vec<C64>,
    /// Convergence history.
    pub history: Vec<IterationRecord>,
    /// Relative residual after the final update.
    pub final_residual: f64,
    /// Total forward-class solves (3 per tx per iteration + final pass).
    pub forward_solves: usize,
    /// Total `G0` (MLFMA) applications.
    pub g0_applies: usize,
    /// Per-iteration regularization parameter chosen by the hybrid
    /// wGCV-LSQR update (empty for the Tikhonov/smoothness families, whose
    /// lambda is fixed up front).
    pub lambdas: Vec<f64>,
}

impl DbimResult {
    /// Average MLFMA multiplications per forward solution — the paper reports
    /// 13.4 for the Fig. 13 run.
    pub fn mlfma_mults_per_solve(&self) -> f64 {
        self.g0_applies as f64 / self.forward_solves as f64
    }
}

/// Runs the DBIM reconstruction. `measured[t]` holds receiver samples for
/// transmitter `t`. Returns the reconstructed object in tree order.
///
/// Forward and adjoint solves go through the [`ffw_solver::ForwardBackend`]
/// selected by `cfg.backend`; a backend may reject an object iterate (the
/// Born series enforces its contrast bound at construction), which surfaces
/// as a typed [`DbimError`] instead of a silent divergence.
///
/// With [`DbimConfig::verify`] set, every `G0` apply routes through an ABFT
/// checksum window and the forward engine carries a Krylov drift guard; the
/// checksum window is flushed (and escalated corruption polled) at every
/// iteration boundary, so a corrupted pass is surfaced as
/// [`DbimError::ComputeCorruption`] before its object update is returned.
/// Clean-run reconstructions are bit-identical to the unverified path;
/// `g0_applies` then *includes* the verification applies (checksum columns
/// and drift audits) — they are real MLFMA work spent on the
/// reconstruction's behalf.
pub fn dbim<G: BlockLinOp + ?Sized>(
    setup: &ImagingSetup,
    g0: &G,
    measured: &[Vec<C64>],
    cfg: &DbimConfig,
) -> Result<DbimResult, DbimError> {
    match &cfg.verify {
        None => dbim_inner(setup, g0, measured, cfg, None, &|| None),
        Some(vc) => {
            let vop = VerifiedBlockOp::new(g0, vc.clone());
            let guard = DriftGuard::default();
            let poll = || {
                // Close the pending checksum window, then surface whatever
                // escalation is waiting (flush itself may set it).
                let flushed = vop.flush().err();
                flushed.or_else(|| vop.take_corruption())
            };
            dbim_inner(setup, &vop, measured, cfg, Some(&guard), &poll)
        }
    }
}

/// The generic DBIM loop: `g0` is either the raw Green's operator or its
/// checksum-verified wrapper; `guard`/`poll` are the drift guard attached to
/// the forward engine and the per-iteration corruption poll (no-ops on the
/// unverified path).
fn dbim_inner<G: BlockLinOp + ?Sized, P: Fn() -> Option<FaultError>>(
    setup: &ImagingSetup,
    g0: &G,
    measured: &[Vec<C64>],
    cfg: &DbimConfig,
    guard: Option<&DriftGuard>,
    poll: &P,
) -> Result<DbimResult, DbimError> {
    let _span = ffw_obs::span("dbim");
    let n = setup.n_pixels();
    let n_tx = setup.n_tx();
    assert_eq!(measured.len(), n_tx);
    assert!(
        cfg.precondition.is_none() || cfg.backend == BackendChoice::Bicgstab,
        "leaf-block Jacobi preconditioning is specific to the BiCGStab backend"
    );
    assert!(
        cfg.precondition.is_none() || !matches!(cfg.regularizer, Regularizer::WgcvLsqr { .. }),
        "the wgcv-lsqr hybrid projection replaces the nonlinear-CG passes and \
         is incompatible with leaf-block Jacobi preconditioning"
    );
    // The Green's-operator norm is a per-run constant (the object never
    // changes G0): estimate it once, before the counting wrapper, so
    // `g0_applies` keeps meaning "MLFMA applications spent reconstructing".
    let g0_norm = if cfg.backend == BackendChoice::BornSeries {
        estimate_g0_norm(g0, NORM_ESTIMATE_ITERS, NORM_ESTIMATE_SEED)
    } else {
        0.0
    };
    let g0c = CountingOp::new(g0);
    let g0 = &g0c;
    let batch = cfg.batch.unwrap_or_else(|| n_tx.min(8)).max(1);

    let mut object = match &cfg.initial {
        Some(o) => {
            assert_eq!(o.len(), n, "initial guess dimension");
            o.clone()
        }
        None => vec![C64::ZERO; n],
    };
    let mut fields: Vec<Vec<C64>> = vec![vec![C64::ZERO; n]; n_tx]; // warm starts
    let mut grad_prev = vec![C64::ZERO; n];
    let mut dir = vec![C64::ZERO; n];
    let mut history = Vec::with_capacity(cfg.iterations);
    let mut forward_solves = 0usize;

    let measured_norm_sqr: f64 = measured.iter().map(|m| norm2_sqr(m)).sum();

    // Fixed penalty weights for the closed-form families. The smoothness
    // prior's relative weight is seeded from the measured-data power so one
    // lambda transfers across scenes and noise levels.
    let tik_lambda = match cfg.regularizer {
        Regularizer::Tikhonov { lambda } => lambda,
        _ => 0.0,
    };
    let smooth_lambda = match cfg.regularizer {
        Regularizer::Smoothness { lambda } => lambda * measured_norm_sqr,
        _ => 0.0,
    };
    let mut lambdas: Vec<f64> = Vec::new();

    for it in 0..cfg.iterations {
        let _iter_span = ffw_obs::span("iter");
        ffw_obs::counter("dbim.outer_iters").inc();
        let mut cost = 0.0f64;
        let mut solver_iters = 0usize;
        let mut residuals: Vec<Vec<C64>> = Vec::with_capacity(n_tx);
        // (re)build the block-Jacobi preconditioners for the current object
        let preconds = cfg.precondition.as_ref().map(|plan| {
            (
                LeafBlockJacobi::new(plan, &object),
                LeafBlockJacobi::new_adjoint(plan, &object),
            )
        });
        // (re)build the forward engine against the current object iterate;
        // admission (e.g. the Born-series contrast bound, which depends on
        // max|O| of *this* iterate) happens here, before any solve runs.
        let backend = match guard {
            None => make_backend(cfg.backend, g0, &object, g0_norm)?,
            Some(gd) => make_backend_guarded(cfg.backend, g0, &object, g0_norm, gd)?,
        };
        // --- pass 1: fields and residuals ---
        let fields_span = ffw_obs::span("fields");
        if !cfg.warm_start {
            for f in fields.iter_mut() {
                f.iter_mut().for_each(|v| *v = C64::ZERO);
            }
        }
        match &preconds {
            // The leaf-block Jacobi path stays single-RHS.
            Some((m, _)) => {
                for (t, field) in fields.iter_mut().enumerate() {
                    let a = ScatteringOp::new(g0, &object);
                    // lint:backend-ok leaf-block Jacobi is BiCGStab-specific
                    let stats = bicgstab_precond(&a, m, setup.incident(t), field, cfg.forward);
                    forward_solves += 1;
                    solver_iters += stats.iterations;
                }
            }
            // Batched: each chunk of transmitters shares fused traversals,
            // with per-column convergence masking inside the block solver.
            None => {
                for t0 in (0..n_tx).step_by(batch) {
                    let t1 = (t0 + batch).min(n_tx);
                    let incs: Vec<&[C64]> = (t0..t1).map(|t| setup.incident(t)).collect();
                    let stats = backend.solve_block(&incs, &mut fields[t0..t1], cfg.forward);
                    forward_solves += t1 - t0;
                    solver_iters += stats.iter().map(|s| s.iterations).sum::<usize>();
                }
            }
        }
        for t in 0..n_tx {
            let mut r = vec![C64::ZERO; setup.n_rx()];
            setup.scattered(&object, &fields[t], &mut r);
            for (ri, mi) in r.iter_mut().zip(&measured[t]) {
                *ri -= *mi;
            }
            cost += norm2_sqr(&r);
            residuals.push(r);
        }
        drop(fields_span);
        let rel_residual = (cost / measured_norm_sqr).sqrt();
        ffw_obs::series_push("dbim.residual", rel_residual);

        if let Regularizer::WgcvLsqr { steps, omega } = cfg.regularizer {
            // --- hybrid-projection update (replaces the gradient and step
            // passes): Golub–Kahan bidiagonalization of the Fréchet operator,
            // wGCV lambda on the projected problem, lift, project. ---
            let wgcv_span = ffw_obs::span("wgcv");
            let mut counters = (0usize, 0usize);
            let up = wgcv_lsqr_update(
                setup,
                g0,
                backend.as_ref(),
                &fields,
                &residuals,
                &object,
                cfg.real_object,
                steps,
                omega,
                cfg.forward,
                batch,
                &mut counters,
            );
            forward_solves += counters.0;
            solver_iters += counters.1;
            drop(wgcv_span);
            drop(backend);
            for (o, d) in object.iter_mut().zip(&up.delta) {
                *o += *d;
            }
            if cfg.real_object {
                for v in object.iter_mut() {
                    v.im = 0.0;
                }
            }
            if cfg.positivity {
                for v in object.iter_mut() {
                    if v.re < 0.0 {
                        v.re = 0.0;
                    }
                    v.im = 0.0;
                }
            }
            ffw_obs::series_push("dbim.lambda", up.lambda);
            ffw_obs::series_push("dbim.step", up.step_norm);
            lambdas.push(up.lambda);
            history.push(IterationRecord {
                cost,
                rel_residual,
                step: up.step_norm,
                solver_iters,
            });
            check_integrity(guard, poll, cfg, it as u64 + 1)?;
            continue;
        }

        // --- pass 2: gradient ---
        let gradient_span = ffw_obs::span("gradient");
        let mut grad = vec![C64::ZERO; n];
        match &preconds {
            Some((_, mh)) => {
                let mut y = vec![C64::ZERO; n];
                let mut g0hz = vec![C64::ZERO; n];
                for t in 0..n_tx {
                    setup.gr_adjoint_apply(&residuals[t], &mut y);
                    let rhs: Vec<C64> = object
                        .iter()
                        .zip(&y)
                        .map(|(o, yi)| o.conj() * *yi)
                        .collect();
                    let mut z = vec![C64::ZERO; n];
                    let ah = AdjointScatteringOp::new(g0, &object);
                    // lint:backend-ok leaf-block Jacobi is BiCGStab-specific
                    let stats = bicgstab_precond(&ah, mh, &rhs, &mut z, cfg.forward);
                    forward_solves += 1;
                    solver_iters += stats.iterations;
                    ffw_solver::g0_adjoint_apply(g0, &z, &mut g0hz);
                    for i in 0..n {
                        grad[i] += fields[t][i].conj() * (y[i] + g0hz[i]);
                    }
                }
            }
            None => {
                let mut counters = (0usize, 0usize);
                grad = frechet_adjoint_apply_block(
                    setup,
                    g0,
                    backend.as_ref(),
                    &fields,
                    &object,
                    &residuals,
                    cfg.forward,
                    batch,
                    &mut counters,
                );
                forward_solves += counters.0;
                solver_iters += counters.1;
            }
        }
        if tik_lambda > 0.0 {
            for (g, o) in grad.iter_mut().zip(&object) {
                *g += *o * tik_lambda;
            }
        }
        if smooth_lambda > 0.0 {
            // gradient of lambda ||L O||^2 is lambda L^T L O = lambda L(L O)
            let llo = laplacian_tree(&setup.tree, &laplacian_tree(&setup.tree, &object));
            for (g, l) in grad.iter_mut().zip(&llo) {
                *g += *l * smooth_lambda;
            }
        }
        if cfg.real_object {
            for v in grad.iter_mut() {
                v.im = 0.0;
            }
        }
        drop(gradient_span);

        // --- conjugate direction (Polak–Ribière+, restart on negative) ---
        let g_norm_sqr = norm2_sqr(&grad);
        if g_norm_sqr == 0.0 {
            history.push(IterationRecord {
                cost,
                rel_residual,
                step: 0.0,
                solver_iters,
            });
            break;
        }
        let beta = if cfg.conjugate && it > 0 {
            let prev_sqr = norm2_sqr(&grad_prev);
            let pr = grad
                .iter()
                .zip(&grad_prev)
                .map(|(g, gp)| g.conj() * (*g - *gp))
                .sum::<C64>()
                .re
                / prev_sqr;
            pr.max(0.0)
        } else {
            0.0
        };
        for i in 0..n {
            dir[i] = -grad[i] + beta * dir[i];
        }
        grad_prev.copy_from_slice(&grad);

        // --- pass 3: step size via the Fréchet operator ---
        let step_span = ffw_obs::span("step");
        let mut num = 0.0f64;
        let mut den = 0.0f64;
        match &preconds {
            Some((m, _)) => {
                let mut w = vec![C64::ZERO; n];
                let mut g0w = vec![C64::ZERO; n];
                for t in 0..n_tx {
                    for i in 0..n {
                        w[i] = fields[t][i] * dir[i];
                    }
                    g0.apply(&w, &mut g0w); // lint:single-rhs-ok preconditioned path is scalar
                    let mut u = vec![C64::ZERO; n];
                    let a = ScatteringOp::new(g0, &object);
                    // lint:backend-ok leaf-block Jacobi is BiCGStab-specific
                    let stats = bicgstab_precond(&a, m, &g0w, &mut u, cfg.forward);
                    forward_solves += 1;
                    solver_iters += stats.iterations;
                    // F_t d = GR (w + O u)
                    let src: Vec<C64> = w
                        .iter()
                        .zip(&u)
                        .zip(&object)
                        .map(|((wi, ui), oi)| *wi + *oi * *ui)
                        .collect();
                    let mut fd = vec![C64::ZERO; setup.n_rx()];
                    setup.gr_apply(&src, &mut fd);
                    num -= zdotc(&fd, &residuals[t]).re;
                    den += norm2_sqr(&fd);
                }
            }
            None => {
                let mut counters = (0usize, 0usize);
                let fds = frechet_apply_block(
                    setup,
                    g0,
                    backend.as_ref(),
                    &fields,
                    &object,
                    &dir,
                    cfg.forward,
                    batch,
                    &mut counters,
                );
                forward_solves += counters.0;
                solver_iters += counters.1;
                for (fd, r) in fds.iter().zip(&residuals) {
                    num -= zdotc(fd, r).re;
                    den += norm2_sqr(fd);
                }
            }
        }
        if tik_lambda > 0.0 {
            // minimize ||b + alpha F d||^2 + lambda ||O + alpha d||^2
            num -= tik_lambda * zdotc(&dir, &object).re;
            den += tik_lambda * norm2_sqr(&dir);
        }
        if smooth_lambda > 0.0 {
            // minimize ||b + alpha F d||^2 + lambda ||L (O + alpha d)||^2
            let lo = laplacian_tree(&setup.tree, &object);
            let ld = laplacian_tree(&setup.tree, &dir);
            num -= smooth_lambda * zdotc(&ld, &lo).re;
            den += smooth_lambda * norm2_sqr(&ld);
        }
        drop(step_span);
        // Release the backend's borrow of the object before updating it; the
        // next iteration re-admits the updated iterate from scratch.
        drop(backend);
        let alpha = if den > 0.0 { num / den } else { 0.0 };
        ffw_obs::series_push("dbim.step", alpha);
        for i in 0..n {
            object[i] += alpha * dir[i];
        }
        if cfg.real_object {
            for v in object.iter_mut() {
                v.im = 0.0;
            }
        }
        if cfg.positivity {
            for v in object.iter_mut() {
                if v.re < 0.0 {
                    v.re = 0.0;
                }
                v.im = 0.0;
            }
        }

        history.push(IterationRecord {
            cost,
            rel_residual,
            step: alpha,
            solver_iters,
        });

        // Iteration boundary: close the checksum window and surface any
        // escalated corruption before the next pass builds on this update.
        check_integrity(guard, poll, cfg, it as u64 + 1)?;
    }

    // --- final residual pass (always unpreconditioned, batched) ---
    let _final_span = ffw_obs::span("final");
    let mut cost = 0.0f64;
    let backend = match guard {
        None => make_backend(cfg.backend, g0, &object, g0_norm)?,
        Some(gd) => make_backend_guarded(cfg.backend, g0, &object, g0_norm, gd)?,
    };
    for t0 in (0..n_tx).step_by(batch) {
        let t1 = (t0 + batch).min(n_tx);
        let incs: Vec<&[C64]> = (t0..t1).map(|t| setup.incident(t)).collect();
        let stats = backend.solve_block(&incs, &mut fields[t0..t1], cfg.forward);
        forward_solves += t1 - t0;
        let _ = stats;
    }
    drop(backend);
    for t in 0..n_tx {
        let mut r = vec![C64::ZERO; setup.n_rx()];
        setup.scattered(&object, &fields[t], &mut r);
        for (ri, mi) in r.iter_mut().zip(&measured[t]) {
            *ri -= *mi;
        }
        cost += norm2_sqr(&r);
    }
    check_integrity(guard, poll, cfg, cfg.iterations as u64 + 1)?;
    let final_residual = (cost / measured_norm_sqr).sqrt();
    ffw_obs::series_push("dbim.residual", final_residual);
    if ffw_obs::enabled() {
        ffw_obs::gauge("dbim.final_residual").set(final_residual);
    }

    Ok(DbimResult {
        object,
        history,
        final_residual,
        forward_solves,
        g0_applies: g0c.count(),
        lambdas,
    })
}

/// `out[t] = F_t d` for all transmitters, batched exactly like the step
/// pass: `w_t = phi_t . d`, `u_t = A^{-1} G0 w_t`, `F_t d = GR (w_t + O u_t)`
/// (E3, E5). `counters` accumulates `(forward_solves, solver_iters)`.
#[allow(clippy::too_many_arguments)]
fn frechet_apply_block<G: BlockLinOp + ?Sized>(
    setup: &ImagingSetup,
    g0: &G,
    backend: &dyn ForwardBackend,
    fields: &[Vec<C64>],
    object: &[C64],
    d: &[C64],
    forward: IterConfig,
    batch: usize,
    counters: &mut (usize, usize),
) -> Vec<Vec<C64>> {
    let n = object.len();
    let n_tx = fields.len();
    let mut out = Vec::with_capacity(n_tx);
    for t0 in (0..n_tx).step_by(batch) {
        let t1 = (t0 + batch).min(n_tx);
        let nb = t1 - t0;
        let ws: Vec<Vec<C64>> = (t0..t1)
            .map(|t| fields[t].iter().zip(d).map(|(f, di)| *f * *di).collect())
            .collect();
        let w_refs: Vec<&[C64]> = ws.iter().map(|v| v.as_slice()).collect();
        let mut g0ws = vec![vec![C64::ZERO; n]; nb];
        g0.apply_block(&w_refs, &mut g0ws);
        let g0w_refs: Vec<&[C64]> = g0ws.iter().map(|v| v.as_slice()).collect();
        let mut us = vec![vec![C64::ZERO; n]; nb];
        let stats = backend.solve_block(&g0w_refs, &mut us, forward);
        counters.0 += nb;
        counters.1 += stats.iter().map(|s| s.iterations).sum::<usize>();
        for k in 0..nb {
            // F_t d = GR (w + O u)
            let src: Vec<C64> = ws[k]
                .iter()
                .zip(&us[k])
                .zip(object)
                .map(|((wi, ui), oi)| *wi + *oi * *ui)
                .collect();
            let mut fd = vec![C64::ZERO; setup.n_rx()];
            setup.gr_apply(&src, &mut fd);
            out.push(fd);
        }
    }
    out
}

/// `out = sum_t F_t^H r_t`, batched exactly like the gradient pass:
/// `y_t = GR^H r_t`, `A^H z_t = conj(O) . y_t`,
/// `F_t^H r_t = conj(phi_t) . (y_t + G0^H z_t)` (E3, E4), accumulated in
/// ascending `t` order (matches the scalar path bit-for-bit).
#[allow(clippy::too_many_arguments)]
fn frechet_adjoint_apply_block<G: BlockLinOp + ?Sized>(
    setup: &ImagingSetup,
    g0: &G,
    backend: &dyn ForwardBackend,
    fields: &[Vec<C64>],
    object: &[C64],
    rs: &[Vec<C64>],
    forward: IterConfig,
    batch: usize,
    counters: &mut (usize, usize),
) -> Vec<C64> {
    let n = object.len();
    let n_tx = fields.len();
    let mut grad = vec![C64::ZERO; n];
    for t0 in (0..n_tx).step_by(batch) {
        let t1 = (t0 + batch).min(n_tx);
        let nb = t1 - t0;
        let mut ys = Vec::with_capacity(nb);
        let mut rhss = Vec::with_capacity(nb);
        for r in &rs[t0..t1] {
            let mut y = vec![C64::ZERO; n];
            setup.gr_adjoint_apply(r, &mut y);
            let rhs: Vec<C64> = object
                .iter()
                .zip(&y)
                .map(|(o, yi)| o.conj() * *yi)
                .collect();
            ys.push(y);
            rhss.push(rhs);
        }
        let rhs_refs: Vec<&[C64]> = rhss.iter().map(|v| v.as_slice()).collect();
        let mut zs = vec![vec![C64::ZERO; n]; nb];
        let stats = backend.solve_adjoint_block(&rhs_refs, &mut zs, forward);
        counters.0 += nb;
        counters.1 += stats.iter().map(|s| s.iterations).sum::<usize>();
        let z_refs: Vec<&[C64]> = zs.iter().map(|v| v.as_slice()).collect();
        let mut g0hzs = vec![vec![C64::ZERO; n]; nb];
        g0_adjoint_apply_block(g0, &z_refs, &mut g0hzs);
        for (k, t) in (t0..t1).enumerate() {
            for i in 0..n {
                grad[i] += fields[t][i].conj() * (ys[k][i] + g0hzs[k][i]);
            }
        }
    }
    grad
}

/// One hybrid-projection update (the wgcv-lsqr regularizer's whole inner
/// step): `steps` Golub–Kahan bidiagonalization steps of the stacked Fréchet
/// operator seeded by the stacked residual, wGCV-selected lambda on the
/// projected bidiagonal problem, and the lift `delta = V y`.
struct WgcvUpdate {
    /// Object update in tree order.
    delta: Vec<C64>,
    /// The wGCV-chosen regularization parameter.
    lambda: f64,
    /// Norm of the projected solution (== `||delta||` for the orthonormal
    /// Krylov basis; reported as the iteration's step length).
    step_norm: f64,
}

#[allow(clippy::too_many_arguments)]
fn wgcv_lsqr_update<G: BlockLinOp + ?Sized>(
    setup: &ImagingSetup,
    g0: &G,
    backend: &dyn ForwardBackend,
    fields: &[Vec<C64>],
    residuals: &[Vec<C64>],
    object: &[C64],
    real_object: bool,
    steps: usize,
    omega: f64,
    forward: IterConfig,
    batch: usize,
    counters: &mut (usize, usize),
) -> WgcvUpdate {
    let n = object.len();
    let zero = WgcvUpdate {
        delta: vec![C64::ZERO; n],
        lambda: 0.0,
        step_norm: 0.0,
    };
    // Linearized subproblem: min_d ||F d + r||^2, i.e. rhs b = -r (stacked
    // over transmitters). beta_1 u_1 = b.
    let beta1 = residuals.iter().map(|r| norm2_sqr(r)).sum::<f64>().sqrt();
    if beta1 == 0.0 {
        return zero;
    }
    let mut u: Vec<Vec<C64>> = residuals
        .iter()
        .map(|r| r.iter().map(|v| -*v / beta1).collect())
        .collect();
    // When the object is constrained real, the Fréchet operator acts on real
    // perturbations; its adjoint then carries the real projection `P` —
    // applying P inside the recurrence keeps (F, P F^H) an exact adjoint
    // pair over the real inner product.
    let project = |w: &mut Vec<C64>| {
        if real_object {
            for v in w.iter_mut() {
                v.im = 0.0;
            }
        }
    };
    // alpha_1 v_1 = P F^H u_1
    let mut v = frechet_adjoint_apply_block(
        setup, g0, backend, fields, object, &u, forward, batch, counters,
    );
    project(&mut v);
    let alpha1 = norm2(&v);
    if alpha1 == 0.0 {
        return zero;
    }
    for x in v.iter_mut() {
        *x = *x / alpha1;
    }
    let mut alphas = vec![alpha1];
    let mut betas: Vec<f64> = Vec::with_capacity(steps);
    let mut vs = vec![v.clone()];
    for i in 0..steps {
        // beta_{i+1} u_{i+1} = F v_i - alpha_i u_i
        let mut fu = frechet_apply_block(
            setup, g0, backend, fields, object, &v, forward, batch, counters,
        );
        for (f, ui) in fu.iter_mut().zip(&u) {
            for (fj, uj) in f.iter_mut().zip(ui) {
                *fj -= alphas[i] * *uj;
            }
        }
        let beta = fu.iter().map(|r| norm2_sqr(r)).sum::<f64>().sqrt();
        betas.push(beta);
        if beta <= f64::EPSILON * alpha1 || i + 1 == steps {
            break;
        }
        for f in fu.iter_mut() {
            for x in f.iter_mut() {
                *x = *x / beta;
            }
        }
        u = fu;
        // alpha_{i+1} v_{i+1} = P F^H u_{i+1} - beta_{i+1} v_i
        let mut w = frechet_adjoint_apply_block(
            setup, g0, backend, fields, object, &u, forward, batch, counters,
        );
        project(&mut w);
        for (wj, vj) in w.iter_mut().zip(&v) {
            *wj -= beta * *vj;
        }
        let alpha = norm2(&w);
        if alpha <= f64::EPSILON * alpha1 {
            break;
        }
        for x in w.iter_mut() {
            *x = *x / alpha;
        }
        alphas.push(alpha);
        vs.push(w.clone());
        v = w;
    }
    let bidiag = Bidiag { alphas, betas };
    let proj = ProjectedProblem::new(&bidiag, beta1);
    let lambda = proj.wgcv_lambda(omega);
    let y = proj.solve(lambda);
    let mut delta = vec![C64::ZERO; n];
    for (yi, vi) in y.iter().zip(&vs) {
        axpy_real(*yi, vi, &mut delta);
    }
    let step_norm = y.iter().map(|c| c * c).sum::<f64>().sqrt();
    WgcvUpdate {
        delta,
        lambda,
        step_norm,
    }
}

/// Surfaces escalated compute corruption at an iteration boundary: a
/// checksum escalation reported by `poll`, or a drift-guard column whose
/// rollback budget was exhausted mid-solve (the solver already froze it at
/// the last verified iterate; the reconstruction must not continue on it).
fn check_integrity<P: Fn() -> Option<FaultError>>(
    guard: Option<&DriftGuard>,
    poll: &P,
    cfg: &DbimConfig,
    iteration: u64,
) -> Result<(), DbimError> {
    if let Some(e) = poll() {
        return Err(DbimError::ComputeCorruption(e));
    }
    if let Some(gd) = guard {
        if gd.escalated() > 0 {
            let rank = cfg.verify.as_ref().map_or(0, |v| v.rank);
            return Err(DbimError::ComputeCorruption(
                FaultError::ComputeCorruption {
                    rank,
                    stage: "krylov.drift".into(),
                    panel: iteration,
                    attempts: gd.max_rollbacks + 1,
                },
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::synthesize_measurements;
    use ffw_geometry::{Domain, Point2, QuadTree, TransducerArray};
    use ffw_greens::{assemble_g0, tree_positions, Kernel};
    use ffw_phantom::{object_from_contrast, Cylinder, Phantom};

    fn small_problem() -> (ImagingSetup, ffw_numerics::linalg::Matrix, Vec<Vec<C64>>) {
        let domain = Domain::new(32, 1.0);
        let ring = 2.0 * domain.side();
        let setup = ImagingSetup::new(
            domain.clone(),
            TransducerArray::ring(3, ring),
            TransducerArray::ring(6, ring),
        );
        let tree = QuadTree::new(&domain);
        let kernel = Kernel::new(domain.k0(), domain.equivalent_radius());
        let pos = tree_positions(&domain, &tree);
        let g0 = assemble_g0(&kernel, &pos);
        let truth = Cylinder {
            center: Point2::ZERO,
            radius: 0.25 * domain.side(),
            contrast: 0.05,
        };
        let raster = truth.rasterize(&domain);
        let object = object_from_contrast(&domain, &tree, &raster);
        let measured = synthesize_measurements(&setup, &g0, &object, Default::default());
        (setup, g0, measured)
    }

    /// Batching the per-transmitter solves is a pure scheduling change:
    /// every batch width must give the bit-identical reconstruction, history
    /// and solve accounting (per-column trajectories equal the scalar path).
    #[test]
    fn batch_width_does_not_change_the_reconstruction() {
        let (setup, g0, measured) = small_problem();
        let run = |batch: Option<usize>| {
            let cfg = DbimConfig {
                iterations: 2,
                batch,
                ..Default::default()
            };
            dbim(&setup, &g0, &measured, &cfg).expect("dbim")
        };
        let base = run(Some(1));
        for b in [2usize, 3, 8] {
            let r = run(Some(b));
            assert_eq!(r.object, base.object, "batch {b} changed the object");
            assert_eq!(r.forward_solves, base.forward_solves);
            assert_eq!(r.g0_applies, base.g0_applies, "batch {b} applies");
            for (a, bb) in r.history.iter().zip(&base.history) {
                assert_eq!(a.solver_iters, bb.solver_iters);
                assert_eq!(a.cost, bb.cost);
                assert_eq!(a.step, bb.step);
            }
            assert_eq!(r.final_residual, base.final_residual);
        }
        // the default picks min(n_tx, 8) and must agree too
        let default = run(None);
        assert_eq!(default.object, base.object);
    }

    /// The compute-integrity layer must be a pure observer on clean runs:
    /// checksums and drift audits read panel outputs and recurrence state
    /// but never write them, so verify-on reconstructs the bit-identical
    /// object with the bit-identical history.
    #[test]
    fn verify_on_clean_run_is_bit_identical() {
        let (setup, g0, measured) = small_problem();
        let base_cfg = DbimConfig {
            iterations: 2,
            ..Default::default()
        };
        let base = dbim(&setup, &g0, &measured, &base_cfg).expect("clean dbim");
        let cfg = DbimConfig {
            iterations: 2,
            verify: Some(VerifyConfig::default()),
            ..Default::default()
        };
        let verified = dbim(&setup, &g0, &measured, &cfg).expect("verified dbim");
        assert_eq!(verified.object, base.object, "object must be bit-identical");
        assert_eq!(verified.final_residual, base.final_residual);
        assert_eq!(verified.forward_solves, base.forward_solves);
        assert!(
            verified.g0_applies > base.g0_applies,
            "verification applies are real MLFMA work and must be counted"
        );
        for (a, b) in verified.history.iter().zip(&base.history) {
            assert_eq!(a.cost, b.cost);
            assert_eq!(a.step, b.step);
            assert_eq!(a.solver_iters, b.solver_iters);
        }
    }

    /// A single injected bit flip inside the recompute budget is repaired in
    /// place: the run succeeds and lands on the bit-identical reconstruction.
    #[test]
    fn verify_recovers_injected_flip_bit_identically() {
        use ffw_fault::ComputeFault;
        use std::sync::Arc;
        let (setup, g0, measured) = small_problem();
        let base = dbim(
            &setup,
            &g0,
            &measured,
            &DbimConfig {
                iterations: 2,
                ..Default::default()
            },
        )
        .expect("clean dbim");
        // Per-panel verification so the corrupted panel is still pending
        // (recomputable in place) when the mismatch is caught; flip an
        // exponent bit so detection is unconditional.
        let vc = VerifyConfig {
            injector: Some(Arc::new(|panel| {
                (panel == 5).then_some(ComputeFault {
                    slot: 3,
                    bit: 55,
                    times: 1,
                })
            })),
            ..VerifyConfig::default().immediate()
        };
        let cfg = DbimConfig {
            iterations: 2,
            verify: Some(vc),
            ..Default::default()
        };
        let recovered = dbim(&setup, &g0, &measured, &cfg).expect("flip must be recovered");
        assert_eq!(
            recovered.object, base.object,
            "recovered reconstruction must be bit-identical to the clean one"
        );
        assert_eq!(recovered.final_residual, base.final_residual);
    }

    /// A flip that persists past the recompute budget must abort the
    /// reconstruction with the typed corruption error — never return an
    /// object computed from corrupted panels.
    #[test]
    fn verify_escalates_persistent_corruption() {
        use ffw_fault::ComputeFault;
        use std::sync::Arc;
        let (setup, g0, measured) = small_problem();
        let vc = VerifyConfig {
            max_recomputes: 2,
            injector: Some(Arc::new(|panel| {
                (panel == 5).then_some(ComputeFault {
                    slot: 3,
                    bit: 55,
                    times: 100, // survives every recompute
                })
            })),
            ..VerifyConfig::default().immediate()
        };
        let cfg = DbimConfig {
            iterations: 2,
            verify: Some(vc),
            ..Default::default()
        };
        let err = dbim(&setup, &g0, &measured, &cfg).expect_err("must escalate");
        match err {
            DbimError::ComputeCorruption(FaultError::ComputeCorruption {
                stage, attempts, ..
            }) => {
                assert_eq!(stage, "mlfma.apply_block");
                assert_eq!(attempts, 3, "initial compute + max_recomputes");
            }
            other => panic!("expected ComputeCorruption, got {other:?}"),
        }
    }
}
