//! Multi-frequency (frequency-hopping) DBIM.
//!
//! A standard extension in the DBIM literature the paper builds on (e.g.
//! Lavarello & Oelze's multiple-frequency DBIM, paper ref. [6]; Yu, Yuan &
//! Liu's multi-frequency DBIM-BCGS, ref. [24]): reconstruct at a low
//! frequency first — where the cost functional is nearly convex — and use
//! the recovered *permittivity contrast* as the initial guess at the next
//! frequency, where resolution is higher but local minima abound.
//!
//! All frequencies share one pixel grid (sized `lambda/10` at the highest
//! frequency, i.e. oversampled at the lower ones); the hop rescales the
//! object function `O = k0^2 delta_eps` between wavenumbers, since the
//! contrast `delta_eps` is the frequency-invariant unknown.

use crate::dbim::{dbim, DbimConfig, DbimError, DbimResult};
use crate::problem::ImagingSetup;
use ffw_numerics::C64;
use ffw_solver::BlockLinOp;

/// One frequency stage of a hop schedule.
pub struct FrequencyHop<'a, G: BlockLinOp + ?Sized> {
    /// The imaging setup at this frequency (same grid, different wavelength).
    pub setup: &'a ImagingSetup,
    /// The `G0` operator at this frequency.
    pub g0: &'a G,
    /// Measured data at this frequency.
    pub measured: &'a [Vec<C64>],
    /// DBIM iterations to spend at this stage.
    pub iterations: usize,
}

/// Result of a multi-frequency reconstruction.
pub struct MultiFreqResult {
    /// Final object at the last (highest) frequency (tree order).
    pub object: Vec<C64>,
    /// Per-stage DBIM results.
    pub stages: Vec<DbimResult>,
}

/// Runs the hop schedule, lowest frequency first. `base` provides all DBIM
/// settings except `iterations` and `initial`, which the driver manages.
/// A backend rejection at any stage (e.g. the Born-series contrast bound)
/// aborts the whole schedule with that stage's error.
pub fn multi_frequency_dbim<G: BlockLinOp + ?Sized>(
    hops: &[FrequencyHop<'_, G>],
    base: &DbimConfig,
) -> Result<MultiFreqResult, DbimError> {
    assert!(!hops.is_empty());
    // frequencies must be sorted ascending (k0 grows)
    for w in hops.windows(2) {
        assert!(
            w[0].setup.domain.k0() <= w[1].setup.domain.k0() + 1e-12,
            "hops must be ordered from low to high frequency"
        );
        assert_eq!(
            w[0].setup.n_pixels(),
            w[1].setup.n_pixels(),
            "hops must share one pixel grid"
        );
    }
    let mut stages = Vec::with_capacity(hops.len());
    let mut carry: Option<Vec<C64>> = None;
    let mut prev_k0sq = 0.0;
    for hop in hops {
        let k0sq = hop.setup.domain.k0().powi(2);
        let initial = carry.take().map(|obj| {
            // rescale O = k_prev^2 delta_eps  ->  k_new^2 delta_eps
            let s = k0sq / prev_k0sq;
            obj.into_iter().map(|v| v * s).collect::<Vec<C64>>()
        });
        let cfg = DbimConfig {
            iterations: hop.iterations,
            initial,
            ..base.clone()
        };
        let result = dbim(hop.setup, hop.g0, hop.measured, &cfg)?;
        carry = Some(result.object.clone());
        prev_k0sq = k0sq;
        stages.push(result);
    }
    Ok(MultiFreqResult {
        object: stages.last().expect("non-empty").object.clone(),
        stages,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::synthesize_measurements;
    use ffw_geometry::{Domain, Point2, QuadTree, TransducerArray};
    use ffw_greens::{assemble_g0, tree_positions, Kernel};
    use ffw_phantom::{
        contrast_from_object, image_rel_error, object_from_contrast, Cylinder, Phantom,
    };

    /// Builds a setup + dense G0 at the given wavelength on one fixed
    /// physical 32x32 grid sized lambda/10 at the highest frequency
    /// (wavelength 1).
    fn stage(wavelength: f64) -> (ImagingSetup, ffw_numerics::linalg::Matrix) {
        let domain = Domain::with_pixel_size(32, wavelength, 0.1);
        let ring = 2.0 * domain.side();
        let setup = ImagingSetup::new(
            domain.clone(),
            TransducerArray::ring(6, ring),
            TransducerArray::ring(12, ring),
        );
        let tree = QuadTree::new(&domain);
        let kernel = Kernel::new(domain.k0(), domain.equivalent_radius());
        let pos = tree_positions(&domain, &tree);
        let g0 = assemble_g0(&kernel, &pos);
        (setup, g0)
    }

    #[test]
    fn hopping_beats_single_high_frequency_at_high_contrast() {
        // One physical object, measured at two frequencies on one shared
        // grid — the classic hop. Contrast high enough that the single-stage
        // high-frequency inversion struggles.
        let (setup_hi, g0_hi) = stage(1.0);
        let (setup_lo, g0_lo) = stage(2.0);
        let contrast = 0.25;
        let domain_hi = setup_hi.domain.clone();
        let tree_hi = QuadTree::new(&domain_hi);
        let truth = Cylinder {
            center: Point2::ZERO,
            radius: 0.35 * domain_hi.side(),
            contrast,
        };
        let truth_raster = truth.rasterize(&domain_hi);
        let obj_hi = object_from_contrast(&domain_hi, &tree_hi, &truth_raster);
        // the same physical contrast distribution at the low frequency:
        // same raster (same grid), different k0^2 factor
        let domain_lo = setup_lo.domain.clone();
        let tree_lo = QuadTree::new(&domain_lo);
        let obj_lo = object_from_contrast(&domain_lo, &tree_lo, &truth_raster);

        let mea_hi = synthesize_measurements(&setup_hi, &g0_hi, &obj_hi, Default::default());
        let mea_lo = synthesize_measurements(&setup_lo, &g0_lo, &obj_lo, Default::default());

        let base = DbimConfig {
            iterations: 0,
            ..Default::default()
        };
        // single-stage: all 8 iterations at the high frequency
        let single = multi_frequency_dbim(
            &[FrequencyHop {
                setup: &setup_hi,
                g0: &g0_hi,
                measured: &mea_hi,
                iterations: 8,
            }],
            &base,
        )
        .expect("single-stage dbim");
        // hop: 4 at low, 4 at high
        let hop = multi_frequency_dbim(
            &[
                FrequencyHop {
                    setup: &setup_lo,
                    g0: &g0_lo,
                    measured: &mea_lo,
                    iterations: 4,
                },
                FrequencyHop {
                    setup: &setup_hi,
                    g0: &g0_hi,
                    measured: &mea_hi,
                    iterations: 4,
                },
            ],
            &base,
        )
        .expect("hop dbim");
        let err_single = image_rel_error(
            &contrast_from_object(&domain_hi, &tree_hi, &single.object),
            &truth_raster,
        );
        let err_hop = image_rel_error(
            &contrast_from_object(&domain_hi, &tree_hi, &hop.object),
            &truth_raster,
        );
        assert!(
            err_hop < err_single * 1.05,
            "hopping should not hurt (and usually helps): hop {err_hop:.3} vs single {err_single:.3}"
        );
        assert_eq!(hop.stages.len(), 2);
    }

    #[test]
    #[should_panic(expected = "low to high")]
    fn rejects_descending_frequencies() {
        let (setup_hi, g0_hi) = stage(1.0);
        let (setup_lo, g0_lo) = stage(2.0);
        let mea: Vec<Vec<C64>> = vec![vec![C64::ZERO; setup_hi.n_rx()]; setup_hi.n_tx()];
        let base = DbimConfig::default();
        let _ = multi_frequency_dbim(
            &[
                FrequencyHop {
                    setup: &setup_hi,
                    g0: &g0_hi,
                    measured: &mea,
                    iterations: 1,
                },
                FrequencyHop {
                    setup: &setup_lo,
                    g0: &g0_lo,
                    measured: &mea,
                    iterations: 1,
                },
            ],
            &base,
        );
    }
}
