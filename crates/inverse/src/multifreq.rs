//! Multi-frequency (frequency-hopping) DBIM.
//!
//! A standard extension in the DBIM literature the paper builds on (e.g.
//! Lavarello & Oelze's multiple-frequency DBIM, paper ref. [6]; Yu, Yuan &
//! Liu's multi-frequency DBIM-BCGS, ref. [24]): reconstruct at a low
//! frequency first — where the cost functional is nearly convex — and use
//! the recovered *permittivity contrast* as the initial guess at the next
//! frequency, where resolution is higher but local minima abound.
//!
//! All frequencies share one pixel grid (sized `lambda/10` at the highest
//! frequency, i.e. oversampled at the lower ones); the hop rescales the
//! object function `O = k0^2 delta_eps` between wavenumbers, since the
//! contrast `delta_eps` is the frequency-invariant unknown.
//!
//! Two drivers: [`multi_frequency_dbim`] runs a schedule in memory;
//! [`multi_frequency_dbim_with`] adds the first-class surface — per-hop obs
//! spans/counters, crash-consistent checkpoints at hop boundaries (riding
//! the [`ffw_fault::Checkpoint`] machinery), resume that skips completed
//! stages bit-identically, and a cooperative stop poll between hops.
//! Schedules arriving from the CLI or serve spec are parsed and validated
//! by [`HopSchedule`].

use crate::dbim::{dbim, DbimConfig, DbimError, DbimResult};
use crate::problem::ImagingSetup;
use ffw_fault::{Checkpoint, CheckpointError, Fingerprint};
use ffw_numerics::{c64, C64};
use ffw_solver::BlockLinOp;
use std::path::PathBuf;

/// Maximum wavelength factor a hop schedule may start at. Beyond this the
/// lowest-frequency grid is so oversampled that the stage carries no
/// information (and `k0` underflows usability).
pub const MAX_HOP_FACTOR: f64 = 32.0;

/// Maximum number of stages in a hop schedule.
pub const MAX_HOPS: usize = 8;

/// A validated frequency-hop schedule, expressed as *wavelength factors*
/// relative to the scene wavelength: `"2.0,1.5,1.0"` reconstructs at twice
/// the wavelength (half the frequency), then 1.5x, then the scene frequency
/// itself. Factors must be strictly descending (low to high frequency), the
/// last must be exactly `1.0` (the schedule ends at the scene frequency),
/// and every factor must lie in `[1.0, 32.0]`.
#[derive(Clone, Debug, PartialEq)]
pub struct HopSchedule(Vec<f64>);

impl HopSchedule {
    /// Parses and validates a comma-separated factor list (see the type
    /// docs for the rules). Errors are human-readable and name the rule.
    pub fn parse(s: &str) -> Result<HopSchedule, String> {
        let mut factors = Vec::new();
        for part in s.split(',') {
            let t = part.trim();
            if t.is_empty() {
                return Err("hop schedule has an empty entry".into());
            }
            let f: f64 = t
                .parse()
                .map_err(|_| format!("hop factor '{t}' is not a number"))?;
            if !f.is_finite() || !(1.0..=MAX_HOP_FACTOR).contains(&f) {
                return Err(format!("hop factor {f} out of range [1, {MAX_HOP_FACTOR}]"));
            }
            factors.push(f);
        }
        if factors.len() > MAX_HOPS {
            return Err(format!(
                "hop schedule has {} stages (max {MAX_HOPS})",
                factors.len()
            ));
        }
        for w in factors.windows(2) {
            if w[1] >= w[0] {
                return Err(format!(
                    "hop factors must be strictly descending (low to high \
                     frequency): {} then {}",
                    w[0], w[1]
                ));
            }
        }
        match factors.last() {
            Some(&last) => {
                if last == 1.0 {
                    Ok(HopSchedule(factors))
                } else {
                    Err(format!(
                        "hop schedule must end at factor 1.0 (the scene frequency), got {last}"
                    ))
                }
            }
            None => Err("hop schedule is empty".into()),
        }
    }

    /// The wavelength factors, descending to 1.0.
    pub fn factors(&self) -> &[f64] {
        &self.0
    }

    /// Number of stages.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Never true — parsing rejects empty schedules.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Splits a total DBIM iteration budget across the stages: an even
    /// split, with the remainder going to the later (higher-frequency)
    /// stages where resolution is won.
    pub fn split_iterations(&self, total: usize) -> Vec<usize> {
        let n = self.0.len();
        let base = total / n;
        let rem = total % n;
        (0..n).map(|i| base + usize::from(i >= n - rem)).collect()
    }

    /// Folds the schedule into a config fingerprint (stage count then each
    /// factor's bit pattern) for checkpoint compatibility checks.
    pub fn fold_fingerprint(&self, fp: Fingerprint) -> Fingerprint {
        self.0
            .iter()
            .fold(fp.u64(self.0.len() as u64), |acc, f| acc.f64(*f))
    }
}

impl std::fmt::Display for HopSchedule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut first = true;
        for v in &self.0 {
            if !first {
                f.write_str(",")?;
            }
            write!(f, "{v}")?;
            first = false;
        }
        Ok(())
    }
}

impl std::str::FromStr for HopSchedule {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        HopSchedule::parse(s)
    }
}

/// One frequency stage of a hop schedule.
pub struct FrequencyHop<'a, G: BlockLinOp + ?Sized> {
    /// The imaging setup at this frequency (same grid, different wavelength).
    pub setup: &'a ImagingSetup,
    /// The `G0` operator at this frequency.
    pub g0: &'a G,
    /// Measured data at this frequency.
    pub measured: &'a [Vec<C64>],
    /// DBIM iterations to spend at this stage.
    pub iterations: usize,
}

/// Result of a multi-frequency reconstruction.
#[derive(Debug)]
pub struct MultiFreqResult {
    /// Final object at the last completed frequency (tree order).
    pub object: Vec<C64>,
    /// Per-stage DBIM results for the stages *run in this process* (resumed
    /// stages were restored from the checkpoint and have no in-memory
    /// result).
    pub stages: Vec<DbimResult>,
    /// Total completed stages, including stages restored from a checkpoint.
    pub completed: usize,
    /// Stages skipped because the checkpoint already covered them.
    pub resumed: usize,
    /// `Some(h)` if a cooperative stop fired before stage `h` ran; the
    /// object is then the carry at the last completed stage's frequency.
    pub interrupted: Option<u32>,
}

/// Driver options for [`multi_frequency_dbim_with`].
#[derive(Clone, Debug, Default)]
pub struct MultiFreqConfig {
    /// DBIM settings shared by every stage; `iterations` and `initial` are
    /// managed by the driver.
    pub base: DbimConfig,
    /// Save a crash-consistent [`Checkpoint`] here after every completed
    /// stage (hop boundaries are the natural consistency points: the carry
    /// object is the entire cross-stage state).
    pub checkpoint: Option<PathBuf>,
    /// Resume from `checkpoint` if it exists: completed stages are skipped
    /// and the carry object restored bit-identically (the checkpoint stores
    /// the raw carry; the rescale to the next stage's `k0^2` happens in the
    /// driver exactly as it would in-process).
    pub resume: bool,
    /// Scene/schedule fingerprint the checkpoint must match (build with
    /// [`Fingerprint`] and [`HopSchedule::fold_fingerprint`]).
    pub fingerprint: u64,
}

/// Typed failure of a multi-frequency reconstruction.
#[derive(Debug)]
pub enum MultiFreqError {
    /// A stage's DBIM run failed (backend rejection or compute corruption).
    Dbim(DbimError),
    /// The checkpoint could not be loaded or saved.
    Checkpoint(CheckpointError),
}

impl std::fmt::Display for MultiFreqError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MultiFreqError::Dbim(e) => write!(f, "stage failed: {e}"),
            MultiFreqError::Checkpoint(e) => write!(f, "checkpoint: {e}"),
        }
    }
}

impl std::error::Error for MultiFreqError {}

impl From<DbimError> for MultiFreqError {
    fn from(e: DbimError) -> Self {
        MultiFreqError::Dbim(e)
    }
}

impl From<CheckpointError> for MultiFreqError {
    fn from(e: CheckpointError) -> Self {
        MultiFreqError::Checkpoint(e)
    }
}

fn validate_hops<G: BlockLinOp + ?Sized>(hops: &[FrequencyHop<'_, G>]) {
    assert!(!hops.is_empty());
    // frequencies must be sorted ascending (k0 grows)
    for w in hops.windows(2) {
        assert!(
            w[0].setup.domain.k0() <= w[1].setup.domain.k0() + 1e-12,
            "hops must be ordered from low to high frequency"
        );
        assert_eq!(
            w[0].setup.n_pixels(),
            w[1].setup.n_pixels(),
            "hops must share one pixel grid"
        );
    }
}

/// Runs the hop schedule, lowest frequency first. `base` provides all DBIM
/// settings except `iterations` and `initial`, which the driver manages.
/// A backend rejection at any stage (e.g. the Born-series contrast bound)
/// aborts the whole schedule with that stage's error.
pub fn multi_frequency_dbim<G: BlockLinOp + ?Sized>(
    hops: &[FrequencyHop<'_, G>],
    base: &DbimConfig,
) -> Result<MultiFreqResult, DbimError> {
    let cfg = MultiFreqConfig {
        base: base.clone(),
        ..Default::default()
    };
    multi_frequency_dbim_with(hops, &cfg, None).map_err(|e| match e {
        MultiFreqError::Dbim(d) => d,
        MultiFreqError::Checkpoint(c) => unreachable!("no checkpoint configured: {c}"),
    })
}

/// The first-class hop driver: [`multi_frequency_dbim`] plus per-hop obs,
/// checkpoint/resume at hop boundaries, and a cooperative `stop` poll
/// between stages (a pending stop returns the carry with
/// [`MultiFreqResult::interrupted`] set instead of discarding completed
/// work — the checkpoint for every completed stage is already on disk).
pub fn multi_frequency_dbim_with<G: BlockLinOp + ?Sized>(
    hops: &[FrequencyHop<'_, G>],
    cfg: &MultiFreqConfig,
    stop: Option<&dyn Fn() -> bool>,
) -> Result<MultiFreqResult, MultiFreqError> {
    validate_hops(hops);
    let _span = ffw_obs::span("multifreq");
    let mut start_stage = 0usize;
    let mut carry: Option<Vec<C64>> = None;
    let mut residual_history: Vec<f64> = Vec::new();
    if cfg.resume {
        let path = cfg
            .checkpoint
            .as_ref()
            .expect("resume requires a checkpoint path");
        if path.exists() {
            let ckpt = Checkpoint::load(path, cfg.fingerprint)?;
            let done = ckpt.next_iter as usize;
            if done > hops.len() {
                return Err(MultiFreqError::Checkpoint(CheckpointError::Malformed(
                    format!(
                        "checkpoint covers {done} stages, schedule has {}",
                        hops.len()
                    ),
                )));
            }
            if done > 0 {
                let n = hops[0].setup.n_pixels();
                if ckpt.object.len() != n {
                    return Err(MultiFreqError::Checkpoint(CheckpointError::Malformed(
                        format!(
                            "checkpoint object has {} pixels, grid has {n}",
                            ckpt.object.len()
                        ),
                    )));
                }
                carry = Some(ckpt.object.iter().map(|&(re, im)| c64(re, im)).collect());
                residual_history = ckpt.residual_history;
                start_stage = done;
                ffw_obs::counter("multifreq.resumed_stages").add(done as u64);
            }
        }
    }

    let mut stages = Vec::with_capacity(hops.len().saturating_sub(start_stage));
    for (h, hop) in hops.iter().enumerate().skip(start_stage) {
        if let Some(stop) = stop {
            if stop() {
                return Ok(MultiFreqResult {
                    object: carry.unwrap_or_default(),
                    stages,
                    completed: h,
                    resumed: start_stage,
                    interrupted: Some(h as u32),
                });
            }
        }
        let _hop_span = ffw_obs::span("hop");
        ffw_obs::counter("multifreq.hops").inc();
        let k0sq = hop.setup.domain.k0().powi(2);
        let initial = carry.take().map(|obj| {
            // rescale O = k_prev^2 delta_eps  ->  k_new^2 delta_eps; the
            // previous stage's k0 comes from the schedule itself, so a
            // resumed carry rescales bit-identically to an in-process one
            let prev_k0sq = hops[h - 1].setup.domain.k0().powi(2);
            let s = k0sq / prev_k0sq;
            obj.into_iter().map(|v| v * s).collect::<Vec<C64>>()
        });
        let stage_cfg = DbimConfig {
            iterations: hop.iterations,
            initial,
            ..cfg.base.clone()
        };
        let result = dbim(hop.setup, hop.g0, hop.measured, &stage_cfg)?;
        ffw_obs::series_push("multifreq.stage_residual", result.final_residual);
        residual_history.push(result.final_residual);
        carry = Some(result.object.clone());
        stages.push(result);
        if let Some(path) = &cfg.checkpoint {
            let object: Vec<(f64, f64)> = carry
                .as_ref()
                .expect("carry set above")
                .iter()
                .map(|v| (v.re, v.im))
                .collect();
            // The carry is the entire cross-stage state; grad_prev/dir are
            // per-stage and restart fresh, but the decoder requires them to
            // match the object length.
            let zeros = vec![(0.0, 0.0); object.len()];
            let ckpt = Checkpoint {
                fingerprint: cfg.fingerprint,
                next_iter: (h + 1) as u32,
                residual_history: residual_history.clone(),
                object,
                grad_prev: zeros.clone(),
                dir: zeros,
                ..Default::default()
            };
            ckpt.save(path)?;
        }
    }
    Ok(MultiFreqResult {
        object: carry.expect("non-empty schedule"),
        stages,
        completed: hops.len(),
        resumed: start_stage,
        interrupted: None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::synthesize_measurements;
    use crate::regularize::Regularizer;
    use ffw_geometry::{Domain, Point2, QuadTree, TransducerArray};
    use ffw_greens::{assemble_g0, tree_positions, Kernel};
    use ffw_phantom::{
        contrast_from_object, image_rel_error, object_from_contrast, Cylinder, Phantom,
    };

    /// Builds a setup + dense G0 at the given wavelength on one fixed
    /// physical 32x32 grid sized lambda/10 at the highest frequency
    /// (wavelength 1).
    fn stage(wavelength: f64) -> (ImagingSetup, ffw_numerics::linalg::Matrix) {
        stage_arc(wavelength, 2.0 * std::f64::consts::PI)
    }

    /// Like [`stage`] but with transmitters and receivers restricted to an
    /// arc of the given angular width (the limited-aperture scenarios).
    fn stage_arc(wavelength: f64, span: f64) -> (ImagingSetup, ffw_numerics::linalg::Matrix) {
        stage_arc_counts(wavelength, span, 6, 12)
    }

    fn stage_arc_counts(
        wavelength: f64,
        span: f64,
        n_tx: usize,
        n_rx: usize,
    ) -> (ImagingSetup, ffw_numerics::linalg::Matrix) {
        let domain = Domain::with_pixel_size(32, wavelength, 0.1);
        let ring = 2.0 * domain.side();
        let full = (span - 2.0 * std::f64::consts::PI).abs() < 1e-12;
        let (tx, rx) = if full {
            (
                TransducerArray::ring(n_tx, ring),
                TransducerArray::ring(n_rx, ring),
            )
        } else {
            (
                TransducerArray::arc(n_tx, ring, 0.0, span),
                TransducerArray::arc(n_rx, ring, 0.0, span),
            )
        };
        let setup = ImagingSetup::new(domain.clone(), tx, rx);
        let tree = QuadTree::new(&domain);
        let kernel = Kernel::new(domain.k0(), domain.equivalent_radius());
        let pos = tree_positions(&domain, &tree);
        let g0 = assemble_g0(&kernel, &pos);
        (setup, g0)
    }

    fn truth_and_measurements(
        setups: &[(&ImagingSetup, &ffw_numerics::linalg::Matrix)],
        contrast: f64,
        radius_factor: f64,
    ) -> (Vec<f64>, Vec<Vec<Vec<C64>>>) {
        let domain = setups[0].0.domain.clone();
        let truth = Cylinder {
            center: Point2::ZERO,
            radius: radius_factor * domain.side(),
            contrast,
        };
        let truth_raster = truth.rasterize(&domain);
        let measured = setups
            .iter()
            .map(|(setup, g0)| {
                let tree = QuadTree::new(&setup.domain);
                let obj = object_from_contrast(&setup.domain, &tree, &truth_raster);
                synthesize_measurements(setup, *g0, &obj, Default::default())
            })
            .collect();
        (truth_raster, measured)
    }

    fn rel_error(setup: &ImagingSetup, object: &[C64], truth_raster: &[f64]) -> f64 {
        let tree = QuadTree::new(&setup.domain);
        image_rel_error(
            &contrast_from_object(&setup.domain, &tree, object),
            truth_raster,
        )
    }

    #[test]
    fn hopping_beats_single_high_frequency_at_high_contrast() {
        // One physical object, measured at two frequencies on one shared
        // grid — the classic hop. Contrast high enough that the single-stage
        // high-frequency inversion struggles. Non-regression form: on this
        // borderline full-ring case hopping must at least not hurt.
        let (setup_hi, g0_hi) = stage(1.0);
        let (setup_lo, g0_lo) = stage(2.0);
        let (truth_raster, measured) =
            truth_and_measurements(&[(&setup_hi, &g0_hi), (&setup_lo, &g0_lo)], 0.25, 0.35);
        let (mea_hi, mea_lo) = (&measured[0], &measured[1]);

        let base = DbimConfig {
            iterations: 0,
            ..Default::default()
        };
        // single-stage: all 8 iterations at the high frequency
        let single = multi_frequency_dbim(
            &[FrequencyHop {
                setup: &setup_hi,
                g0: &g0_hi,
                measured: mea_hi,
                iterations: 8,
            }],
            &base,
        )
        .expect("single-stage dbim");
        // hop: 4 at low, 4 at high
        let hop = multi_frequency_dbim(
            &[
                FrequencyHop {
                    setup: &setup_lo,
                    g0: &g0_lo,
                    measured: mea_lo,
                    iterations: 4,
                },
                FrequencyHop {
                    setup: &setup_hi,
                    g0: &g0_hi,
                    measured: mea_hi,
                    iterations: 4,
                },
            ],
            &base,
        )
        .expect("hop dbim");
        let err_single = rel_error(&setup_hi, &single.object, &truth_raster);
        let err_hop = rel_error(&setup_hi, &hop.object, &truth_raster);
        assert!(
            err_hop < err_single * 1.05,
            "hopping should not hurt (and usually helps): hop {err_hop:.3} vs single {err_single:.3}"
        );
        assert_eq!(hop.stages.len(), 2);
        assert_eq!(hop.completed, 2);
        assert_eq!(hop.resumed, 0);
        assert!(hop.interrupted.is_none());
    }

    /// The pinned strict-win scenario: a 210-degree limited aperture
    /// (8 transmitters, 16 receivers on the same arc) at contrast 0.25 —
    /// plain single-frequency DBIM stalls around rel-error 0.54 while the
    /// 2.0→1.0 hop schedule with the wGCV-regularized linear step
    /// reconstructs to ~0.29 (steps=8) / ~0.24 (steps=12). This is the
    /// scenario the `hop_quality` bench gate pins (with steps=12 there).
    #[test]
    fn hopping_strictly_wins_on_limited_aperture() {
        let span = 7.0 * std::f64::consts::PI / 6.0; // 210 degrees
        let (setup_hi, g0_hi) = stage_arc_counts(1.0, span, 8, 16);
        let (setup_lo, g0_lo) = stage_arc_counts(2.0, span, 8, 16);
        let (truth_raster, measured) =
            truth_and_measurements(&[(&setup_hi, &g0_hi), (&setup_lo, &g0_lo)], 0.25, 0.35);
        let (mea_hi, mea_lo) = (&measured[0], &measured[1]);

        let single = multi_frequency_dbim(
            &[FrequencyHop {
                setup: &setup_hi,
                g0: &g0_hi,
                measured: mea_hi,
                iterations: 8,
            }],
            &DbimConfig {
                iterations: 0,
                ..Default::default()
            },
        )
        .expect("single-stage dbim");
        let hop = multi_frequency_dbim(
            &[
                FrequencyHop {
                    setup: &setup_lo,
                    g0: &g0_lo,
                    measured: mea_lo,
                    iterations: 4,
                },
                FrequencyHop {
                    setup: &setup_hi,
                    g0: &g0_hi,
                    measured: mea_hi,
                    iterations: 4,
                },
            ],
            &DbimConfig {
                iterations: 0,
                regularizer: Regularizer::WgcvLsqr {
                    steps: 8,
                    omega: crate::regularize::DEFAULT_WGCV_OMEGA,
                },
                ..Default::default()
            },
        )
        .expect("hop dbim");
        let err_single = rel_error(&setup_hi, &single.object, &truth_raster);
        let err_hop = rel_error(&setup_hi, &hop.object, &truth_raster);
        assert!(
            err_hop < 0.65 * err_single && err_hop < 0.40,
            "hop + wgcv must strictly beat the stalled single-frequency run: \
             hop {err_hop:.3} vs single {err_single:.3}"
        );
        let lam = hop
            .stages
            .iter()
            .flat_map(|s| s.lambdas.iter())
            .last()
            .copied()
            .expect("wgcv records a lambda per iteration");
        assert!(
            lam.is_finite() && lam >= 0.0,
            "chosen lambda must be a finite non-negative value, got {lam}"
        );
    }

    #[test]
    #[should_panic(expected = "low to high")]
    fn rejects_descending_frequencies() {
        let (setup_hi, g0_hi) = stage(1.0);
        let (setup_lo, g0_lo) = stage(2.0);
        let mea: Vec<Vec<C64>> = vec![vec![C64::ZERO; setup_hi.n_rx()]; setup_hi.n_tx()];
        let base = DbimConfig::default();
        let _ = multi_frequency_dbim(
            &[
                FrequencyHop {
                    setup: &setup_hi,
                    g0: &g0_hi,
                    measured: &mea,
                    iterations: 1,
                },
                FrequencyHop {
                    setup: &setup_lo,
                    g0: &g0_lo,
                    measured: &mea,
                    iterations: 1,
                },
            ],
            &base,
        );
    }

    /// Interrupt after the first hop, then resume from the checkpoint: the
    /// resumed run must land on the bit-identical object (the checkpoint
    /// stores the raw carry; the rescale path is shared).
    #[test]
    fn checkpoint_resume_is_bit_identical() {
        let (setup_hi, g0_hi) = stage(1.0);
        let (setup_lo, g0_lo) = stage(2.0);
        let (_truth, measured) =
            truth_and_measurements(&[(&setup_hi, &g0_hi), (&setup_lo, &g0_lo)], 0.1, 0.3);
        let (mea_hi, mea_lo) = (&measured[0], &measured[1]);
        let hops = || {
            [
                FrequencyHop {
                    setup: &setup_lo,
                    g0: &g0_lo,
                    measured: mea_lo,
                    iterations: 2,
                },
                FrequencyHop {
                    setup: &setup_hi,
                    g0: &g0_hi,
                    measured: mea_hi,
                    iterations: 2,
                },
            ]
        };
        let dir = std::env::temp_dir().join("ffw-multifreq-ckpt-test");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("hop.ckpt");
        std::fs::remove_file(&path).ok();
        let fingerprint = Fingerprint::new().u64(0xF0F0).finish();
        let cfg = MultiFreqConfig {
            base: DbimConfig {
                iterations: 0,
                ..Default::default()
            },
            checkpoint: Some(path.clone()),
            resume: true,
            fingerprint,
        };
        // uninterrupted reference
        let full = multi_frequency_dbim(&hops(), &cfg.base).expect("reference run");
        // run that stops after the first completed hop
        let h = hops();
        let stopped = {
            use std::sync::atomic::{AtomicUsize, Ordering};
            let calls = AtomicUsize::new(0);
            let stop = move || calls.fetch_add(1, Ordering::SeqCst) >= 1;
            multi_frequency_dbim_with(&h, &cfg, Some(&stop)).expect("interrupted run")
        };
        assert_eq!(stopped.interrupted, Some(1));
        assert_eq!(stopped.completed, 1);
        // resume picks up stage 1 from the checkpoint
        let resumed = multi_frequency_dbim_with(&hops(), &cfg, None).expect("resumed run");
        assert_eq!(resumed.resumed, 1);
        assert_eq!(resumed.completed, 2);
        assert_eq!(resumed.stages.len(), 1, "only the second stage reran");
        assert_eq!(
            resumed.object, full.object,
            "resume must be bit-identical to the uninterrupted run"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn checkpoint_rejects_wrong_fingerprint() {
        let (setup_hi, g0_hi) = stage(1.0);
        let (_truth, measured) = truth_and_measurements(&[(&setup_hi, &g0_hi)], 0.05, 0.3);
        let dir = std::env::temp_dir().join("ffw-multifreq-ckpt-fp-test");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("hop.ckpt");
        std::fs::remove_file(&path).ok();
        let hops = [FrequencyHop {
            setup: &setup_hi,
            g0: &g0_hi,
            measured: &measured[0],
            iterations: 1,
        }];
        let mk = |fingerprint| MultiFreqConfig {
            base: DbimConfig {
                iterations: 0,
                ..Default::default()
            },
            checkpoint: Some(path.clone()),
            resume: true,
            fingerprint,
        };
        multi_frequency_dbim_with(&hops, &mk(7), None).expect("first run");
        let err = multi_frequency_dbim_with(&hops, &mk(8), None).expect_err("must reject");
        assert!(
            matches!(
                err,
                MultiFreqError::Checkpoint(CheckpointError::FingerprintMismatch { .. })
            ),
            "{err:?}"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn schedule_parsing_rules() {
        let s = HopSchedule::parse("2.0,1.5,1.0").expect("valid");
        assert_eq!(s.factors(), &[2.0, 1.5, 1.0]);
        assert_eq!(s.to_string(), "2,1.5,1");
        assert_eq!("2,1.5,1".parse::<HopSchedule>().expect("roundtrip"), s);
        assert_eq!(HopSchedule::parse("1.0").expect("degenerate").len(), 1);
        for bad in [
            "",
            "1.0,2.0",           // ascending wavelength = descending frequency
            "2.0,2.0,1.0",       // not strictly descending
            "2.0,1.5",           // does not end at 1.0
            "0.5,1.0",           // factor below 1 (ascending anyway)
            "2.0,,1.0",          // empty entry
            "2.0,abc,1.0",       // not a number
            "nan,1.0",           // non-finite
            "64.0,1.0",          // beyond MAX_HOP_FACTOR
            "9,8,7,6,5,4,3,2,1", // too many stages
        ] {
            assert!(HopSchedule::parse(bad).is_err(), "'{bad}' must be rejected");
        }
    }

    #[test]
    fn iteration_split_favors_later_stages() {
        let s = HopSchedule::parse("3.0,2.0,1.0").expect("valid");
        assert_eq!(s.split_iterations(9), vec![3, 3, 3]);
        assert_eq!(s.split_iterations(10), vec![3, 3, 4]);
        assert_eq!(s.split_iterations(11), vec![3, 4, 4]);
        assert_eq!(s.split_iterations(2), vec![0, 1, 1]);
        let sum: usize = s.split_iterations(50).iter().sum();
        assert_eq!(sum, 50);
    }

    #[test]
    fn schedule_fingerprint_distinguishes_schedules() {
        let a = HopSchedule::parse("2.0,1.0").expect("a");
        let b = HopSchedule::parse("3.0,1.0").expect("b");
        let f = |s: &HopSchedule| s.fold_fingerprint(Fingerprint::new()).finish();
        assert_ne!(f(&a), f(&b));
        assert_eq!(f(&a), f(&a));
    }
}
