//! The regularization seam on the DBIM linear step.
//!
//! Plain DBIM regularizes only by early termination (paper Section V-B),
//! which stalls exactly where multiple scattering matters most: high
//! contrast and limited apertures. This module provides the selectable
//! [`Regularizer`] applied to each outer iteration's linearized update:
//!
//! * [`Regularizer::Tikhonov`] — the scalar `lambda ||O||^2` penalty folded
//!   into the nonlinear-CG gradient and step (the pre-existing behavior;
//!   `lambda = 0` is the paper's unregularized method);
//! * [`Regularizer::Smoothness`] — a spatial prior `lambda ||L O||^2` with
//!   `L` the 5-point grid Laplacian. The weight is *seeded from the data
//!   scale*: the effective absolute weight is `lambda * sum_t ||m_t||^2`,
//!   so one relative `lambda` transfers across scenes and noise levels;
//! * [`Regularizer::WgcvLsqr`] — hybrid-projection LSQR (Chung–Gazzola):
//!   `k` steps of Golub–Kahan bidiagonalization of the Fréchet operator
//!   project the linearized problem onto a small Krylov subspace, the
//!   projected Tikhonov parameter is chosen *automatically* by weighted
//!   GCV on the bidiagonal system, and the update is lifted back. The
//!   chosen lambda per outer iteration is reported in
//!   [`crate::DbimResult::lambdas`].
//!
//! Everything here is deterministic: the bidiagonalization is seeded by the
//! residual, the small SVD is a fixed-sweep one-sided Jacobi, and the wGCV
//! minimizer is a fixed logarithmic grid scan — no randomness, so the
//! thread-invariance and repeat-determinism suites hold bit-for-bit.

use ffw_geometry::QuadTree;
use ffw_numerics::C64;

/// Default Golub–Kahan steps for the hybrid projection.
pub const DEFAULT_WGCV_STEPS: usize = 4;
/// Default wGCV weight `omega` (< 1 regularizes slightly more than plain
/// GCV, the usual hybrid-projection recommendation).
pub const DEFAULT_WGCV_OMEGA: f64 = 0.8;
/// Default relative smoothness weight (scaled by the measured-data power).
pub const DEFAULT_SMOOTHNESS_LAMBDA: f64 = 0.02;

/// Regularization applied to the DBIM linearized step. See the module docs
/// for the three families; parse from CLI/serve strings with [`std::str::FromStr`]
/// (`"tikhonov[:LAMBDA]"`, `"smoothness[:LAMBDA]"`,
/// `"wgcv-lsqr[:STEPS[:OMEGA]]"`).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Regularizer {
    /// Scalar Tikhonov penalty `lambda ||O||^2` on the nonlinear-CG step
    /// (absolute weight; `0.0` = unregularized, the default).
    Tikhonov {
        /// Absolute penalty weight.
        lambda: f64,
    },
    /// Smoothness spatial prior `lambda ||L O||^2` (`L` = grid Laplacian);
    /// `lambda` is relative — the absolute weight is seeded from the data
    /// scale as `lambda * sum_t ||m_t||^2` each run.
    Smoothness {
        /// Relative penalty weight (seeded by the measured-data power).
        lambda: f64,
    },
    /// Hybrid-projection LSQR with automatic weighted-GCV lambda selection
    /// on the projected bidiagonal problem.
    WgcvLsqr {
        /// Golub–Kahan bidiagonalization steps (projection dimension).
        steps: usize,
        /// GCV weight `omega` (1.0 = standard GCV; < 1 regularizes more).
        omega: f64,
    },
}

impl Default for Regularizer {
    fn default() -> Self {
        Regularizer::Tikhonov { lambda: 0.0 }
    }
}

impl Regularizer {
    /// Stable family tag (used in fingerprints and spec round-trips).
    pub fn family(&self) -> &'static str {
        match self {
            Regularizer::Tikhonov { .. } => "tikhonov",
            Regularizer::Smoothness { .. } => "smoothness",
            Regularizer::WgcvLsqr { .. } => "wgcv-lsqr",
        }
    }

    /// Canonical spec string that [`std::str::FromStr`] parses back to `self`.
    pub fn to_spec_string(&self) -> String {
        match self {
            Regularizer::Tikhonov { lambda } => format!("tikhonov:{lambda}"),
            Regularizer::Smoothness { lambda } => format!("smoothness:{lambda}"),
            Regularizer::WgcvLsqr { steps, omega } => format!("wgcv-lsqr:{steps}:{omega}"),
        }
    }
}

impl std::fmt::Display for Regularizer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.to_spec_string())
    }
}

impl std::str::FromStr for Regularizer {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut parts = s.split(':');
        let family = parts.next().unwrap_or("");
        let p1 = parts.next();
        let p2 = parts.next();
        if parts.next().is_some() {
            return Err(format!("regularizer '{s}' has too many ':' parameters"));
        }
        let pos_f64 = |v: Option<&str>, what: &str, default: f64| -> Result<f64, String> {
            match v {
                None => Ok(default),
                Some(t) => match t.parse::<f64>() {
                    Ok(x) if x.is_finite() && x >= 0.0 => Ok(x),
                    _ => Err(format!("{what} '{t}' must be a finite non-negative number")),
                },
            }
        };
        match family {
            "tikhonov" => {
                if p2.is_some() {
                    return Err("tikhonov takes at most one parameter (lambda)".into());
                }
                Ok(Regularizer::Tikhonov {
                    lambda: pos_f64(p1, "tikhonov lambda", 0.0)?,
                })
            }
            "smoothness" => {
                if p2.is_some() {
                    return Err("smoothness takes at most one parameter (lambda)".into());
                }
                Ok(Regularizer::Smoothness {
                    lambda: pos_f64(p1, "smoothness lambda", DEFAULT_SMOOTHNESS_LAMBDA)?,
                })
            }
            "wgcv-lsqr" => {
                let steps = match p1 {
                    None => DEFAULT_WGCV_STEPS,
                    Some(t) => match t.parse::<usize>() {
                        Ok(k) if (1..=32).contains(&k) => k,
                        _ => {
                            return Err(format!(
                                "wgcv-lsqr steps '{t}' must be an integer in 1..=32"
                            ))
                        }
                    },
                };
                let omega = pos_f64(p2, "wgcv-lsqr omega", DEFAULT_WGCV_OMEGA)?;
                if !(0.0..=1.5).contains(&omega) || omega == 0.0 {
                    return Err(format!("wgcv-lsqr omega {omega} must be in (0, 1.5]"));
                }
                Ok(Regularizer::WgcvLsqr { steps, omega })
            }
            other => Err(format!(
                "unknown regularizer '{other}' (one of tikhonov[:LAMBDA], \
                 smoothness[:LAMBDA], wgcv-lsqr[:STEPS[:OMEGA]])"
            )),
        }
    }
}

/// Applies the 5-point grid Laplacian `L` to a *tree-order* vector:
/// `(Lx)_{ij} = 4 x_{ij} - x_{i±1,j} - x_{i,j±1}` with zero-Dirichlet
/// boundary (missing neighbors contribute 0). `L` is symmetric, so it is
/// its own transpose and `L^T L x = L(Lx)`.
pub fn laplacian_tree(tree: &QuadTree, x: &[C64]) -> Vec<C64> {
    let n = x.len();
    let n_side = (n as f64).sqrt().round() as usize;
    assert_eq!(n_side * n_side, n, "laplacian needs a square grid");
    let grid = tree.to_grid_order(x);
    let mut out = vec![C64::ZERO; n];
    for iy in 0..n_side {
        for ix in 0..n_side {
            let i = iy * n_side + ix;
            let mut v = grid[i] * 4.0;
            if ix > 0 {
                v -= grid[i - 1];
            }
            if ix + 1 < n_side {
                v -= grid[i + 1];
            }
            if iy > 0 {
                v -= grid[i - n_side];
            }
            if iy + 1 < n_side {
                v -= grid[i + n_side];
            }
            out[i] = v;
        }
    }
    tree.to_tree_order(&out)
}

/// The lower-bidiagonal matrix `B_k` ((k+1) x k) produced by Golub–Kahan
/// bidiagonalization: `alphas[i]` on the diagonal, `betas[i]` on the
/// subdiagonal (`betas[i]` couples row `i+1` to column `i`).
#[derive(Clone, Debug)]
pub struct Bidiag {
    /// Diagonal entries `alpha_1..alpha_k` (all > 0 by construction).
    pub alphas: Vec<f64>,
    /// Subdiagonal entries `beta_2..beta_{k+1}`.
    pub betas: Vec<f64>,
}

impl Bidiag {
    /// Effective projection dimension `k`.
    pub fn k(&self) -> usize {
        self.alphas.len()
    }
}

/// The projected least-squares problem `min ||B_k y - beta_1 e_1||^2 +
/// lambda^2 ||y||^2` in its SVD coordinates — the small dense object the
/// wGCV parameter search and the regularized solve both run on.
pub struct ProjectedProblem {
    /// Singular values of `B_k`, descending.
    sigma: Vec<f64>,
    /// `c_i = beta_1 * (P^T e_1)_i` — data coefficients along the left
    /// singular vectors.
    c: Vec<f64>,
    /// `||beta_1 e_1||^2 - sum c_i^2`: the residual component outside the
    /// range of `B_k` (irreducible at any lambda).
    c_perp_sqr: f64,
    /// Right singular vectors, `v[i]` the i-th column (length k).
    v: Vec<Vec<f64>>,
}

/// Applies the Jacobi rotation `(cs, sn)` to column pair `i < j` of a
/// column-major matrix.
fn rotate_columns(mat: &mut [Vec<f64>], i: usize, j: usize, cs: f64, sn: f64) {
    let (head, tail) = mat.split_at_mut(j);
    for (x, y) in head[i].iter_mut().zip(tail[0].iter_mut()) {
        let (a, b) = (*x, *y);
        *x = cs * a - sn * b;
        *y = sn * a + cs * b;
    }
}

impl ProjectedProblem {
    /// Builds the SVD form of the projected problem via one-sided Jacobi on
    /// the dense `(k+1) x k` bidiagonal matrix — `k` is a handful, so the
    /// cost is negligible and the fixed sweep count keeps it deterministic.
    pub fn new(b: &Bidiag, beta1: f64) -> ProjectedProblem {
        let k = b.k();
        let m = k + 1;
        // columns[j][row]
        let mut cols: Vec<Vec<f64>> = vec![vec![0.0; m]; k];
        for j in 0..k {
            cols[j][j] = b.alphas[j];
            cols[j][j + 1] = b.betas[j];
        }
        let mut v: Vec<Vec<f64>> = (0..k)
            .map(|i| {
                let mut e = vec![0.0; k];
                e[i] = 1.0;
                e
            })
            .collect();
        // One-sided Jacobi: orthogonalize column pairs until off-diagonal
        // correlation is negligible (30 sweeps is far beyond convergence for
        // k <= 32; typically 3-4 sweeps suffice).
        for _sweep in 0..30 {
            let mut off = 0.0f64;
            for i in 0..k {
                for j in (i + 1)..k {
                    let (mut aa, mut bb, mut cc) = (0.0f64, 0.0f64, 0.0f64);
                    for (&x, &y) in cols[i].iter().zip(&cols[j]).take(m) {
                        aa += x * x;
                        bb += y * y;
                        cc += x * y;
                    }
                    if cc.abs() <= 1e-15 * (aa * bb).sqrt().max(1e-300) {
                        continue;
                    }
                    off = off.max(cc.abs() / (aa * bb).sqrt().max(1e-300));
                    let zeta = (bb - aa) / (2.0 * cc);
                    let t = zeta.signum() / (zeta.abs() + (1.0 + zeta * zeta).sqrt());
                    let cs = 1.0 / (1.0 + t * t).sqrt();
                    let sn = cs * t;
                    rotate_columns(&mut cols, i, j, cs, sn);
                    rotate_columns(&mut v, i, j, cs, sn);
                }
            }
            if off < 1e-14 {
                break;
            }
        }
        // Singular values = column norms; left vectors = normalized columns.
        let mut order: Vec<usize> = (0..k).collect();
        let norms: Vec<f64> = cols
            .iter()
            .map(|c| c.iter().map(|x| x * x).sum::<f64>().sqrt())
            .collect();
        order.sort_by(|&a, &b| norms[b].partial_cmp(&norms[a]).expect("finite norms"));
        let mut sigma = Vec::with_capacity(k);
        let mut c = Vec::with_capacity(k);
        let mut vs = Vec::with_capacity(k);
        for &j in &order {
            sigma.push(norms[j]);
            // c_i = beta1 * w_i[0] where w_i = col_j / ||col_j||
            let w0 = if norms[j] > 0.0 {
                cols[j][0] / norms[j]
            } else {
                0.0
            };
            c.push(beta1 * w0);
            vs.push(v[j].clone());
        }
        let c_perp_sqr = (beta1 * beta1 - c.iter().map(|x| x * x).sum::<f64>()).max(0.0);
        ProjectedProblem {
            sigma,
            c,
            c_perp_sqr,
            v: vs,
        }
    }

    /// Weighted-GCV function at `lambda` (up to a constant factor):
    /// `G(l) = num / den`, `num = sum (l^2 c_i / (s_i^2+l^2))^2 + c_perp^2`,
    /// `den = (m - w * sum s_i^2/(s_i^2+l^2))^2` with `m = k+1` rows.
    pub fn wgcv(&self, lambda: f64, omega: f64) -> f64 {
        let l2 = lambda * lambda;
        let mut num = self.c_perp_sqr;
        let mut filt = 0.0f64;
        for (s, c) in self.sigma.iter().zip(&self.c) {
            let s2 = s * s;
            let d = s2 + l2;
            if d > 0.0 {
                num += (l2 * c / d) * (l2 * c / d);
                filt += s2 / d;
            }
        }
        let den = (self.sigma.len() as f64 + 1.0) - omega * filt;
        num / (den * den).max(1e-300)
    }

    /// Minimizes the wGCV function over a fixed logarithmic lambda grid
    /// spanning the singular spectrum (deterministic; 300 samples resolve
    /// the shallow GCV valley far below the reconstruction's sensitivity).
    pub fn wgcv_lambda(&self, omega: f64) -> f64 {
        let s_max = self.sigma.first().copied().unwrap_or(1.0).max(1e-300);
        let s_min = self
            .sigma
            .iter()
            .rev()
            .find(|s| **s > 0.0)
            .copied()
            .unwrap_or(s_max);
        let lo = (s_min * 1e-6).max(s_max * 1e-12);
        let hi = s_max * 10.0;
        let n = 300usize;
        let mut best = (self.wgcv(0.0, omega), 0.0f64);
        let ratio = (hi / lo).ln();
        for i in 0..=n {
            let l = lo * (ratio * i as f64 / n as f64).exp();
            let g = self.wgcv(l, omega);
            if g < best.0 {
                best = (g, l);
            }
        }
        best.1
    }

    /// Solves the projected Tikhonov problem at `lambda`, returning the
    /// coefficient vector `y` (length k) in the original Krylov basis.
    pub fn solve(&self, lambda: f64) -> Vec<f64> {
        let k = self.sigma.len();
        let l2 = lambda * lambda;
        let mut y = vec![0.0; k];
        for i in 0..k {
            let s = self.sigma[i];
            let d = s * s + l2;
            if d <= 0.0 {
                continue;
            }
            let w = s * self.c[i] / d;
            for (yj, vj) in y.iter_mut().zip(&self.v[i]) {
                *yj += w * vj;
            }
        }
        y
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ffw_geometry::Domain;
    use ffw_numerics::c64;

    #[test]
    fn parse_roundtrip_and_defaults() {
        for s in [
            "tikhonov",
            "tikhonov:0.5",
            "smoothness",
            "smoothness:0.1",
            "wgcv-lsqr",
            "wgcv-lsqr:6",
            "wgcv-lsqr:6:1.0",
        ] {
            let r: Regularizer = s.parse().expect(s);
            let back: Regularizer = r.to_spec_string().parse().expect("canonical");
            assert_eq!(r, back, "{s}");
        }
        assert_eq!(
            "tikhonov".parse::<Regularizer>().expect("default"),
            Regularizer::default()
        );
        assert_eq!(
            "wgcv-lsqr".parse::<Regularizer>().expect("default"),
            Regularizer::WgcvLsqr {
                steps: DEFAULT_WGCV_STEPS,
                omega: DEFAULT_WGCV_OMEGA
            }
        );
    }

    #[test]
    fn parse_rejects_garbage() {
        for bad in [
            "banana",
            "tikhonov:-1",
            "tikhonov:x",
            "tikhonov:1:2",
            "wgcv-lsqr:0",
            "wgcv-lsqr:33",
            "wgcv-lsqr:4:0",
            "wgcv-lsqr:4:2.0",
            "wgcv-lsqr:4:1:9",
            "smoothness:nan",
        ] {
            assert!(bad.parse::<Regularizer>().is_err(), "{bad} should fail");
        }
    }

    #[test]
    fn laplacian_of_constant_interior_is_zero() {
        let domain = Domain::new(32, 1.0);
        let tree = QuadTree::new(&domain);
        let x = vec![c64(1.0, 0.0); 1024];
        let lx = laplacian_tree(&tree, &x);
        let grid = tree.to_grid_order(&lx);
        // interior rows: 4 - 4 neighbors = 0; boundary sees the Dirichlet 0
        assert!(grid[17 * 32 + 17].abs() < 1e-14);
        assert!((grid[0].re - 2.0).abs() < 1e-14, "corner keeps 4-2");
    }

    #[test]
    fn laplacian_is_symmetric() {
        let domain = Domain::new(32, 1.0);
        let tree = QuadTree::new(&domain);
        let x: Vec<C64> = (0..1024).map(|i| C64::cis(0.37 * i as f64)).collect();
        let y: Vec<C64> = (0..1024).map(|i| C64::cis(1.1 * i as f64 + 0.4)).collect();
        let lx = laplacian_tree(&tree, &x);
        let ly = laplacian_tree(&tree, &y);
        let lhs = ffw_numerics::vecops::zdotc(&lx, &y);
        let rhs = ffw_numerics::vecops::zdotc(&x, &ly);
        assert!((lhs - rhs).abs() < 1e-10 * lhs.abs().max(1.0));
    }

    /// SVD sanity on a known bidiagonal: the identity-like system where
    /// alphas = 1, betas = 0 has all singular values 1 and reproduces the
    /// unregularized solution at lambda = 0.
    #[test]
    fn projected_problem_identity() {
        let b = Bidiag {
            alphas: vec![1.0, 1.0, 1.0],
            betas: vec![0.0, 0.0, 0.0],
        };
        let p = ProjectedProblem::new(&b, 2.0);
        for s in &p.sigma {
            assert!((s - 1.0).abs() < 1e-12);
        }
        let y = p.solve(0.0);
        // B y = 2 e1  ->  y = (2, 0, 0)
        assert!((y[0] - 2.0).abs() < 1e-12, "{y:?}");
        assert!(y[1].abs() < 1e-12 && y[2].abs() < 1e-12);
    }

    /// wGCV picks a large lambda when the data is pure noise outside the
    /// range (c_i ~ 0) and a small one when the data is consistent.
    #[test]
    fn wgcv_lambda_tracks_consistency() {
        // Ill-conditioned spectrum with data concentrated on the dominant
        // direction: the consistent problem wants little regularization.
        let b = Bidiag {
            alphas: vec![1.0, 1e-3],
            betas: vec![0.0, 0.0],
        };
        let p = ProjectedProblem::new(&b, 1.0);
        let l_consistent = p.wgcv_lambda(1.0);
        assert!(l_consistent < 0.1, "consistent data: {l_consistent}");
        // Same spectrum but the data lives in the irreducible complement
        // (simulated by shifting weight to c_perp): lambda must grow.
        let p_noisy = ProjectedProblem {
            sigma: vec![1.0, 1e-3],
            c: vec![1e-6, 1e-3],
            c_perp_sqr: 1.0,
            v: vec![vec![1.0, 0.0], vec![0.0, 1.0]],
        };
        let l_noisy = p_noisy.wgcv_lambda(1.0);
        assert!(
            l_noisy > l_consistent,
            "noisy {l_noisy} vs consistent {l_consistent}"
        );
    }

    /// The regularized projected solution shrinks monotonically with lambda.
    #[test]
    fn solve_shrinks_with_lambda() {
        let b = Bidiag {
            alphas: vec![0.9, 0.4, 0.1],
            betas: vec![0.3, 0.2, 0.05],
        };
        let p = ProjectedProblem::new(&b, 1.5);
        let norm = |y: &[f64]| y.iter().map(|v| v * v).sum::<f64>().sqrt();
        let mut prev = f64::INFINITY;
        for l in [0.0, 0.01, 0.1, 1.0, 10.0] {
            let n = norm(&p.solve(l));
            assert!(n <= prev + 1e-12, "lambda {l}: {n} > {prev}");
            prev = n;
        }
    }
}
