//! Property test calibrating the ABFT checksum tolerance
//! ([`Accuracy::checksum_rel_tol`]) against the real MLFMA operator.
//!
//! The tolerance must thread a needle: wide enough that the legitimate
//! floating-point reassociation between `G0(sum x)` and `sum(G0 x)` never
//! trips it (a false positive would recompute — or escalate — a healthy
//! panel), and tight enough that a single flipped exponent bit in one
//! output lane always trips it. Both sides are checked over both shipped
//! accuracy settings and panel widths B in {1, 4, 8}, on phantom-derived
//! inputs whose zero background exercises the near-zero lanes where a
//! miscalibrated scale would be most fragile.

use ffw_fault::ComputeFault;
use ffw_geometry::{pt, Domain, QuadTree};
use ffw_inverse::MlfmaG0;
use ffw_mlfma::{Accuracy, MlfmaEngine, MlfmaPlan};
use ffw_numerics::{c64, C64};
use ffw_par::Pool;
use ffw_phantom::{object_from_contrast, Cylinder, Phantom};
use ffw_solver::{BlockLinOp, VerifiedBlockOp, VerifyConfig};
use std::sync::Arc;

const WIDTHS: [usize; 3] = [1, 4, 8];
/// Seeded phantom inputs per accuracy setting for the false-positive sweep.
const PHANTOMS: usize = 200;

fn splitmix64(state: u64) -> u64 {
    let mut z = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Unit-interval f64 from a hash (53 mantissa bits).
fn unit(h: u64) -> f64 {
    (h >> 11) as f64 / (1u64 << 53) as f64
}

/// A seeded cylinder phantom rasterized onto the domain: seeded center,
/// radius and contrast, so 200 seeds cover 200 distinct scenes.
fn phantom_object(domain: &Domain, tree: &QuadTree, seed: u64) -> Vec<C64> {
    let h0 = splitmix64(seed);
    let h1 = splitmix64(h0);
    let h2 = splitmix64(h1);
    let h3 = splitmix64(h2);
    let half = 0.35 * domain.side();
    let truth = Cylinder {
        center: pt(half * (unit(h0) - 0.5), half * (unit(h1) - 0.5)),
        radius: (0.05 + 0.3 * unit(h2)) * domain.side(),
        contrast: 0.01 + 0.2 * unit(h3),
    };
    object_from_contrast(domain, tree, &truth.rasterize(domain))
}

/// A width-B panel of field-like columns: the phantom object modulated by
/// seeded complex phases per column, as DBIM forward solves would produce.
fn panel(object: &[C64], width: usize, seed: u64) -> Vec<Vec<C64>> {
    (0..width)
        .map(|b| {
            let mut s = splitmix64(seed ^ (b as u64).wrapping_mul(0x9E37_79B9));
            object
                .iter()
                .map(|o| {
                    s = splitmix64(s);
                    let re = unit(s) - 0.5;
                    s = splitmix64(s);
                    let im = unit(s) - 0.5;
                    *o * c64(1.0 + re, im)
                })
                .collect()
        })
        .collect()
}

struct Fixture {
    g0: MlfmaG0,
    tol: f64,
    object: Vec<C64>,
    n: usize,
}

fn fixture(accuracy: Accuracy) -> Fixture {
    let domain = Domain::new(32, 1.0);
    let plan = Arc::new(MlfmaPlan::new(&domain, accuracy));
    let n = plan.n_pixels();
    let tree = QuadTree::new(&domain);
    let object = phantom_object(&domain, &tree, 0xFEED);
    let g0 = MlfmaG0(Arc::new(MlfmaEngine::new(plan, Arc::new(Pool::new(1)))));
    Fixture {
        g0,
        tol: accuracy.checksum_rel_tol(),
        object,
        n,
    }
}

/// No false positives: 200 seeded phantoms per accuracy setting, widths
/// cycling through {1, 4, 8}, every panel verified immediately — the
/// detector must stay silent on every one of them.
#[test]
fn calibrated_tolerance_never_false_positives_on_clean_panels() {
    let domain = Domain::new(32, 1.0);
    let tree = QuadTree::new(&domain);
    for accuracy in [Accuracy::low(), Accuracy::high()] {
        let fx = fixture(accuracy);
        let v = VerifiedBlockOp::new(&fx.g0, VerifyConfig::with_rel_tol(fx.tol).immediate());
        for seed in 0..PHANTOMS as u64 {
            let width = WIDTHS[seed as usize % WIDTHS.len()];
            let object = phantom_object(&domain, &tree, seed);
            let xs = panel(&object, width, seed);
            let x_refs: Vec<&[C64]> = xs.iter().map(|x| x.as_slice()).collect();
            let mut ys = vec![vec![C64::ZERO; fx.n]; width];
            v.apply_block(&x_refs, &mut ys);
        }
        v.flush().expect("clean panels must verify");
        assert_eq!(
            v.detected(),
            0,
            "interp_order {}: false positive on a clean panel",
            accuracy.interp_order
        );
    }
}

/// Every single exponent-bit flip is detected: for both accuracy settings,
/// every width in {1, 4, 8} and every exponent bit 52..=62, a one-shot
/// injected flip must be caught by the immediate per-panel check and
/// repaired by one recompute — never silently absorbed, never escalated.
#[test]
fn single_exponent_bit_flips_are_always_detected_and_recovered() {
    for accuracy in [Accuracy::low(), Accuracy::high()] {
        let fx = fixture(accuracy);
        let mut expected = 0u64;
        for &width in &WIDTHS {
            for bit in 52..=62u32 {
                let slot = splitmix64(u64::from(bit) * 31 + width as u64);
                let mut cfg = VerifyConfig::with_rel_tol(fx.tol).immediate();
                // Fire on the wrapper's first panel; `times: 1` corrupts the
                // initial compute only, so one recompute runs clean.
                cfg.injector = Some(Arc::new(move |panel| {
                    (panel == 1).then_some(ComputeFault {
                        slot,
                        bit,
                        times: 1,
                    })
                }));
                let v = VerifiedBlockOp::new(&fx.g0, cfg);
                let xs = panel(&fx.object, width, u64::from(bit));
                let x_refs: Vec<&[C64]> = xs.iter().map(|x| x.as_slice()).collect();
                let mut ys = vec![vec![C64::ZERO; fx.n]; width];
                v.apply_block(&x_refs, &mut ys);
                v.flush().unwrap_or_else(|e| {
                    panic!(
                        "interp_order {} width {width} bit {bit}: \
                         recoverable flip escalated: {e}",
                        accuracy.interp_order
                    )
                });
                assert!(
                    v.detected() >= 1,
                    "interp_order {} width {width} bit {bit}: flip not detected",
                    accuracy.interp_order
                );
                assert_eq!(
                    v.recomputed(),
                    1,
                    "interp_order {} width {width} bit {bit}: not repaired in one recompute",
                    accuracy.interp_order
                );
                assert_eq!(v.escalated(), 0);
                expected += 1;
            }
        }
        assert_eq!(expected, WIDTHS.len() as u64 * 11);
    }
}
