//! Thread-count invariance of the MLFMA-backed reconstruction.
//!
//! The fused multi-RHS traversal dispenses (cluster × rhs) work items to the
//! pool, and each slot writes a disjoint panel region with per-slot op order
//! fixed by the plan — so changing the worker count must not change a single
//! bit of any column, and the whole DBIM reconstruction built on top of it
//! must be bit-identical at every pool size. A reduction-order bug in the
//! new block axis (e.g. accumulating across rhs slots in arrival order)
//! would show up here as a drifting object vector.

use ffw_geometry::{Domain, Point2, TransducerArray};
use ffw_inverse::{dbim, synthesize_measurements, DbimConfig, ImagingSetup, MlfmaG0};
use ffw_mlfma::{Accuracy, MlfmaEngine, MlfmaPlan};
use ffw_par::Pool;
use ffw_phantom::{object_from_contrast, Cylinder, Phantom};
use std::sync::Arc;

/// Runs the pinned 32×32 workload with an engine on `threads` workers and
/// returns the full-precision reconstruction.
fn reconstruct(threads: usize, batch: Option<usize>) -> ffw_inverse::DbimResult {
    let domain = Domain::new(32, 1.0);
    let ring = 2.0 * domain.side();
    let setup = ImagingSetup::new(
        domain.clone(),
        TransducerArray::ring(4, ring),
        TransducerArray::ring(8, ring),
    );
    let plan = Arc::new(MlfmaPlan::new(&domain, Accuracy::default()));
    let g0 = MlfmaG0(Arc::new(MlfmaEngine::new(
        plan,
        Arc::new(Pool::new(threads)),
    )));
    let truth = Cylinder {
        center: Point2::ZERO,
        radius: 0.25 * domain.side(),
        contrast: 0.05,
    };
    let raster = truth.rasterize(&domain);
    let object = object_from_contrast(&domain, &setup.tree, &raster);
    let measured = synthesize_measurements(&setup, &g0, &object, Default::default());
    let cfg = DbimConfig {
        iterations: 2,
        batch,
        ..Default::default()
    };
    dbim(&setup, &g0, &measured, &cfg).expect("dbim")
}

#[test]
fn reconstruction_is_bit_identical_across_thread_counts() {
    let base = reconstruct(1, None);
    for threads in [2usize, 4] {
        let other = reconstruct(threads, None);
        assert_eq!(
            other.object, base.object,
            "{threads}-thread reconstruction drifted from 1-thread"
        );
        assert_eq!(
            other.final_residual.to_bits(),
            base.final_residual.to_bits()
        );
        assert_eq!(other.forward_solves, base.forward_solves);
        assert_eq!(other.g0_applies, base.g0_applies);
    }
}

#[test]
fn batched_reconstruction_is_bit_identical_across_thread_counts() {
    // batch 3 does not divide the transmitter count or any chunk size in
    // the dispenser, so panel tails and odd (cluster × rhs) splits are hit
    let base = reconstruct(1, Some(3));
    let other = reconstruct(4, Some(3));
    assert_eq!(other.object, base.object, "batched 4-thread drifted");
    assert_eq!(
        other.final_residual.to_bits(),
        base.final_residual.to_bits()
    );
}
