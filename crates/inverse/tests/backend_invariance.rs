//! Backend-parameterized DBIM invariance harness.
//!
//! Every property here is generated twice by `backend_suite!` — once per
//! forward engine — so the Krylov and Born-series backends are held to the
//! *same* metamorphic and determinism contracts, not just the ones they
//! were developed against:
//!
//! * thread-count bit-identity (1 vs 4 workers), scalar and batched — the
//!   fixed-point Richardson panels dispense (cluster × rhs) work exactly
//!   like the Krylov panels, so worker count must not change a single bit;
//! * the residual history never rises above its starting point and ends
//!   well below it (the DBIM metamorphic invariant);
//! * warm-starting each transmitter's solve from its previous field never
//!   costs iterations over a cold start;
//! * determinism: two identical runs are bit-identical end to end.
//!
//! Contrast is pinned at 0.03 (`kappa ≈ 0.24` at this geometry), far inside
//! the Born-series admission bound even for overshooting mid-run iterates.

use ffw_geometry::{Domain, Point2, TransducerArray};
use ffw_inverse::{
    dbim, synthesize_measurements, BackendChoice, DbimConfig, DbimResult, ImagingSetup, MlfmaG0,
    Regularizer,
};
use ffw_mlfma::{Accuracy, MlfmaEngine, MlfmaPlan};
use ffw_par::Pool;
use ffw_phantom::{object_from_contrast, Cylinder, Phantom};
use std::sync::Arc;

/// Runs the pinned 32×32 workload on `threads` workers under `backend`.
fn reconstruct(
    backend: BackendChoice,
    threads: usize,
    cfg_edit: &dyn Fn(&mut DbimConfig),
) -> DbimResult {
    let domain = Domain::new(32, 1.0);
    let ring = 2.0 * domain.side();
    let setup = ImagingSetup::new(
        domain.clone(),
        TransducerArray::ring(4, ring),
        TransducerArray::ring(8, ring),
    );
    let plan = Arc::new(MlfmaPlan::new(&domain, Accuracy::default()));
    let g0 = MlfmaG0(Arc::new(MlfmaEngine::new(
        plan,
        Arc::new(Pool::new(threads)),
    )));
    let truth = Cylinder {
        center: Point2::ZERO,
        radius: 0.25 * domain.side(),
        contrast: 0.03,
    };
    let raster = truth.rasterize(&domain);
    let object = object_from_contrast(&domain, &setup.tree, &raster);
    let measured = synthesize_measurements(&setup, &g0, &object, Default::default());
    let mut cfg = DbimConfig {
        iterations: 3,
        backend,
        ..Default::default()
    };
    cfg_edit(&mut cfg);
    dbim(&setup, &g0, &measured, &cfg).expect("dbim")
}

fn assert_bit_identical(a: &DbimResult, b: &DbimResult, what: &str) {
    assert_eq!(a.object, b.object, "{what}: object drifted");
    assert_eq!(
        a.final_residual.to_bits(),
        b.final_residual.to_bits(),
        "{what}: residual drifted"
    );
    assert_eq!(a.forward_solves, b.forward_solves, "{what}: solve count");
    assert_eq!(a.g0_applies, b.g0_applies, "{what}: matvec count");
    assert_eq!(a.lambdas.len(), b.lambdas.len(), "{what}: lambda trace len");
    for (la, lb) in a.lambdas.iter().zip(&b.lambdas) {
        assert_eq!(la.to_bits(), lb.to_bits(), "{what}: chosen lambda drifted");
    }
    for (ha, hb) in a.history.iter().zip(&b.history) {
        assert_eq!(ha.solver_iters, hb.solver_iters, "{what}: iter trace");
        assert_eq!(
            ha.rel_residual.to_bits(),
            hb.rel_residual.to_bits(),
            "{what}: residual trace"
        );
    }
}

macro_rules! backend_suite {
    ($name:ident, $choice:expr) => {
        mod $name {
            use super::*;

            #[test]
            fn reconstruction_is_bit_identical_across_thread_counts() {
                let base = reconstruct($choice, 1, &|_| {});
                let other = reconstruct($choice, 4, &|_| {});
                assert_bit_identical(&other, &base, "1 vs 4 threads");
            }

            #[test]
            fn batched_reconstruction_is_bit_identical_across_thread_counts() {
                // batch 3 does not divide the transmitter count, so panel
                // tails and odd (cluster × rhs) splits are exercised.
                let base = reconstruct($choice, 1, &|c| c.batch = Some(3));
                let other = reconstruct($choice, 4, &|c| c.batch = Some(3));
                assert_bit_identical(&other, &base, "batched 1 vs 4 threads");
            }

            #[test]
            fn repeated_runs_are_bit_identical() {
                let a = reconstruct($choice, 2, &|_| {});
                let b = reconstruct($choice, 2, &|_| {});
                assert_bit_identical(&a, &b, "repeat run");
            }

            #[test]
            fn residual_history_never_rises_and_ends_low() {
                let r = reconstruct($choice, 2, &|c| c.iterations = 5);
                let first = r.history.first().expect("history").rel_residual;
                assert!(
                    r.final_residual < 0.3 * first,
                    "{first} -> {}",
                    r.final_residual
                );
                for h in &r.history {
                    assert!(h.rel_residual <= first * 1.0001);
                }
            }

            #[test]
            fn warm_start_never_costs_iterations() {
                let warm = reconstruct($choice, 2, &|c| c.iterations = 4);
                let cold = reconstruct($choice, 2, &|c| {
                    c.iterations = 4;
                    c.warm_start = false;
                });
                let wi: usize = warm.history.iter().map(|h| h.solver_iters).sum();
                let ci: usize = cold.history.iter().map(|h| h.solver_iters).sum();
                assert!(wi <= ci, "warm {wi} vs cold {ci}");
            }
        }
    };
}

backend_suite!(bicgstab, BackendChoice::Bicgstab);
backend_suite!(born_series, BackendChoice::BornSeries);

/// The same determinism contracts, parameterized over the regularizer seam:
/// the hybrid-projection wGCV-LSQR linear step and the seeded-smoothness
/// spatial prior must be exactly as thread-invariant, repeatable, and
/// warm-start-friendly as the plain Tikhonov path, under both backends.
macro_rules! regularizer_suite {
    ($name:ident, $choice:expr, $reg:expr) => {
        mod $name {
            use super::*;

            fn with_reg(threads: usize, cfg_edit: &dyn Fn(&mut DbimConfig)) -> DbimResult {
                reconstruct($choice, threads, &|c| {
                    c.regularizer = $reg;
                    cfg_edit(c);
                })
            }

            #[test]
            fn reconstruction_is_bit_identical_across_thread_counts() {
                let base = with_reg(1, &|_| {});
                let other = with_reg(4, &|_| {});
                assert_bit_identical(&other, &base, "regularized 1 vs 4 threads");
            }

            #[test]
            fn repeated_runs_are_bit_identical() {
                let a = with_reg(2, &|_| {});
                let b = with_reg(2, &|_| {});
                assert_bit_identical(&a, &b, "regularized repeat run");
            }

            #[test]
            fn warm_start_never_costs_iterations() {
                let warm = with_reg(2, &|c| c.iterations = 4);
                let cold = with_reg(2, &|c| {
                    c.iterations = 4;
                    c.warm_start = false;
                });
                let wi: usize = warm.history.iter().map(|h| h.solver_iters).sum();
                let ci: usize = cold.history.iter().map(|h| h.solver_iters).sum();
                assert!(wi <= ci, "warm {wi} vs cold {ci}");
            }

            #[test]
            fn residual_still_decreases() {
                let r = with_reg(2, &|_| {});
                let first = r.history.first().expect("history").rel_residual;
                assert!(
                    r.final_residual < first,
                    "regularized run must still make progress: {first} -> {}",
                    r.final_residual
                );
            }
        }
    };
}

regularizer_suite!(
    bicgstab_wgcv_lsqr,
    BackendChoice::Bicgstab,
    Regularizer::WgcvLsqr {
        steps: 4,
        omega: 0.8
    }
);
regularizer_suite!(
    bicgstab_smoothness,
    BackendChoice::Bicgstab,
    Regularizer::Smoothness { lambda: 1e-3 }
);
regularizer_suite!(
    born_series_wgcv_lsqr,
    BackendChoice::BornSeries,
    Regularizer::WgcvLsqr {
        steps: 4,
        omega: 0.8
    }
);
regularizer_suite!(
    born_series_smoothness,
    BackendChoice::BornSeries,
    Regularizer::Smoothness { lambda: 1e-3 }
);

/// wGCV must actually record one chosen lambda per outer iteration, and the
/// non-adaptive paths must record none.
#[test]
fn lambda_trace_shape_matches_regularizer() {
    let wgcv = reconstruct(BackendChoice::Bicgstab, 2, &|c| {
        c.regularizer = Regularizer::WgcvLsqr {
            steps: 4,
            omega: 0.8,
        }
    });
    assert_eq!(wgcv.lambdas.len(), wgcv.history.len());
    assert!(wgcv.lambdas.iter().all(|l| l.is_finite() && *l >= 0.0));
    let tik = reconstruct(BackendChoice::Bicgstab, 2, &|_| {});
    assert!(tik.lambdas.is_empty());
}

/// The two backends must agree on *what* they computed even where they are
/// free to differ on *how*: same solve count, same residual endpoint to the
/// accuracy of the shared forward tolerance.
#[test]
fn backends_share_the_solve_accounting() {
    let k = reconstruct(BackendChoice::Bicgstab, 2, &|_| {});
    let b = reconstruct(BackendChoice::BornSeries, 2, &|_| {});
    assert_eq!(k.forward_solves, b.forward_solves);
    let gap = (k.final_residual - b.final_residual).abs() / k.final_residual.max(1e-300);
    assert!(gap < 1e-2, "residual endpoints diverged: {gap:.3e}");
}
