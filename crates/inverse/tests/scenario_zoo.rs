//! The regularizer × scenario quality matrix, as an executable test suite.
//!
//! Every cell runs the full frequency-hopping DBIM pipeline (2.0 → 1.0
//! wavelength schedule, 4 + 4 iterations) on one scenario-zoo entry under
//! one regularizer, and pins the achieved relative image error. The table
//! in EXPERIMENTS.md is generated from exactly this code — run with
//! `cargo test -p ffw-inverse --test scenario_zoo -- --nocapture` to see
//! the measured matrix.
//!
//! Structural claims the matrix enforces (not just absolute pins):
//! * on the limited-aperture contrast-0.25 scenario the wGCV-LSQR hybrid
//!   step strictly beats the unregularized hop;
//! * regularization never catastrophically hurts on the easy scenarios;
//! * the lossy-media scenario reconstructs both the real part and a
//!   positively-correlated absorption map (`real_object = false`).

use ffw_geometry::{Domain, Point2, QuadTree};
use ffw_greens::{assemble_g0, tree_positions, Kernel};
use ffw_inverse::multifreq::{multi_frequency_dbim, FrequencyHop};
use ffw_inverse::{synthesize_measurements, DbimConfig, ImagingSetup, Regularizer};
use ffw_numerics::linalg::Matrix;
use ffw_numerics::C64;
use ffw_phantom::scenario::splitmix64;
use ffw_phantom::{
    contrast_from_object, image_rel_error, lossy_object_from_contrast, object_from_contrast,
    scenario_zoo, Cylinder, Phantom, Scenario,
};

const N_TX: usize = 8;
const N_RX: usize = 16;

struct Stage {
    setup: ImagingSetup,
    g0: Matrix,
}

fn stage(scenario: &Scenario, wavelength: f64) -> Stage {
    let domain = Domain::with_pixel_size(32, wavelength, 0.1);
    let ring = 2.0 * domain.side();
    let (tx, rx) = scenario.aperture.build(N_TX, N_RX, ring);
    let setup = ImagingSetup::new(domain.clone(), tx, rx);
    let tree = QuadTree::new(&domain);
    let kernel = Kernel::new(domain.k0(), domain.equivalent_radius());
    let g0 = assemble_g0(&kernel, &tree_positions(&domain, &tree));
    Stage { setup, g0 }
}

/// Synthesizes the (possibly lossy, possibly noisy) measurements for one
/// stage of the hop schedule. Noise streams are derived per stage so the
/// two frequency datasets carry independent realizations.
fn measure(scenario: &Scenario, st: &Stage, stage_idx: u64, truth_raster: &[f64]) -> Vec<Vec<C64>> {
    let tree = QuadTree::new(&st.setup.domain);
    let object = if scenario.loss_tangent > 0.0 {
        lossy_object_from_contrast(&st.setup.domain, &tree, truth_raster, scenario.loss_tangent)
    } else {
        object_from_contrast(&st.setup.domain, &tree, truth_raster)
    };
    let mut measured = synthesize_measurements(&st.setup, &st.g0, &object, Default::default());
    if let Some(model) = scenario.noise {
        let staged = ffw_phantom::NoiseModel {
            snr_db: model.snr_db,
            seed: splitmix64(model.seed ^ stage_idx),
        };
        staged.apply(&mut measured);
    }
    measured
}

struct Cell {
    err: f64,
    err_im: Option<f64>,
}

/// Runs the 2.0 → 1.0 hop (4 + 4 iterations) for one scenario × regularizer
/// cell and returns the relative image error of the real contrast (and of
/// the absorption map for lossy scenarios).
fn run_cell(scenario: &Scenario, regularizer: Regularizer) -> Cell {
    let hi = stage(scenario, 1.0);
    let lo = stage(scenario, 2.0);
    let domain = hi.setup.domain.clone();
    let tree = QuadTree::new(&domain);
    let truth = Cylinder {
        center: Point2::ZERO,
        radius: scenario.radius_factor * domain.side(),
        contrast: scenario.contrast,
    };
    let truth_raster = truth.rasterize(&domain);
    let mea_hi = measure(scenario, &hi, 1, &truth_raster);
    let mea_lo = measure(scenario, &lo, 0, &truth_raster);
    let cfg = DbimConfig {
        iterations: 0,
        regularizer,
        real_object: scenario.loss_tangent == 0.0,
        ..Default::default()
    };
    let result = multi_frequency_dbim(
        &[
            FrequencyHop {
                setup: &lo.setup,
                g0: &lo.g0,
                measured: &mea_lo,
                iterations: 4,
            },
            FrequencyHop {
                setup: &hi.setup,
                g0: &hi.g0,
                measured: &mea_hi,
                iterations: 4,
            },
        ],
        &cfg,
    )
    .expect("hop dbim");
    let err = image_rel_error(
        &contrast_from_object(&domain, &tree, &result.object),
        &truth_raster,
    );
    let err_im = (scenario.loss_tangent > 0.0).then(|| {
        let truth_im: Vec<f64> = truth_raster
            .iter()
            .map(|c| c * scenario.loss_tangent)
            .collect();
        let k0sq_inv = 1.0 / (domain.k0() * domain.k0());
        let grid = tree.to_grid_order(&result.object);
        let im: Vec<f64> = grid.iter().map(|o| o.im * k0sq_inv).collect();
        image_rel_error(&im, &truth_im)
    });
    Cell { err, err_im }
}

fn regularizers() -> [(&'static str, Regularizer); 3] {
    [
        ("none", Regularizer::Tikhonov { lambda: 0.0 }),
        ("smoothness", Regularizer::Smoothness { lambda: 1e-4 }),
        (
            "wgcv-lsqr",
            Regularizer::WgcvLsqr {
                steps: 8,
                omega: 0.8,
            },
        ),
    ]
}

fn find(zoo: &[Scenario], name: &str) -> Scenario {
    zoo.iter()
        .find(|s| s.name == name)
        .unwrap_or_else(|| panic!("scenario {name} missing from zoo"))
        .clone()
}

/// The full matrix, printed for EXPERIMENTS.md and pinned cell by cell.
/// Bounds carry ~25% headroom over the measured values so legitimate
/// numeric drift does not flake, while a regression that stalls a cell
/// (errors of 0.5+ where 0.2 is expected) fails loudly.
#[test]
fn quality_matrix_is_pinned() {
    let zoo = scenario_zoo();
    // scenario name -> per-regularizer error ceiling ("none", "smoothness",
    // "wgcv-lsqr" order, matching `regularizers()`).
    let ceilings: [(&str, [f64; 3]); 5] = [
        ("full_clean", [0.31, 0.33, 0.30]),
        ("full_noisy30", [0.31, 0.33, 0.31]),
        ("arc210_clean", [0.50, 0.60, 0.36]),
        ("sparse_half_noisy30", [0.40, 0.42, 0.39]),
        ("full_lossy", [0.31, 0.34, 0.31]),
    ];
    let mut failures = Vec::new();
    println!("| scenario | none | smoothness | wgcv-lsqr |");
    println!("|---|---|---|---|");
    for (name, bounds) in ceilings {
        let scenario = find(&zoo, name);
        let mut row = format!("| {name} ");
        for ((reg_name, reg), bound) in regularizers().into_iter().zip(bounds) {
            let cell = run_cell(&scenario, reg);
            row.push_str(&format!("| {:.3} ", cell.err));
            if !(cell.err.is_finite() && cell.err < bound) {
                failures.push(format!(
                    "{name} × {reg_name}: err {:.3} exceeds ceiling {bound}",
                    cell.err
                ));
            }
            if let Some(im) = cell.err_im {
                row.push_str(&format!("(im {im:.3}) "));
                if !(im.is_finite() && im < 1.0) {
                    failures.push(format!("{name} × {reg_name}: absorption err {im:.3}"));
                }
            }
        }
        println!("{row}|");
    }
    assert!(
        failures.is_empty(),
        "matrix regressions:\n{}",
        failures.join("\n")
    );
}

/// The headline structural claim: on the pinned limited-aperture scenario
/// the hybrid wGCV-LSQR step strictly beats the unregularized hop.
#[test]
fn wgcv_strictly_beats_unregularized_on_limited_aperture() {
    let scenario = find(&scenario_zoo(), "arc210_clean");
    let none = run_cell(&scenario, Regularizer::Tikhonov { lambda: 0.0 });
    let wgcv = run_cell(
        &scenario,
        Regularizer::WgcvLsqr {
            steps: 8,
            omega: 0.8,
        },
    );
    assert!(
        wgcv.err < 0.9 * none.err,
        "wgcv {:.3} must strictly beat unregularized {:.3}",
        wgcv.err,
        none.err
    );
}

/// The lossy scenario must recover a meaningful absorption map: the
/// reconstructed imaginary part correlates positively with the true one.
#[test]
fn lossy_scenario_recovers_absorption_sign() {
    let scenario = find(&scenario_zoo(), "full_lossy");
    let hi = stage(&scenario, 1.0);
    let lo = stage(&scenario, 2.0);
    let domain = hi.setup.domain.clone();
    let tree = QuadTree::new(&domain);
    let truth = Cylinder {
        center: Point2::ZERO,
        radius: scenario.radius_factor * domain.side(),
        contrast: scenario.contrast,
    };
    let truth_raster = truth.rasterize(&domain);
    let mea_hi = measure(&scenario, &hi, 1, &truth_raster);
    let mea_lo = measure(&scenario, &lo, 0, &truth_raster);
    let result = multi_frequency_dbim(
        &[
            FrequencyHop {
                setup: &lo.setup,
                g0: &lo.g0,
                measured: &mea_lo,
                iterations: 4,
            },
            FrequencyHop {
                setup: &hi.setup,
                g0: &hi.g0,
                measured: &mea_hi,
                iterations: 4,
            },
        ],
        &DbimConfig {
            iterations: 0,
            real_object: false,
            ..Default::default()
        },
    )
    .expect("lossy hop dbim");
    let grid = tree.to_grid_order(&result.object);
    let corr: f64 = grid
        .iter()
        .zip(&truth_raster)
        .map(|(o, &c)| o.im * c * scenario.loss_tangent)
        .sum();
    assert!(
        corr > 0.0,
        "reconstructed absorption must correlate positively with the truth"
    );
}

/// Noise models are part of the zoo contract: the same scenario with the
/// same seed must produce bit-identical measurements, and different seeds
/// must not.
#[test]
fn zoo_noise_is_seed_deterministic_end_to_end() {
    let scenario = find(&scenario_zoo(), "full_noisy30");
    let hi = stage(&scenario, 1.0);
    let truth = Cylinder {
        center: Point2::ZERO,
        radius: scenario.radius_factor * hi.setup.domain.side(),
        contrast: scenario.contrast,
    };
    let raster = truth.rasterize(&hi.setup.domain);
    let a = measure(&scenario, &hi, 1, &raster);
    let b = measure(&scenario, &hi, 1, &raster);
    assert_eq!(a, b, "same scenario + seed must be bit-identical");
    let mut other = scenario.clone();
    other.noise = Some(ffw_phantom::NoiseModel {
        snr_db: 30.0,
        seed: 0xBAD_5EED,
    });
    let c = measure(&other, &hi, 1, &raster);
    assert_ne!(a, c, "different noise seeds must differ");
}
