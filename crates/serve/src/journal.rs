//! The append-only job journal: the service's crash-safe source of truth.
//!
//! Layout (integers little-endian):
//!
//! ```text
//! header   8 bytes   b"FFWJRNL1"
//! frame*   4 bytes   payload length N (max 1 MiB)
//!          N bytes   payload: one JSON-encoded JobEvent
//!          8 bytes   FNV-1a 64 checksum over the payload
//! ```
//!
//! Every accepted job appends an `accepted` frame *before* the submit
//! response is sent, and every terminal transition appends its frame before
//! the client hears about it; each append is flushed and fsynced. Recovery
//! scans frames from the start and stops at the first torn or corrupt frame
//! — a kill at any byte boundary therefore loses at most the suffix that
//! was never acknowledged, and the engine re-queues every journaled job
//! that lacks a terminal frame (resuming from its checkpoint when one
//! exists). The torn tail is truncated so subsequent appends extend a
//! well-formed file. Corruption *before* the last good frame also truncates
//! there: the journal is a prefix log, and a conservative prefix is the
//! only state whose every frame is known-good.

use crate::json::Json;
use crate::spec::JobSpec;
use ffw_fault::fnv1a64;
use std::fmt;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

const MAGIC: &[u8; 8] = b"FFWJRNL1";
/// Sanity cap on a single frame payload; a declared length above this is
/// corruption, not a request to allocate.
const MAX_FRAME: usize = 1 << 20;

/// Why the journal could not be opened or written.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum JournalError {
    /// Filesystem failure (message carries path and cause).
    Io(String),
    /// The file exists but does not start with the journal magic — it is
    /// not ours to truncate; the operator must move it aside.
    BadHeader,
}

impl fmt::Display for JournalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JournalError::Io(m) => write!(f, "journal io error: {m}"),
            JournalError::BadHeader => {
                write!(
                    f,
                    "journal file exists but has a foreign header (refusing to truncate)"
                )
            }
        }
    }
}

impl std::error::Error for JournalError {}

/// One durable fact about a job's lifecycle.
#[derive(Clone, Debug, PartialEq)]
pub enum JobEvent {
    /// The job passed admission; carries the full validated spec.
    Accepted {
        /// Job id.
        id: String,
        /// The validated spec (recovery re-queues from this). Boxed: specs
        /// dwarf every other variant and events move through channels.
        spec: Box<JobSpec>,
    },
    /// A worker began (or re-began) executing the job.
    Started {
        /// Job id.
        id: String,
        /// 1-based attempt number (increments on transient-fault retries).
        attempt: u32,
    },
    /// The job completed; the output file's digest is the proof of payload.
    Done {
        /// Job id.
        id: String,
        /// Final relative residual.
        residual: f64,
        /// FNV-1a 64 digest of the output image bytes.
        digest: u64,
    },
    /// The job failed terminally.
    Failed {
        /// Job id.
        id: String,
        /// Stable failure code (`breakdown`, `budget-exhausted`, ...).
        code: String,
        /// Human-readable detail.
        detail: String,
    },
    /// The job was cancelled; its checkpoint (if any) remains on disk.
    Cancelled {
        /// Job id.
        id: String,
        /// Outer iterations completed before the stop took effect.
        next_iter: u32,
    },
}

impl JobEvent {
    /// The id of the job this event concerns.
    pub fn id(&self) -> &str {
        match self {
            JobEvent::Accepted { id, .. }
            | JobEvent::Started { id, .. }
            | JobEvent::Done { id, .. }
            | JobEvent::Failed { id, .. }
            | JobEvent::Cancelled { id, .. } => id,
        }
    }

    /// Serializes to the journal's JSON payload.
    pub fn to_json(&self) -> Json {
        use crate::json::obj;
        match self {
            JobEvent::Accepted { id, spec } => obj(vec![
                ("type", Json::Str("accepted".into())),
                ("id", Json::Str(id.clone())),
                ("spec", spec.to_json()),
            ]),
            JobEvent::Started { id, attempt } => obj(vec![
                ("type", Json::Str("started".into())),
                ("id", Json::Str(id.clone())),
                ("attempt", Json::Num(*attempt as f64)),
            ]),
            JobEvent::Done {
                id,
                residual,
                digest,
            } => obj(vec![
                ("type", Json::Str("done".into())),
                ("id", Json::Str(id.clone())),
                ("residual", Json::Num(*residual)),
                ("digest", Json::Str(format!("{digest:#018x}"))),
            ]),
            JobEvent::Failed { id, code, detail } => obj(vec![
                ("type", Json::Str("failed".into())),
                ("id", Json::Str(id.clone())),
                ("code", Json::Str(code.clone())),
                ("detail", Json::Str(detail.clone())),
            ]),
            JobEvent::Cancelled { id, next_iter } => obj(vec![
                ("type", Json::Str("cancelled".into())),
                ("id", Json::Str(id.clone())),
                ("next_iter", Json::Num(*next_iter as f64)),
            ]),
        }
    }

    /// Decodes a journal payload; `Err` marks the frame (and everything
    /// after it) unusable.
    pub fn from_json(j: &Json) -> Result<JobEvent, String> {
        let id = j
            .get("id")
            .and_then(Json::as_str)
            .ok_or("event missing 'id'")?
            .to_string();
        match j.get("type").and_then(Json::as_str) {
            Some("accepted") => Ok(JobEvent::Accepted {
                id,
                spec: Box::new(JobSpec::from_json(
                    j.get("spec").ok_or("accepted missing 'spec'")?,
                )?),
            }),
            Some("started") => Ok(JobEvent::Started {
                id,
                attempt: j
                    .get("attempt")
                    .and_then(Json::as_u64)
                    .ok_or("started missing 'attempt'")? as u32,
            }),
            Some("done") => {
                let hex = j
                    .get("digest")
                    .and_then(Json::as_str)
                    .ok_or("done missing 'digest'")?;
                let digest = u64::from_str_radix(hex.trim_start_matches("0x"), 16)
                    .map_err(|_| "bad digest hex".to_string())?;
                Ok(JobEvent::Done {
                    id,
                    residual: j
                        .get("residual")
                        .and_then(Json::as_f64)
                        .ok_or("done missing 'residual'")?,
                    digest,
                })
            }
            Some("failed") => Ok(JobEvent::Failed {
                id,
                code: j
                    .get("code")
                    .and_then(Json::as_str)
                    .ok_or("failed missing 'code'")?
                    .to_string(),
                detail: j
                    .get("detail")
                    .and_then(Json::as_str)
                    .unwrap_or("")
                    .to_string(),
            }),
            Some("cancelled") => Ok(JobEvent::Cancelled {
                id,
                next_iter: j
                    .get("next_iter")
                    .and_then(Json::as_u64)
                    .ok_or("cancelled missing 'next_iter'")? as u32,
            }),
            other => Err(format!("unknown event type {other:?}")),
        }
    }
}

/// What `Journal::open` recovered from an existing file.
#[derive(Clone, Debug, Default)]
pub struct Recovery {
    /// Every intact event, in append order.
    pub events: Vec<JobEvent>,
    /// Bytes of torn/corrupt tail that were truncated away (0 on a clean
    /// open).
    pub truncated_bytes: u64,
}

/// An open, append-only job journal.
#[derive(Debug)]
pub struct Journal {
    file: fs::File,
    path: PathBuf,
}

impl Journal {
    /// Opens (creating if absent) the journal at `path` and recovers every
    /// intact frame. A torn or corrupt tail is truncated; a file with a
    /// foreign header is a typed error, never a panic and never destroyed.
    pub fn open(path: &Path) -> Result<(Journal, Recovery), JournalError> {
        let io = |what: &str, e: std::io::Error| {
            JournalError::Io(format!("{what} {}: {e}", path.display()))
        };
        let mut recovery = Recovery::default();
        let existing = match fs::read(path) {
            Ok(bytes) => Some(bytes),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => None,
            Err(e) => return Err(io("read", e)),
        };

        let good_len = match &existing {
            None => None,
            Some(bytes) => {
                if bytes.len() >= MAGIC.len() && &bytes[..MAGIC.len()] != MAGIC {
                    return Err(JournalError::BadHeader);
                }
                if bytes.len() < MAGIC.len() {
                    // Torn during creation: only a header prefix made it out.
                    recovery.truncated_bytes = bytes.len() as u64;
                    None
                } else {
                    let mut pos = MAGIC.len();
                    while let Some((event, next)) = read_frame(bytes, pos) {
                        recovery.events.push(event);
                        pos = next;
                    }
                    recovery.truncated_bytes = (bytes.len() - pos) as u64;
                    Some(pos as u64)
                }
            }
        };

        match good_len {
            Some(len) => {
                // Existing journal with a valid header: drop the bad tail
                // (if any) and append after the last good frame.
                let file = fs::OpenOptions::new()
                    .write(true)
                    .open(path)
                    .map_err(|e| io("open", e))?;
                if recovery.truncated_bytes > 0 {
                    file.set_len(len).map_err(|e| io("truncate", e))?;
                    file.sync_all().map_err(|e| io("sync", e))?;
                }
                let mut journal = Journal {
                    file,
                    path: path.to_path_buf(),
                };
                use std::io::Seek as _;
                journal
                    .file
                    .seek(std::io::SeekFrom::Start(len))
                    .map_err(|e| io("seek", e))?;
                Ok((journal, recovery))
            }
            None => {
                // Fresh journal (or torn header): write the header and sync
                // it — and the directory entry — before accepting any job.
                let mut file = fs::File::create(path).map_err(|e| io("create", e))?;
                file.write_all(MAGIC).map_err(|e| io("write header", e))?;
                file.sync_all().map_err(|e| io("sync", e))?;
                sync_parent_dir(path)?;
                Ok((
                    Journal {
                        file,
                        path: path.to_path_buf(),
                    },
                    recovery,
                ))
            }
        }
    }

    /// Appends one event durably: the frame is written, flushed and fsynced
    /// before this returns, so an acknowledgement sent afterwards can never
    /// outlive the record.
    pub fn append(&mut self, event: &JobEvent) -> Result<(), JournalError> {
        let payload = event.to_json().to_line().into_bytes();
        debug_assert!(payload.len() <= MAX_FRAME);
        let mut frame = Vec::with_capacity(payload.len() + 12);
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&payload);
        frame.extend_from_slice(&fnv1a64(&payload).to_le_bytes());
        let io = |what: &str, e: std::io::Error| {
            JournalError::Io(format!("{what} {}: {e}", self.path.display()))
        };
        self.file.write_all(&frame).map_err(|e| io("append", e))?;
        self.file.sync_data().map_err(|e| io("fsync", e))
    }
}

/// Parses the frame at `pos`; `None` if it is torn, corrupt, or absent.
fn read_frame(bytes: &[u8], pos: usize) -> Option<(JobEvent, usize)> {
    let len_end = pos.checked_add(4)?;
    if len_end > bytes.len() {
        return None;
    }
    let mut len_buf = [0u8; 4];
    len_buf.copy_from_slice(&bytes[pos..len_end]);
    let len = u32::from_le_bytes(len_buf) as usize;
    if len > MAX_FRAME {
        return None;
    }
    let payload_end = len_end.checked_add(len)?;
    let frame_end = payload_end.checked_add(8)?;
    if frame_end > bytes.len() {
        return None;
    }
    let payload = &bytes[len_end..payload_end];
    let mut sum_buf = [0u8; 8];
    sum_buf.copy_from_slice(&bytes[payload_end..frame_end]);
    if u64::from_le_bytes(sum_buf) != fnv1a64(payload) {
        return None;
    }
    let text = std::str::from_utf8(payload).ok()?;
    let event = JobEvent::from_json(&Json::parse(text).ok()?).ok()?;
    Some((event, frame_end))
}

fn sync_parent_dir(path: &Path) -> Result<(), JournalError> {
    let parent = match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p.to_path_buf(),
        _ => PathBuf::from("."),
    };
    let dir = fs::File::open(&parent)
        .map_err(|e| JournalError::Io(format!("open dir {}: {e}", parent.display())))?;
    dir.sync_all()
        .map_err(|e| JournalError::Io(format!("sync dir {}: {e}", parent.display())))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("ffw-serve-journal-test");
        fs::create_dir_all(&dir).expect("mkdir");
        dir.join(format!("{name}-{}.journal", std::process::id()))
    }

    pub(crate) fn sample_events() -> Vec<JobEvent> {
        let spec = JobSpec::from_json(
            &Json::parse(r#"{"id":"j1","size":32,"tx":4,"rx":8,"iterations":2}"#).expect("json"),
        )
        .expect("spec");
        vec![
            JobEvent::Accepted {
                id: "j1".into(),
                spec: Box::new(spec),
            },
            JobEvent::Started {
                id: "j1".into(),
                attempt: 1,
            },
            JobEvent::Done {
                id: "j1".into(),
                residual: 0.0123,
                digest: 0xDEAD_BEEF_0123_4567,
            },
            JobEvent::Failed {
                id: "j2".into(),
                code: "breakdown".into(),
                detail: "rho underflow".into(),
            },
            JobEvent::Cancelled {
                id: "j3".into(),
                next_iter: 2,
            },
        ]
    }

    #[test]
    fn append_then_reopen_replays_everything() {
        let path = tmp("roundtrip");
        fs::remove_file(&path).ok();
        let events = sample_events();
        {
            let (mut j, rec) = Journal::open(&path).expect("open fresh");
            assert!(rec.events.is_empty());
            for e in &events {
                j.append(e).expect("append");
            }
        }
        let (_, rec) = Journal::open(&path).expect("reopen");
        assert_eq!(rec.events, events);
        assert_eq!(rec.truncated_bytes, 0);
        fs::remove_file(&path).ok();
    }

    #[test]
    fn append_after_recovery_extends_cleanly() {
        let path = tmp("extend");
        fs::remove_file(&path).ok();
        let events = sample_events();
        {
            let (mut j, _) = Journal::open(&path).expect("open");
            j.append(&events[0]).expect("append");
            j.append(&events[1]).expect("append");
        }
        // Tear off the last 3 bytes of the file, then append a new event.
        let bytes = fs::read(&path).expect("read");
        fs::write(&path, &bytes[..bytes.len() - 3]).expect("tear");
        {
            let (mut j, rec) = Journal::open(&path).expect("recover");
            assert_eq!(rec.events, vec![events[0].clone()]);
            assert!(rec.truncated_bytes > 0);
            j.append(&events[2]).expect("append after recovery");
        }
        let (_, rec) = Journal::open(&path).expect("final open");
        assert_eq!(rec.events, vec![events[0].clone(), events[2].clone()]);
        fs::remove_file(&path).ok();
    }

    #[test]
    fn foreign_file_is_a_typed_error() {
        let path = tmp("foreign");
        fs::write(&path, b"NOT-A-JOURNAL-FILE").expect("write");
        match Journal::open(&path) {
            Err(JournalError::BadHeader) => {}
            other => panic!("expected BadHeader, got {other:?}"),
        }
        // The foreign file was not destroyed.
        assert_eq!(fs::read(&path).expect("read"), b"NOT-A-JOURNAL-FILE");
        fs::remove_file(&path).ok();
    }

    #[test]
    fn event_json_roundtrip() {
        for e in sample_events() {
            let j = e.to_json();
            let back =
                JobEvent::from_json(&Json::parse(&j.to_line()).expect("parse")).expect("decode");
            assert_eq!(back, e);
        }
    }
}
