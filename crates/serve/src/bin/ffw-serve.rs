//! The reconstruction service daemon.
//!
//! ```sh
//! # One-shot batch: run a JSONL job file to completion, then exit.
//! ffw-serve --dir /tmp/ffw-serve --once < jobs.jsonl
//!
//! # Long-running stdin session (EOF or SIGTERM ends it).
//! ffw-serve --dir /var/lib/ffw-serve --workers 4
//!
//! # Multi-tenant TCP listener.
//! ffw-serve --dir /var/lib/ffw-serve --listen 127.0.0.1:7421
//! ```
//!
//! Exit codes: 0 drained cleanly (EOF/`drain`), 5 interrupted by
//! SIGTERM/SIGINT after checkpointing and parking in-flight work (rerun to
//! resume), 2 usage error, 1 startup failure (e.g. unusable journal).

use ffw_serve::{serve_stdio, serve_tcp, Engine, ServeConfig, ServeExit};
use std::net::TcpListener;
use std::path::PathBuf;
use std::sync::Arc;

const USAGE: &str = "\
ffw-serve: crash-safe reconstruction job service (line-delimited JSON)

USAGE:
  ffw-serve --dir <state-dir> [OPTIONS]

OPTIONS:
  --dir <path>           state directory: journal, checkpoints, outputs (required)
  --workers <n>          concurrent jobs (default 2)
  --queue <n>            pending-queue capacity; beyond it submits are shed
                         with a typed 'queue-full' rejection (default 8)
  --flop-ceiling <x>     service-wide per-job FLOP budget (default 1e16)
  --retries <n>          transient-fault retries per job (default 2)
  --plan-cache <n>       geometries kept in the plan cache (default 8)
  --listen <addr:port>   serve TCP clients instead of stdin
  --once                 exit once stdin is exhausted and all jobs settled
  --help                 print this help

PROTOCOL (one JSON object per line on stdin or a TCP connection):
  {\"op\":\"submit\",\"job\":{\"id\":\"j1\",\"size\":32,\"tx\":4,\"rx\":8,\"iterations\":3}}
  {\"op\":\"cancel\",\"id\":\"j1\"}
  {\"op\":\"status\"}
  {\"op\":\"drain\"}

EXIT CODES:
  0  drained cleanly          5  interrupted; work checkpointed, rerun resumes
  1  startup failure          2  usage error
";

struct Cli {
    cfg: ServeConfig,
    listen: Option<String>,
    once: bool,
}

fn parse_args() -> Result<Cli, String> {
    let mut dir: Option<PathBuf> = None;
    let mut cfg = ServeConfig::new(PathBuf::new());
    let mut listen = None;
    let mut once = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match arg.as_str() {
            "--dir" => dir = Some(PathBuf::from(value("--dir")?)),
            "--workers" => {
                cfg.workers = value("--workers")?
                    .parse()
                    .map_err(|e| format!("--workers: {e}"))?;
            }
            "--queue" => {
                cfg.queue_capacity = value("--queue")?
                    .parse()
                    .map_err(|e| format!("--queue: {e}"))?;
            }
            "--flop-ceiling" => {
                cfg.flop_ceiling = value("--flop-ceiling")?
                    .parse()
                    .map_err(|e| format!("--flop-ceiling: {e}"))?;
            }
            "--retries" => {
                cfg.max_retries = value("--retries")?
                    .parse()
                    .map_err(|e| format!("--retries: {e}"))?;
            }
            "--plan-cache" => {
                cfg.plan_cache_capacity = value("--plan-cache")?
                    .parse()
                    .map_err(|e| format!("--plan-cache: {e}"))?;
            }
            "--listen" => listen = Some(value("--listen")?),
            "--once" => once = true,
            "--help" | "-h" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument '{other}'")),
        }
    }
    cfg.dir = dir.ok_or("--dir is required")?;
    if cfg.workers == 0 {
        return Err("--workers must be at least 1".into());
    }
    if cfg.queue_capacity == 0 {
        return Err("--queue must be at least 1".into());
    }
    Ok(Cli { cfg, listen, once })
}

fn main() {
    let cli = match parse_args() {
        Ok(cli) => cli,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            std::process::exit(2);
        }
    };
    ffw_fault::install_shutdown_handler();
    let engine = match Engine::open(cli.cfg) {
        Ok(engine) => engine,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    };
    if !engine.recovery.requeued.is_empty() || engine.recovery.truncated_bytes > 0 {
        eprintln!(
            "recovered: {} job(s) re-queued, {} already terminal, {} torn byte(s) truncated",
            engine.recovery.requeued.len(),
            engine.recovery.terminal,
            engine.recovery.truncated_bytes
        );
    }
    let engine = Arc::new(engine);
    let exit = match cli.listen {
        Some(addr) => {
            let listener = match TcpListener::bind(&addr) {
                Ok(l) => l,
                Err(e) => {
                    eprintln!("error: bind {addr}: {e}");
                    std::process::exit(1);
                }
            };
            eprintln!("listening on {addr}");
            serve_tcp(engine, listener)
        }
        None => serve_stdio(engine, cli.once),
    };
    match exit {
        ServeExit::Drained => {}
        ServeExit::Interrupted => {
            eprintln!("interrupted: in-flight jobs checkpointed and parked; rerun to resume");
            std::process::exit(ffw_tomo::exit::EXIT_INTERRUPTED);
        }
    }
}
