//! Admission control: every submit is either accepted — and journaled —
//! or rejected with a *typed* reason the client can act on.
//!
//! The policy is deliberately load-shedding rather than back-pressuring:
//! a full queue rejects immediately with `queue-full` instead of blocking
//! the connection, so an overloaded service degrades predictably (clients
//! retry elsewhere/later) instead of accumulating unbounded work.

use crate::spec::JobSpec;
use std::fmt;

/// Why a submit was rejected. Every variant has a stable wire code.
#[derive(Clone, Debug, PartialEq)]
pub enum RejectReason {
    /// The job object failed parsing or validation.
    InvalidSpec(String),
    /// The pending queue is at capacity; retry later.
    QueueFull {
        /// The configured queue capacity.
        capacity: usize,
    },
    /// The admission-time FLOP estimate exceeds the applicable budget.
    BudgetInfeasible {
        /// Estimated FLOPs for the job.
        estimated: f64,
        /// The budget it had to fit under.
        budget: f64,
    },
    /// The service is draining (SIGTERM received); no new work is accepted.
    Draining,
    /// A job with this id already exists (any state); ids are write-once.
    DuplicateId,
}

impl RejectReason {
    /// Stable machine-readable code for the wire protocol.
    pub fn code(&self) -> &'static str {
        match self {
            RejectReason::InvalidSpec(_) => "invalid-spec",
            RejectReason::QueueFull { .. } => "queue-full",
            RejectReason::BudgetInfeasible { .. } => "budget-infeasible",
            RejectReason::Draining => "draining",
            RejectReason::DuplicateId => "duplicate-id",
        }
    }
}

impl fmt::Display for RejectReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RejectReason::InvalidSpec(detail) => write!(f, "invalid spec: {detail}"),
            RejectReason::QueueFull { capacity } => {
                write!(f, "queue full ({capacity} pending jobs); retry later")
            }
            RejectReason::BudgetInfeasible { estimated, budget } => write!(
                f,
                "estimated cost {estimated:.3e} flops exceeds budget {budget:.3e}"
            ),
            RejectReason::Draining => write!(f, "service is draining; no new jobs accepted"),
            RejectReason::DuplicateId => write!(f, "a job with this id already exists"),
        }
    }
}

/// The tunable admission policy.
#[derive(Clone, Copy, Debug)]
pub struct AdmissionPolicy {
    /// Maximum jobs waiting to start (running jobs do not count).
    pub queue_capacity: usize,
    /// Service-wide per-job FLOP ceiling.
    pub flop_ceiling: f64,
}

impl AdmissionPolicy {
    /// Decides whether a validated spec may enter the queue. `queued` is
    /// the current pending-queue depth, `draining`/`duplicate` the current
    /// engine state for this submit. Checks are ordered so the most
    /// permanent reason wins: a duplicate id is rejected as such even
    /// while draining would also apply.
    pub fn admit(
        &self,
        spec: &JobSpec,
        queued: usize,
        draining: bool,
        duplicate: bool,
    ) -> Result<(), RejectReason> {
        if duplicate {
            return Err(RejectReason::DuplicateId);
        }
        if draining {
            return Err(RejectReason::Draining);
        }
        let budget = match spec.max_flops {
            Some(limit) => limit.min(self.flop_ceiling),
            None => self.flop_ceiling,
        };
        let estimated = spec.estimated_flops();
        if estimated > budget {
            return Err(RejectReason::BudgetInfeasible { estimated, budget });
        }
        if queued >= self.queue_capacity {
            return Err(RejectReason::QueueFull {
                capacity: self.queue_capacity,
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::Json;

    fn spec() -> JobSpec {
        JobSpec::from_json(
            &Json::parse(r#"{"id":"a","size":32,"tx":4,"rx":8,"iterations":2}"#).expect("json"),
        )
        .expect("spec")
    }

    fn policy() -> AdmissionPolicy {
        AdmissionPolicy {
            queue_capacity: 2,
            flop_ceiling: 1e18,
        }
    }

    #[test]
    fn accepts_within_limits() {
        assert_eq!(policy().admit(&spec(), 0, false, false), Ok(()));
    }

    #[test]
    fn sheds_on_full_queue_with_typed_reason() {
        match policy().admit(&spec(), 2, false, false) {
            Err(RejectReason::QueueFull { capacity: 2 }) => {}
            other => panic!("expected QueueFull, got {other:?}"),
        }
    }

    #[test]
    fn infeasible_budget_is_rejected_up_front() {
        let mut s = spec();
        s.max_flops = Some(1.0);
        match policy().admit(&s, 0, false, false) {
            Err(RejectReason::BudgetInfeasible { estimated, budget }) => {
                assert!(estimated > budget);
                assert_eq!(budget, 1.0);
            }
            other => panic!("expected BudgetInfeasible, got {other:?}"),
        }
        // The service-wide ceiling applies even without a per-job limit.
        let tight = AdmissionPolicy {
            flop_ceiling: 1.0,
            ..policy()
        };
        assert!(matches!(
            tight.admit(&spec(), 0, false, false),
            Err(RejectReason::BudgetInfeasible { .. })
        ));
    }

    #[test]
    fn draining_and_duplicates_reject() {
        assert_eq!(
            policy().admit(&spec(), 0, true, false),
            Err(RejectReason::Draining)
        );
        assert_eq!(
            policy().admit(&spec(), 0, true, true),
            Err(RejectReason::DuplicateId)
        );
        for r in [
            RejectReason::InvalidSpec("x".into()),
            RejectReason::QueueFull { capacity: 1 },
            RejectReason::BudgetInfeasible {
                estimated: 2.0,
                budget: 1.0,
            },
            RejectReason::Draining,
            RejectReason::DuplicateId,
        ] {
            assert!(!r.code().is_empty());
            assert!(!r.to_string().is_empty());
        }
    }
}
