//! # ffw-serve
//!
//! Reconstruction as a service: a crash-safe, multi-tenant job engine over
//! the fault-tolerant distributed solver (`ffw_dist::run_dbim_ft`).
//!
//! Clients submit reconstruction jobs as line-delimited JSON (stdin or
//! TCP); the engine validates, admits (bounded queue, per-job FLOP and
//! deadline budgets, typed load-shedding), deduplicates immutable MLFMA
//! plans across jobs with the same geometry fingerprint, executes on a
//! fixed worker team sharing the global thread pool, streams per-iteration
//! progress, retries transient faults from checkpoints with exponential
//! backoff, and journals every state transition to a checksummed fsynced
//! append-only log. SIGKILL at *any* byte boundary loses nothing: the next
//! start replays the journal, re-queues every accepted-but-unfinished job,
//! and resumes started ones bit-identically from their outer-iteration
//! checkpoints. SIGTERM drains gracefully: running jobs checkpoint and
//! park, queued jobs stay journaled, then the process exits.
//!
//! Module map:
//!
//! * [`json`] — self-contained JSON parser/writer (the vendored
//!   `serde_json` shim is serialize-only).
//! * [`spec`] — job validation, cost model, geometry fingerprint.
//! * [`admission`] — typed accept/reject policy.
//! * [`journal`] — the append-only checksummed job journal.
//! * [`cache`] — the deduplicating plan cache.
//! * [`proto`] — the wire protocol (requests + response events).
//! * [`engine`] — workers, watchdog, retry, recovery.
//! * [`server`] — stdin and TCP front ends.

#![warn(missing_docs)]

pub mod admission;
pub mod cache;
pub mod engine;
pub mod journal;
pub mod json;
pub mod proto;
pub mod server;
pub mod spec;

pub use admission::{AdmissionPolicy, RejectReason};
pub use cache::PlanCache;
pub use engine::{Engine, JobState, RecoverySummary, ServeConfig};
pub use journal::{JobEvent, Journal, JournalError, Recovery};
pub use json::Json;
pub use proto::{parse_request, Request};
pub use server::{serve_stdio, serve_tcp, ServeExit};
pub use spec::JobSpec;
