//! Job specifications: parsing, validation, cost estimation and the
//! geometry fingerprint used to deduplicate immutable MLFMA plans.
//!
//! A spec arrives as the `"job"` object of a `submit` request and describes
//! a full synthetic reconstruction: scene geometry, ground-truth phantom,
//! DBIM iteration count, optional distributed layout, and per-job limits
//! (wall-clock deadline, FLOP budget). Validation happens entirely at
//! admission time, so by the time a job reaches a worker every field is
//! known-good and the run cannot fail on a bad parameter.

use crate::json::{obj, Json};
use ffw_fault::Fingerprint;
use ffw_geometry::Point2;
use ffw_inverse::{BackendChoice, HopSchedule, Regularizer};
use ffw_mlfma::Accuracy;
use ffw_phantom::{Annulus, Cylinder, Phantom, RandomBlobs, SheppLogan};
use ffw_tomo::SceneConfig;

/// Phantoms a job may request (mirrors `ffw-reconstruct`).
const PHANTOMS: [&str; 4] = ["cylinder", "annulus", "shepp-logan", "blobs"];
/// Accuracy presets a job may request.
const ACCURACIES: [&str; 3] = ["low", "default", "high"];

/// A fully validated reconstruction job.
#[derive(Clone, Debug, PartialEq)]
pub struct JobSpec {
    /// Client-chosen job id (1–64 chars of `[A-Za-z0-9._-]`); also names the
    /// job's checkpoint and output files.
    pub id: String,
    /// Pixels per side (must be `8 * 2^m`, `m >= 2`).
    pub size: usize,
    /// Transmitter count.
    pub tx: usize,
    /// Receiver count.
    pub rx: usize,
    /// Ground-truth phantom name.
    pub phantom: String,
    /// Phantom contrast.
    pub contrast: f64,
    /// DBIM outer iterations.
    pub iterations: usize,
    /// Measurement noise SNR in dB (`None` = noise-free).
    pub noise_db: Option<f64>,
    /// Limited-angle span in degrees (`None` = full ring).
    pub arc_deg: Option<f64>,
    /// MLFMA accuracy preset (`low` / `default` / `high`).
    pub accuracy: String,
    /// Forward-solver backend (`bicgstab` / `born-series`). Parsed and
    /// validated at admission; the fault-tolerant engine currently accepts
    /// only `bicgstab`, so `born-series` jobs are rejected here rather than
    /// failing mid-run.
    pub backend: BackendChoice,
    /// Illumination groups for the fault-tolerant distributed driver.
    pub groups: usize,
    /// Sub-tree ranks per group.
    pub subtree: usize,
    /// Relaunch budget on rank death.
    pub max_restarts: u32,
    /// Minimum surviving groups for elastic redistribution.
    pub min_groups: usize,
    /// Wall-clock deadline in milliseconds, measured from job start.
    pub deadline_ms: Option<u64>,
    /// Per-job FLOP budget; the admission estimate must fit under it.
    pub max_flops: Option<f64>,
    /// Seeded fault injection into the first launch (test harness hook).
    pub chaos_seed: Option<u64>,
    /// Frequency-hop schedule as a wavelength-factor string (`"2.0,1.0"`);
    /// `None` = single-frequency. Hop jobs run on the serial
    /// multi-frequency driver, so they require `groups == 1` and
    /// `subtree == 1`, and checkpoint/resume at hop-stage boundaries.
    pub hops: Option<HopSchedule>,
    /// Regularizer on the DBIM linear step (`"tikhonov[:L]"`,
    /// `"smoothness[:L]"`, `"wgcv-lsqr[:STEPS[:OMEGA]]"`). Non-default
    /// choices run on the serial driver (`groups == 1`).
    pub regularizer: Regularizer,
}

fn field_u64(j: &Json, key: &str, default: u64) -> Result<u64, String> {
    match j.get(key) {
        None | Some(Json::Null) => Ok(default),
        Some(v) => v
            .as_u64()
            .ok_or_else(|| format!("'{key}' must be a non-negative integer")),
    }
}

fn field_f64(j: &Json, key: &str) -> Result<Option<f64>, String> {
    match j.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(v) => match v.as_f64() {
            Some(x) if x.is_finite() => Ok(Some(x)),
            _ => Err(format!("'{key}' must be a finite number")),
        },
    }
}

impl JobSpec {
    /// Parses and validates the `"job"` object of a submit request.
    pub fn from_json(j: &Json) -> Result<JobSpec, String> {
        if !matches!(j, Json::Obj(_)) {
            return Err("job must be an object".into());
        }
        let id = j
            .get("id")
            .and_then(Json::as_str)
            .ok_or("'id' is required and must be a string")?
            .to_string();
        let spec = JobSpec {
            id,
            size: field_u64(j, "size", 32)? as usize,
            tx: field_u64(j, "tx", 4)? as usize,
            rx: field_u64(j, "rx", 8)? as usize,
            phantom: j
                .get("phantom")
                .and_then(Json::as_str)
                .unwrap_or("cylinder")
                .to_string(),
            contrast: field_f64(j, "contrast")?.unwrap_or(0.05),
            iterations: field_u64(j, "iterations", 4)? as usize,
            noise_db: field_f64(j, "noise_db")?,
            arc_deg: field_f64(j, "arc_deg")?,
            accuracy: j
                .get("accuracy")
                .and_then(Json::as_str)
                .unwrap_or("low")
                .to_string(),
            backend: match j.get("backend") {
                None | Some(Json::Null) => BackendChoice::default(),
                Some(v) => v
                    .as_str()
                    .ok_or("'backend' must be a string")?
                    .parse()
                    .map_err(|e| format!("'backend': {e}"))?,
            },
            groups: field_u64(j, "groups", 1)? as usize,
            subtree: field_u64(j, "subtree", 1)? as usize,
            max_restarts: field_u64(j, "max_restarts", 1)? as u32,
            min_groups: field_u64(j, "min_groups", 1)? as usize,
            deadline_ms: match field_u64(j, "deadline_ms", 0)? {
                0 => None,
                ms => Some(ms),
            },
            max_flops: field_f64(j, "max_flops")?,
            chaos_seed: match j.get("chaos_seed") {
                None | Some(Json::Null) => None,
                Some(v) => Some(
                    v.as_u64()
                        .ok_or("'chaos_seed' must be a non-negative integer")?,
                ),
            },
            hops: match j.get("hops") {
                None | Some(Json::Null) => None,
                Some(v) => Some(
                    HopSchedule::parse(v.as_str().ok_or("'hops' must be a string")?)
                        .map_err(|e| format!("'hops': {e}"))?,
                ),
            },
            regularizer: match j.get("regularizer") {
                None | Some(Json::Null) => Regularizer::default(),
                Some(v) => v
                    .as_str()
                    .ok_or("'regularizer' must be a string")?
                    .parse()
                    .map_err(|e| format!("'regularizer': {e}"))?,
            },
        };
        spec.validate()?;
        Ok(spec)
    }

    fn validate(&self) -> Result<(), String> {
        if self.id.is_empty() || self.id.len() > 64 {
            return Err("'id' must be 1-64 characters".into());
        }
        if !self
            .id
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-'))
        {
            return Err("'id' may only contain [A-Za-z0-9._-]".into());
        }
        if self.size < 32 || !self.size.is_multiple_of(8) || !(self.size / 8).is_power_of_two() {
            return Err(format!(
                "'size' {} must be 8 * 2^m with m >= 2 (32, 64, 128, ...)",
                self.size
            ));
        }
        if self.tx == 0 || self.rx == 0 {
            return Err("'tx' and 'rx' must be at least 1".into());
        }
        if !(1..=1000).contains(&self.iterations) {
            return Err("'iterations' must be in 1..=1000".into());
        }
        if !self.contrast.is_finite() || self.contrast.abs() > 1.0 {
            return Err("'contrast' must be finite with |contrast| <= 1".into());
        }
        if !PHANTOMS.contains(&self.phantom.as_str()) {
            return Err(format!(
                "unknown phantom '{}' (one of {PHANTOMS:?})",
                self.phantom
            ));
        }
        if !ACCURACIES.contains(&self.accuracy.as_str()) {
            return Err(format!(
                "unknown accuracy '{}' (one of {ACCURACIES:?})",
                self.accuracy
            ));
        }
        if self.backend != BackendChoice::Bicgstab {
            return Err(format!(
                "'backend' {} is not supported by the fault-tolerant engine                  (the distributed driver pins bicgstab); run it through                  ffw-reconstruct --backend instead",
                self.backend
            ));
        }
        if self.groups == 0 || !self.tx.is_multiple_of(self.groups) {
            return Err(format!(
                "'groups' {} must be >= 1 and divide 'tx' {}",
                self.groups, self.tx
            ));
        }
        if self.subtree == 0 || 16 % self.subtree != 0 {
            return Err(format!("'subtree' {} must divide 16", self.subtree));
        }
        if self.min_groups == 0 || self.min_groups > self.groups {
            return Err(format!(
                "'min_groups' {} must be between 1 and 'groups' {}",
                self.min_groups, self.groups
            ));
        }
        if let Some(d) = self.arc_deg {
            if !(1.0..=360.0).contains(&d) {
                return Err("'arc_deg' must be in 1..=360".into());
            }
        }
        if let Some(f) = self.max_flops {
            if f <= 0.0 {
                return Err("'max_flops' must be positive".into());
            }
        }
        // The serial multi-frequency driver handles hop and non-default
        // regularizer jobs; it is single-launch, so the distributed layout
        // and chaos hooks must stay at their defaults.
        let serial = self.hops.is_some() || self.regularizer != Regularizer::default();
        if serial && (self.groups != 1 || self.subtree != 1) {
            return Err(format!(
                "'hops'/'regularizer' jobs run on the serial driver: \
                 'groups' {} and 'subtree' {} must both be 1",
                self.groups, self.subtree
            ));
        }
        if let Some(schedule) = &self.hops {
            if self.chaos_seed.is_some() {
                return Err("'chaos_seed' applies to distributed launches only; \
                     'hops' jobs run the serial driver"
                    .into());
            }
            if self.iterations < schedule.len() {
                return Err(format!(
                    "'iterations' {} must give each of the {} hop stage(s) \
                     at least one iteration",
                    self.iterations,
                    schedule.len()
                ));
            }
        }
        Ok(())
    }

    /// Serializes back to the JSON shape `from_json` accepts — used by the
    /// journal so recovery reconstructs the exact spec.
    pub fn to_json(&self) -> Json {
        let opt = |o: Option<f64>| o.map(Json::Num).unwrap_or(Json::Null);
        obj(vec![
            ("id", Json::Str(self.id.clone())),
            ("size", Json::Num(self.size as f64)),
            ("tx", Json::Num(self.tx as f64)),
            ("rx", Json::Num(self.rx as f64)),
            ("phantom", Json::Str(self.phantom.clone())),
            ("contrast", Json::Num(self.contrast)),
            ("iterations", Json::Num(self.iterations as f64)),
            ("noise_db", opt(self.noise_db)),
            ("arc_deg", opt(self.arc_deg)),
            ("accuracy", Json::Str(self.accuracy.clone())),
            ("backend", Json::Str(self.backend.as_str().to_string())),
            ("groups", Json::Num(self.groups as f64)),
            ("subtree", Json::Num(self.subtree as f64)),
            ("max_restarts", Json::Num(self.max_restarts as f64)),
            ("min_groups", Json::Num(self.min_groups as f64)),
            ("deadline_ms", opt(self.deadline_ms.map(|v| v as f64))),
            ("max_flops", opt(self.max_flops)),
            (
                "chaos_seed",
                self.chaos_seed
                    .map(|v| Json::Num(v as f64))
                    .unwrap_or(Json::Null),
            ),
            (
                "hops",
                self.hops
                    .as_ref()
                    .map(|h| Json::Str(h.to_string()))
                    .unwrap_or(Json::Null),
            ),
            ("regularizer", Json::Str(self.regularizer.to_spec_string())),
        ])
    }

    /// The scene this job reconstructs. `threads` is left at 0; the engine
    /// supplies its shared pool via [`ffw_tomo::Reconstruction::with_pool`].
    pub fn scene(&self) -> SceneConfig {
        let mut scene = SceneConfig::new(self.size, self.tx, self.rx);
        scene.accuracy = self.accuracy_preset();
        if let Some(deg) = self.arc_deg {
            let span = deg.to_radians();
            scene = scene.with_arc(-span / 2.0, span);
        }
        scene
    }

    fn accuracy_preset(&self) -> Accuracy {
        match self.accuracy.as_str() {
            "low" => Accuracy::low(),
            "high" => Accuracy::high(),
            _ => Accuracy::default(),
        }
    }

    /// Builds the ground-truth phantom (validated names only).
    pub fn build_phantom(&self, side: f64) -> Box<dyn Phantom + Sync> {
        match self.phantom.as_str() {
            "annulus" => Box::new(Annulus {
                center: Point2::ZERO,
                inner: 0.18 * side,
                outer: 0.30 * side,
                contrast: self.contrast,
            }),
            "shepp-logan" => Box::new(SheppLogan::new(0.45 * side, self.contrast)),
            "blobs" => Box::new(RandomBlobs::new(6, 0.4 * side, self.contrast, 42)),
            _ => Box::new(Cylinder {
                center: Point2::ZERO,
                radius: 0.25 * side,
                contrast: self.contrast,
            }),
        }
    }

    /// Fingerprint of everything the immutable `MlfmaPlan` + operator setup
    /// depends on — and nothing else. Two jobs with equal geometry
    /// fingerprints share one cached [`ffw_tomo::Reconstruction`]; fields
    /// like `iterations`, `phantom` or `deadline_ms` deliberately do not
    /// contribute.
    pub fn geometry_fingerprint(&self) -> u64 {
        let acc = self.accuracy_preset();
        let mut fp = Fingerprint::new()
            .u64(self.size as u64)
            .u64(self.tx as u64)
            .u64(self.rx as u64)
            .f64(acc.digits)
            .u64(acc.interp_order as u64)
            .flag(self.arc_deg.is_some());
        if let Some(deg) = self.arc_deg {
            fp = fp.f64(deg);
        }
        fp.finish()
    }

    /// Admission-time FLOP estimate for the whole job, from the analytic
    /// O(N log N) MLFMA matvec cost and the workspace's BiCGStab iteration
    /// model — deliberately computed *without* building the (expensive)
    /// plan, so an over-budget job is rejected before any setup work.
    pub fn estimated_flops(&self) -> f64 {
        let n = (self.size * self.size) as f64;
        let matvec = 150.0 * n * n.log2().max(1.0);
        // 3 forward-class solves per transmitter per outer iteration plus
        // the final residual pass (the paper's accounting, also asserted by
        // the core end-to-end test); ~2 matvecs per BiCGStab iteration.
        let solves = (self.iterations * self.tx * 3 + self.tx) as f64;
        let iters = ffw_perf::mean_bicgs_iters(self.size * self.size, self.tx);
        solves * iters * 2.0 * matvec
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> Json {
        Json::parse(r#"{"id":"job-1","size":32,"tx":4,"rx":8,"iterations":3}"#).expect("parse")
    }

    #[test]
    fn defaults_and_roundtrip() {
        let spec = JobSpec::from_json(&base()).expect("valid");
        assert_eq!(spec.phantom, "cylinder");
        assert_eq!(spec.backend, BackendChoice::Bicgstab);
        assert_eq!(spec.groups, 1);
        assert_eq!(spec.deadline_ms, None);
        assert_eq!(spec.hops, None);
        assert_eq!(spec.regularizer, Regularizer::default());
        let again = JobSpec::from_json(&spec.to_json()).expect("roundtrip");
        assert_eq!(again, spec);
    }

    #[test]
    fn hop_and_regularizer_jobs_roundtrip() {
        let j = Json::parse(
            r#"{"id":"hop-1","size":32,"tx":4,"rx":8,"iterations":4,
                "hops":"2.0,1.0","regularizer":"wgcv-lsqr:8:0.8"}"#,
        )
        .expect("parse");
        let spec = JobSpec::from_json(&j).expect("valid");
        assert_eq!(spec.hops.as_ref().map(|h| h.len()), Some(2));
        assert_eq!(
            spec.regularizer,
            Regularizer::WgcvLsqr {
                steps: 8,
                omega: 0.8
            }
        );
        // The journal stores `to_json` output; recovery must reparse to the
        // identical spec or a resumed hop job would rebuild a different run.
        let again = JobSpec::from_json(&spec.to_json()).expect("roundtrip");
        assert_eq!(again, spec);
    }

    #[test]
    fn rejections_are_descriptive() {
        for (patch, needle) in [
            (r#"{"id":""}"#, "'id'"),
            (r#"{"id":"a b"}"#, "[A-Za-z0-9._-]"),
            (r#"{"id":"a","size":33}"#, "'size'"),
            (r#"{"id":"a","size":48}"#, "'size'"),
            (r#"{"id":"a","tx":0}"#, "'tx'"),
            (r#"{"id":"a","iterations":0}"#, "'iterations'"),
            (r#"{"id":"a","phantom":"pineapple"}"#, "phantom"),
            (r#"{"id":"a","accuracy":"extreme"}"#, "accuracy"),
            (r#"{"id":"a","backend":"gmres"}"#, "'backend'"),
            (r#"{"id":"a","backend":"born-series"}"#, "'backend'"),
            (r#"{"id":"a","tx":4,"groups":3}"#, "'groups'"),
            (r#"{"id":"a","subtree":3}"#, "'subtree'"),
            (
                r#"{"id":"a","groups":2,"tx":4,"min_groups":3}"#,
                "'min_groups'",
            ),
            (r#"{"id":"a","contrast":2.0}"#, "'contrast'"),
            (r#"{"id":"a","max_flops":-1}"#, "'max_flops'"),
            (r#"{"id":"a","size":"big"}"#, "'size'"),
            (r#"{"id":"a","hops":"1.0,2.0"}"#, "'hops'"),
            (r#"{"id":"a","hops":"2.0,1.5"}"#, "'hops'"),
            (r#"{"id":"a","hops":7}"#, "'hops'"),
            (
                r#"{"id":"a","hops":"2.0,1.0","iterations":1}"#,
                "'iterations'",
            ),
            (r#"{"id":"a","hops":"2.0,1.0","tx":4,"groups":2}"#, "serial"),
            (
                r#"{"id":"a","hops":"2.0,1.0","chaos_seed":7}"#,
                "'chaos_seed'",
            ),
            (r#"{"id":"a","regularizer":"ridge"}"#, "'regularizer'"),
            (r#"{"id":"a","regularizer":"wgcv-lsqr:0"}"#, "'regularizer'"),
            (
                r#"{"id":"a","regularizer":"smoothness:1e-4","tx":4,"groups":2}"#,
                "serial",
            ),
        ] {
            let j = Json::parse(patch).expect(patch);
            let err = JobSpec::from_json(&j).expect_err(patch);
            assert!(err.contains(needle), "{patch}: {err}");
        }
    }

    #[test]
    fn geometry_fingerprint_ignores_non_geometry_fields() {
        let a = JobSpec::from_json(&base()).expect("valid");
        let mut b = a.clone();
        b.id = "job-2".into();
        b.iterations = 9;
        b.phantom = "annulus".into();
        b.deadline_ms = Some(100);
        assert_eq!(a.geometry_fingerprint(), b.geometry_fingerprint());
        let mut c = a.clone();
        c.size = 64;
        assert_ne!(a.geometry_fingerprint(), c.geometry_fingerprint());
        let mut d = a.clone();
        d.arc_deg = Some(90.0);
        assert_ne!(a.geometry_fingerprint(), d.geometry_fingerprint());
    }

    #[test]
    fn flop_estimate_scales_with_work() {
        let small = JobSpec::from_json(&base()).expect("valid");
        let mut big = small.clone();
        big.size = 128;
        big.iterations = 10;
        assert!(big.estimated_flops() > 10.0 * small.estimated_flops());
        assert!(small.estimated_flops() > 0.0);
    }
}
