//! Minimal line-oriented JSON: a recursive-descent parser plus a compact
//! writer.
//!
//! The workspace's vendored `serde_json` stand-in can only *serialize*; the
//! serve protocol needs to parse client requests too, so this module carries
//! a small self-contained implementation. It accepts exactly RFC 8259 JSON
//! (objects, arrays, strings with full escape handling including surrogate
//! pairs, numbers, booleans, null), enforces a nesting-depth limit so a
//! hostile request cannot blow the stack, and reports typed errors with the
//! byte offset of the problem — a malformed request must become a `rejected`
//! response, never a panic.

use std::collections::BTreeMap;
use std::fmt;

/// Maximum nesting depth accepted by the parser.
const MAX_DEPTH: usize = 64;

/// A parsed JSON value. Object keys are kept in a `BTreeMap`, which makes
/// serialization deterministic — important because journal frames and job
/// fingerprints hash the serialized text.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (parsed as `f64`; integers are exact to 2^53).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object.
    Obj(BTreeMap<String, Json>),
}

/// A parse failure: what went wrong and the byte offset where.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// Human-readable description of the problem.
    pub message: String,
    /// Byte offset into the input where the problem was detected.
    pub offset: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Parses one complete JSON value; trailing non-whitespace is an error.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing content after JSON value"));
        }
        Ok(v)
    }

    /// Looks up a key on an object; `None` for missing keys or non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as a non-negative integer, if it is one exactly.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => Some(*n as u64),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Serializes compactly (single line, no spaces) — the wire and journal
    /// format. Non-finite numbers render as `null`, like real serde_json.
    pub fn to_line(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if !n.is_finite() {
                    out.push_str("null");
                } else if n.fract() == 0.0 && n.abs() < 2f64.powi(53) {
                    // Integral values print without an exponent or trailing
                    // ".0" so ids and counters round-trip textually.
                    out.push_str(&format!("{}", *n as i64));
                } else {
                    out.push_str(&format!("{n}"));
                }
            }
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(map) => {
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

/// Convenience constructor for object literals.
pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
    Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> JsonError {
        JsonError {
            message: msg.into(),
            offset: self.pos,
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let digits = |p: &mut Parser| {
            let mut n = 0;
            while matches!(p.peek(), Some(b'0'..=b'9')) {
                p.pos += 1;
                n += 1;
            }
            n
        };
        if digits(self) == 0 {
            return Err(self.err("expected digit"));
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if digits(self) == 0 {
                return Err(self.err("expected digit after '.'"));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if digits(self) == 0 {
                return Err(self.err("expected digit in exponent"));
            }
        }
        // The slice is all ASCII number syntax, so from_utf8 cannot fail and
        // f64 parsing only fails on overflow, which maps to +-inf (rejected).
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number bytes"))?;
        let n: f64 = text.parse().map_err(|_| self.err("invalid number"))?;
        if !n.is_finite() {
            return Err(self.err("number out of range"));
        }
        Ok(Json::Num(n))
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let b = self
                .peek()
                .ok_or_else(|| self.err("truncated \\u escape"))?;
            let d = match b {
                b'0'..=b'9' => (b - b'0') as u32,
                b'a'..=b'f' => (b - b'a' + 10) as u32,
                b'A'..=b'F' => (b - b'A' + 10) as u32,
                _ => return Err(self.err("invalid hex digit in \\u escape")),
            };
            v = v * 16 + d;
            self.pos += 1;
        }
        Ok(v)
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = self.peek().ok_or_else(|| self.err("unterminated string"))?;
            match b {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let e = self.peek().ok_or_else(|| self.err("truncated escape"))?;
                    self.pos += 1;
                    match e {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let cp = if (0xD800..0xDC00).contains(&hi) {
                                // High surrogate: a low surrogate must follow.
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.expect(b'u')?;
                                    let lo = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&lo) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                                } else {
                                    return Err(self.err("lone high surrogate"));
                                }
                            } else if (0xDC00..0xE000).contains(&hi) {
                                return Err(self.err("lone low surrogate"));
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(cp)
                                    .ok_or_else(|| self.err("invalid unicode escape"))?,
                            );
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                0x00..=0x1f => return Err(self.err("raw control character in string")),
                _ => {
                    // Copy one UTF-8 scalar (input is &str, so boundaries are
                    // valid; find the char at this byte position).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid utf-8"))?;
                    let c = s.chars().next().ok_or_else(|| self.err("empty string"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value(depth + 1)?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_typical_request() {
        let text = r#"{"op":"submit","job":{"id":"a-1","size":32,"tx":4,"noise_db":-30.5,"resume":true,"tags":["x","y"],"note":null}}"#;
        let v = Json::parse(text).expect("parse");
        assert_eq!(v.get("op").and_then(Json::as_str), Some("submit"));
        let job = v.get("job").expect("job");
        assert_eq!(job.get("size").and_then(Json::as_u64), Some(32));
        assert_eq!(job.get("noise_db").and_then(Json::as_f64), Some(-30.5));
        assert_eq!(job.get("resume").and_then(Json::as_bool), Some(true));
        assert_eq!(
            job.get("tags").and_then(Json::as_arr).map(|a| a.len()),
            Some(2)
        );
        // serialize -> reparse is identity
        let again = Json::parse(&v.to_line()).expect("reparse");
        assert_eq!(again, v);
    }

    #[test]
    fn escapes_and_surrogates() {
        let v = Json::parse(r#""a\"\\\n\t\u00e9\ud83d\ude00b""#).expect("parse");
        assert_eq!(v.as_str(), Some("a\"\\\n\t\u{e9}\u{1F600}b"));
        let line = Json::Str("quote\" back\\ nl\n ctl\u{1}".into()).to_line();
        assert_eq!(
            Json::parse(&line).expect("reparse").as_str(),
            Some("quote\" back\\ nl\n ctl\u{1}")
        );
    }

    #[test]
    fn malformed_inputs_are_typed_errors_not_panics() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\":}",
            "tru",
            "01x",
            "1.",
            "1e",
            "\"\\u12",
            "\"\\ud800\"",
            "\"abc",
            "{\"a\":1}x",
            "nul",
            "-",
            "[1 2]",
            "{\"a\" 1}",
            "\u{1}",
        ] {
            let err = Json::parse(bad).expect_err(bad);
            assert!(!err.message.is_empty());
            assert!(err.offset <= bad.len());
        }
        // Depth bomb: error, not a stack overflow.
        let deep = "[".repeat(100_000) + &"]".repeat(100_000);
        assert!(Json::parse(&deep).is_err());
    }

    #[test]
    fn numbers_round_cleanly() {
        assert_eq!(Json::parse("42").unwrap().as_u64(), Some(42));
        assert_eq!(Json::parse("-1.5e2").unwrap().as_f64(), Some(-150.0));
        assert_eq!(Json::Num(3.0).to_line(), "3");
        assert_eq!(Json::Num(0.25).to_line(), "0.25");
        assert_eq!(Json::Num(f64::NAN).to_line(), "null");
        // Overflowing literals are rejected, not turned into inf.
        assert!(Json::parse("1e999").is_err());
    }

    #[test]
    fn object_serialization_is_deterministic() {
        let a = Json::parse(r#"{"b":1,"a":2}"#).unwrap();
        let b = Json::parse(r#"{"a":2,"b":1}"#).unwrap();
        assert_eq!(a.to_line(), b.to_line());
    }
}
