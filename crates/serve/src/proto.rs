//! The line-delimited JSON wire protocol.
//!
//! Requests (one JSON object per line):
//!
//! ```text
//! {"op":"submit","job":{...}}   submit a job (see JobSpec for fields)
//! {"op":"cancel","id":"j1"}     cancel a queued or running job
//! {"op":"status"}               snapshot of every known job
//! {"op":"drain"}                stop accepting; finish queued work
//! ```
//!
//! Responses (one JSON object per line, interleaved across jobs; every
//! response carries `"ev"`):
//!
//! ```text
//! {"ev":"accepted","id":"j1"}
//! {"ev":"rejected","id":"j1","reason":"queue-full","detail":"..."}
//! {"ev":"progress","id":"j1","iter":3,"residual":0.12}
//! {"ev":"done","id":"j1","residual":0.012,"digest":"0x...","output":"..."}
//! {"ev":"failed","id":"j1","code":"breakdown","detail":"..."}
//! {"ev":"cancelling","id":"j1"}
//! {"ev":"cancelled","id":"j1","completed_iters":2}
//! {"ev":"retrying","id":"j1","attempt":2}
//! {"ev":"status","queued":1,"running":1,"jobs":[...]}
//! {"ev":"draining"}
//! {"ev":"error","detail":"..."}      (malformed request line)
//! ```

use crate::admission::RejectReason;
use crate::json::{obj, Json};

/// A parsed client request.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Submit the contained (not yet validated) job object.
    Submit(Json),
    /// Cancel a job by id.
    Cancel(String),
    /// Report every known job.
    Status,
    /// Enter draining mode.
    Drain,
}

/// Parses one request line. Errors are protocol-level (send an `error`
/// response); spec-level validation happens later at admission.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let v = Json::parse(line).map_err(|e| format!("bad JSON: {e}"))?;
    match v.get("op").and_then(Json::as_str) {
        Some("submit") => Ok(Request::Submit(
            v.get("job")
                .cloned()
                .ok_or("submit requires a 'job' object")?,
        )),
        Some("cancel") => Ok(Request::Cancel(
            v.get("id")
                .and_then(Json::as_str)
                .ok_or("cancel requires an 'id' string")?
                .to_string(),
        )),
        Some("status") => Ok(Request::Status),
        Some("drain") => Ok(Request::Drain),
        Some(other) => Err(format!("unknown op '{other}'")),
        None => Err("request needs a string 'op' field".into()),
    }
}

fn ev(kind: &str, mut rest: Vec<(&str, Json)>) -> String {
    let mut pairs = vec![("ev", Json::Str(kind.into()))];
    pairs.append(&mut rest);
    obj(pairs).to_line()
}

/// `accepted` response.
pub fn accepted(id: &str) -> String {
    ev("accepted", vec![("id", Json::Str(id.into()))])
}

/// `rejected` response with the typed reason.
pub fn rejected(id: &str, reason: &RejectReason) -> String {
    ev(
        "rejected",
        vec![
            ("id", Json::Str(id.into())),
            ("reason", Json::Str(reason.code().into())),
            ("detail", Json::Str(reason.to_string())),
        ],
    )
}

/// `progress` response (one per completed outer iteration).
pub fn progress(id: &str, iter: u32, residual: f64) -> String {
    ev(
        "progress",
        vec![
            ("id", Json::Str(id.into())),
            ("iter", Json::Num(iter as f64)),
            ("residual", Json::Num(residual)),
        ],
    )
}

/// `done` response.
pub fn done(id: &str, residual: f64, digest: u64, output: &str) -> String {
    ev(
        "done",
        vec![
            ("id", Json::Str(id.into())),
            ("residual", Json::Num(residual)),
            ("digest", Json::Str(format!("{digest:#018x}"))),
            ("output", Json::Str(output.into())),
        ],
    )
}

/// `failed` response.
pub fn failed(id: &str, code: &str, detail: &str) -> String {
    ev(
        "failed",
        vec![
            ("id", Json::Str(id.into())),
            ("code", Json::Str(code.into())),
            ("detail", Json::Str(detail.into())),
        ],
    )
}

/// `cancelling` acknowledgement (stop requested on a running job).
pub fn cancelling(id: &str) -> String {
    ev("cancelling", vec![("id", Json::Str(id.into()))])
}

/// `cancelled` response.
pub fn cancelled(id: &str, completed_iters: u32) -> String {
    ev(
        "cancelled",
        vec![
            ("id", Json::Str(id.into())),
            ("completed_iters", Json::Num(completed_iters as f64)),
        ],
    )
}

/// `retrying` notice (transient fault; the job restarts from checkpoint).
pub fn retrying(id: &str, attempt: u32) -> String {
    ev(
        "retrying",
        vec![
            ("id", Json::Str(id.into())),
            ("attempt", Json::Num(attempt as f64)),
        ],
    )
}

/// `status` response.
pub fn status(queued: usize, running: usize, jobs: Vec<(String, &'static str)>) -> String {
    ev(
        "status",
        vec![
            ("queued", Json::Num(queued as f64)),
            ("running", Json::Num(running as f64)),
            (
                "jobs",
                Json::Arr(
                    jobs.into_iter()
                        .map(|(id, state)| {
                            obj(vec![
                                ("id", Json::Str(id)),
                                ("state", Json::Str(state.into())),
                            ])
                        })
                        .collect(),
                ),
            ),
        ],
    )
}

/// `draining` acknowledgement.
pub fn draining() -> String {
    ev("draining", vec![])
}

/// `error` response for malformed request lines.
pub fn error(detail: &str) -> String {
    ev("error", vec![("detail", Json::Str(detail.into()))])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_parse() {
        assert_eq!(
            parse_request(r#"{"op":"cancel","id":"x"}"#),
            Ok(Request::Cancel("x".into()))
        );
        assert_eq!(parse_request(r#"{"op":"status"}"#), Ok(Request::Status));
        assert_eq!(parse_request(r#"{"op":"drain"}"#), Ok(Request::Drain));
        assert!(matches!(
            parse_request(r#"{"op":"submit","job":{"id":"a"}}"#),
            Ok(Request::Submit(_))
        ));
        for bad in [
            "not json",
            r#"{"op":"fly"}"#,
            r#"{"op":"submit"}"#,
            r#"{"op":"cancel"}"#,
            r#"{}"#,
        ] {
            assert!(parse_request(bad).is_err(), "{bad}");
        }
    }

    #[test]
    fn responses_are_single_parseable_lines() {
        let lines = [
            accepted("a"),
            rejected("a", &RejectReason::QueueFull { capacity: 3 }),
            progress("a", 2, 0.5),
            done("a", 0.01, 0xABC, "/tmp/a.out"),
            failed("a", "breakdown", "rho underflow"),
            cancelling("a"),
            cancelled("a", 2),
            retrying("a", 2),
            status(1, 2, vec![("a".into(), "running")]),
            draining(),
            error("bad line"),
        ];
        for line in lines {
            assert!(!line.contains('\n'));
            let v = Json::parse(&line).expect(&line);
            assert!(v.get("ev").and_then(Json::as_str).is_some());
        }
        let r = rejected("a", &RejectReason::Draining);
        assert!(r.contains("\"reason\":\"draining\""));
    }
}
