//! Front ends: stdin/stdout session and a line-delimited TCP listener.
//!
//! Both speak the same protocol ([`crate::proto`]): one request per input
//! line, one response event per output line, with progress and completion
//! events interleaved as they happen. Each session has exactly one writer
//! thread draining a channel, so concurrent events never interleave bytes
//! within a line.
//!
//! Shutdown: the engine honours the process-wide flag raised by
//! `ffw_fault::install_shutdown_handler`. The serve loops poll that flag a
//! few times per millisecond-scale tick and, on SIGTERM/SIGINT, put the
//! engine into fast-drain (running jobs checkpoint and park; queued jobs
//! stay journaled) before exiting. Reader threads blocked on `stdin`/
//! `accept` cannot be interrupted portably, so they are detached and the
//! process exits without them once the engine has drained.

use crate::engine::Engine;
use crate::proto::{self, Request};
use crossbeam_channel::{unbounded, Receiver, Sender};
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;
use std::time::Duration;

/// How a finished serve loop exited.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ServeExit {
    /// Input ended (EOF) or a `drain` request completed.
    Drained,
    /// SIGTERM/SIGINT: in-flight work checkpointed and parked.
    Interrupted,
}

/// Dispatches one parsed request line to the engine.
fn dispatch(engine: &Engine, line: &str, reply: &Sender<String>) {
    match proto::parse_request(line) {
        Ok(Request::Submit(job)) => engine.submit(&job, reply.clone()),
        Ok(Request::Cancel(id)) => engine.cancel(&id, reply),
        Ok(Request::Status) => engine.status(reply),
        Ok(Request::Drain) => {
            engine.drain(false);
            let _ = reply.send(proto::draining());
        }
        Err(e) => {
            let _ = reply.send(proto::error(&e));
        }
    }
}

/// Runs a stdin/stdout session until EOF, drain completion, or shutdown.
///
/// With `once`, the loop also ends as soon as every submitted job reaches a
/// terminal state after input EOF — the mode the chaos harness and the
/// quickstart use (`ffw-serve --once < jobs.jsonl`).
pub fn serve_stdio(engine: Arc<Engine>, once: bool) -> ServeExit {
    let (reply_tx, reply_rx) = unbounded::<String>();
    let writer = {
        // lint:spawn-ok single writer thread serializing response lines to stdout
        std::thread::spawn(move || {
            let stdout = std::io::stdout();
            while let Ok(line) = reply_rx.recv() {
                let mut out = stdout.lock();
                if writeln!(out, "{line}").and_then(|_| out.flush()).is_err() {
                    return;
                }
            }
        })
    };

    // The reader thread forwards stdin lines; it cannot be woken by a
    // signal, so the main loop polls the shutdown flag independently.
    let (line_tx, line_rx) = unbounded::<String>();
    {
        // lint:spawn-ok blocking stdin reader; the main loop must stay free to observe SIGTERM
        std::thread::spawn(move || {
            let stdin = std::io::stdin();
            for line in BufReader::new(stdin.lock()).lines() {
                match line {
                    Ok(l) => {
                        if line_tx.send(l).is_err() {
                            return;
                        }
                    }
                    Err(_) => return,
                }
            }
        });
    }

    let exit = pump(&engine, &line_rx, &reply_tx, once);
    // Job entries hold reply-sender clones; release them so the writer's
    // channel disconnects once the remaining lines are drained.
    engine.release_replies();
    drop(reply_tx);
    let _ = writer.join();
    exit
}

/// The shared serve loop: dispatch incoming lines, watch for shutdown,
/// and (with `once`) finish when input has ended and the engine is idle.
fn pump(
    engine: &Engine,
    lines: &Receiver<String>,
    reply: &Sender<String>,
    once: bool,
) -> ServeExit {
    let mut input_done = false;
    loop {
        if ffw_fault::shutdown_requested() {
            engine.drain(true);
            let _ = reply.send(proto::draining());
            engine.join();
            return ServeExit::Interrupted;
        }
        match lines.try_recv() {
            Ok(line) => {
                let trimmed = line.trim();
                if !trimmed.is_empty() {
                    dispatch(engine, trimmed, reply);
                }
                continue;
            }
            Err(crossbeam_channel::TryRecvError::Empty) => {}
            Err(crossbeam_channel::TryRecvError::Disconnected) => input_done = true,
        }
        if input_done && once && engine.idle() {
            engine.drain(false);
            engine.join();
            return ServeExit::Drained;
        }
        std::thread::sleep(Duration::from_millis(1));
    }
}

/// Runs the TCP listener until shutdown. Each connection gets its own
/// session (reader + single writer), all sharing one engine — the
/// multi-tenant mode.
pub fn serve_tcp(engine: Arc<Engine>, listener: TcpListener) -> ServeExit {
    listener
        .set_nonblocking(true)
        .expect("set_nonblocking on listener");
    loop {
        if ffw_fault::shutdown_requested() {
            engine.drain(true);
            engine.join();
            return ServeExit::Interrupted;
        }
        match listener.accept() {
            Ok((stream, _addr)) => {
                let engine = Arc::clone(&engine);
                // lint:spawn-ok one session thread per client connection
                std::thread::spawn(move || session(engine, stream));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => return ServeExit::Drained,
        }
    }
}

fn session(engine: Arc<Engine>, stream: TcpStream) {
    let (reply_tx, reply_rx) = unbounded::<String>();
    let write_half = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    // lint:spawn-ok single writer thread per connection
    let writer = std::thread::spawn(move || {
        let mut out = write_half;
        while let Ok(line) = reply_rx.recv() {
            if writeln!(out, "{line}").is_err() {
                return;
            }
        }
    });
    for line in BufReader::new(stream).lines() {
        let line = match line {
            Ok(l) => l,
            Err(_) => break,
        };
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        dispatch(&engine, trimmed, &reply_tx);
    }
    drop(reply_tx);
    let _ = writer.join();
}
