//! Deduplication of immutable per-geometry state across jobs.
//!
//! Building a [`Reconstruction`] (quadtree, MLFMA plan, translators,
//! incident fields) is by far the most expensive part of a small job's
//! setup, and it depends only on the scene geometry — not on the phantom,
//! iteration count or limits. Jobs whose specs share a geometry
//! fingerprint therefore share one cached `Arc<Reconstruction>`.
//!
//! Concurrency: the first job for a geometry builds while *holding a
//! per-key claim*, not the map lock — other geometries build concurrently,
//! and a second job for the *same* geometry blocks on a condvar until the
//! build lands instead of duplicating it. Eviction is LRU over completed
//! entries once the capacity is exceeded; evicted entries only drop the
//! cache's reference, so in-flight jobs keep theirs alive.

use ffw_tomo::Reconstruction;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

enum Slot {
    /// A build is in flight on another thread; wait on the condvar.
    Building,
    /// Ready for use.
    Ready(Arc<Reconstruction>),
}

struct Inner {
    map: HashMap<u64, Slot>,
    /// Keys in least-recently-used order (front = coldest ready entry).
    lru: Vec<u64>,
}

/// A bounded, fingerprint-keyed cache of ready-to-run reconstructions.
pub struct PlanCache {
    inner: Mutex<Inner>,
    ready: Condvar,
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl PlanCache {
    /// A cache holding at most `capacity` geometries (at least 1).
    pub fn new(capacity: usize) -> Self {
        PlanCache {
            inner: Mutex::new(Inner {
                map: HashMap::new(),
                lru: Vec::new(),
            }),
            ready: Condvar::new(),
            capacity: capacity.max(1),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Returns the cached reconstruction for `key`, building it with
    /// `build` on a miss. Concurrent callers with the same key get one
    /// build; different keys build in parallel.
    pub fn get_or_build(
        &self,
        key: u64,
        build: impl FnOnce() -> Arc<Reconstruction>,
    ) -> Arc<Reconstruction> {
        {
            let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                match inner.map.get(&key) {
                    Some(Slot::Ready(recon)) => {
                        let recon = Arc::clone(recon);
                        inner.lru.retain(|&k| k != key);
                        inner.lru.push(key);
                        self.hits.fetch_add(1, Ordering::Relaxed);
                        ffw_obs::counter("serve.plan_cache.hits").inc();
                        return recon;
                    }
                    Some(Slot::Building) => {
                        inner = self.ready.wait(inner).unwrap_or_else(|e| e.into_inner());
                    }
                    None => {
                        inner.map.insert(key, Slot::Building);
                        break;
                    }
                }
            }
        }
        // Claimed: build without holding the lock.
        self.misses.fetch_add(1, Ordering::Relaxed);
        ffw_obs::counter("serve.plan_cache.misses").inc();
        let recon = build();
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.map.insert(key, Slot::Ready(Arc::clone(&recon)));
        inner.lru.push(key);
        while inner.lru.len() > self.capacity {
            let coldest = inner.lru.remove(0);
            inner.map.remove(&coldest);
        }
        drop(inner);
        self.ready.notify_all();
        recon
    }

    /// Cache hits so far (independent of the obs recorder being on).
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Cache misses (= builds) so far.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ffw_mlfma::Accuracy;
    use ffw_par::Pool;
    use ffw_tomo::SceneConfig;

    fn scene() -> SceneConfig {
        SceneConfig {
            accuracy: Accuracy::low(),
            ..SceneConfig::new(32, 2, 4)
        }
    }

    fn build() -> Arc<Reconstruction> {
        Arc::new(Reconstruction::with_pool(
            &scene(),
            Arc::clone(Pool::global_arc()),
        ))
    }

    #[test]
    fn same_key_hits_and_shares_the_instance() {
        let cache = PlanCache::new(4);
        let a = cache.get_or_build(7, build);
        let b = cache.get_or_build(7, build);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
    }

    #[test]
    fn lru_evicts_the_coldest_entry() {
        let cache = PlanCache::new(2);
        let first = cache.get_or_build(1, build);
        cache.get_or_build(2, build);
        cache.get_or_build(1, build); // touch 1: now 2 is coldest
        cache.get_or_build(3, build); // evicts 2
        assert_eq!(cache.misses(), 3);
        let again = cache.get_or_build(1, build); // still cached
        assert!(Arc::ptr_eq(&first, &again));
        cache.get_or_build(2, build); // rebuilt
        assert_eq!(cache.misses(), 4);
    }

    #[test]
    fn concurrent_same_key_builds_once() {
        let cache = Arc::new(PlanCache::new(4));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let cache = Arc::clone(&cache);
                s.spawn(move || cache.get_or_build(9, build));
            }
        });
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.hits(), 3);
    }
}
