//! The job engine: admission, journaling, scheduling, execution, recovery.
//!
//! One engine owns a bounded pending queue, a fixed worker team, a plan
//! cache, a watchdog, and the journal. The durability contract:
//!
//! * a submit is acknowledged only *after* its `accepted` frame is fsynced;
//! * a terminal state is reported only after its frame is fsynced;
//! * on restart, every journaled job without a terminal frame is re-queued
//!   — and because the distributed driver checkpoints at every outer
//!   iteration boundary under `<dir>/job-<id>.ckpt`, a re-queued job that
//!   had started *resumes bit-identically* rather than recomputing.
//!
//! Degradation ladder: overload sheds with typed rejections (admission);
//! transient faults retry with exponential backoff from the checkpoint;
//! deadlines cancel cooperatively at the next iteration boundary; SIGTERM
//! drains (checkpoint in-flight work, stop, exit); SIGKILL is recovered by
//! the journal replay above.

use crate::admission::{AdmissionPolicy, RejectReason};
use crate::cache::PlanCache;
use crate::journal::{JobEvent, Journal, JournalError};
use crate::json::Json;
use crate::proto;
use crate::spec::JobSpec;
use crossbeam_channel::{unbounded, Receiver, Sender};
use ffw_check::{validate_job_log, JobTransition};
use ffw_dist::{run_dbim_ft, FtConfig, FtDbimResult, IterProgress, JobControl};
use ffw_fault::fnv1a64;
use ffw_inverse::{add_noise, DbimConfig, DbimError, Regularizer};
use ffw_mpi::{FaultError, FaultPlan};
use ffw_par::Pool;
use ffw_tomo::{HopError, HopPipeline, Reconstruction};
use std::collections::HashMap;
use std::fs;
use std::io::Write as _;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::Duration;

/// Engine configuration.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// State directory: journal, per-job checkpoints, output images.
    pub dir: PathBuf,
    /// Worker threads executing jobs (>= 1).
    pub workers: usize,
    /// Pending-queue capacity (admission sheds beyond it).
    pub queue_capacity: usize,
    /// Service-wide per-job FLOP ceiling for admission.
    pub flop_ceiling: f64,
    /// Transient-fault retries per job before failing it.
    pub max_retries: u32,
    /// Base retry backoff in milliseconds (doubles per attempt).
    pub retry_backoff_ms: u64,
    /// Distinct geometries kept in the plan cache.
    pub plan_cache_capacity: usize,
}

impl ServeConfig {
    /// Defaults for a small service rooted at `dir`.
    pub fn new(dir: PathBuf) -> Self {
        ServeConfig {
            dir,
            workers: 2,
            queue_capacity: 8,
            flop_ceiling: 1e16,
            max_retries: 2,
            retry_backoff_ms: 10,
            plan_cache_capacity: 8,
        }
    }
}

/// Lifecycle state of a known job.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JobState {
    /// Accepted and waiting for a worker.
    Queued,
    /// Executing.
    Running,
    /// Terminal: completed; output and digest journaled.
    Done,
    /// Terminal: failed with a stable code.
    Failed,
    /// Terminal: cancelled.
    Cancelled,
}

impl JobState {
    /// Stable wire name.
    pub fn as_str(&self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Failed => "failed",
            JobState::Cancelled => "cancelled",
        }
    }
}

struct JobEntry {
    spec: JobSpec,
    state: JobState,
    control: JobControl,
    progress_rx: Option<Receiver<IterProgress>>,
    reply: Option<Sender<String>>,
    attempt: u32,
    /// Absolute monotonic deadline (ns), set when the job starts running.
    deadline_ns: Option<u64>,
    cancel_requested: bool,
    deadline_hit: bool,
}

/// What `Engine::open` reconstructed from the journal.
#[derive(Clone, Debug, Default)]
pub struct RecoverySummary {
    /// Jobs re-queued because they had no terminal frame, in acceptance
    /// order. Jobs with an on-disk checkpoint resume bit-identically.
    pub requeued: Vec<String>,
    /// Jobs already terminal in the journal (not re-run).
    pub terminal: usize,
    /// Torn/corrupt journal tail bytes truncated during recovery.
    pub truncated_bytes: u64,
}

struct Inner {
    cfg: ServeConfig,
    policy: AdmissionPolicy,
    journal: Mutex<Journal>,
    cache: PlanCache,
    pool: Arc<Pool>,
    jobs: Mutex<HashMap<String, JobEntry>>,
    queue_tx: Mutex<Option<Sender<String>>>,
    queue_rx: Receiver<String>,
    queued: AtomicUsize,
    running: AtomicUsize,
    draining: AtomicBool,
    /// Fast drain (SIGTERM): workers stop *starting* queued jobs too.
    fast_drain: AtomicBool,
    stop_watchdog: AtomicBool,
}

/// A running job engine. Dropping it does not stop workers; call
/// [`Engine::drain`] then [`Engine::join`] for an orderly shutdown.
pub struct Engine {
    inner: Arc<Inner>,
    threads: Mutex<Vec<JoinHandle<()>>>,
    /// What this instance recovered at startup.
    pub recovery: RecoverySummary,
}

fn lock<'a, T>(m: &'a Mutex<T>) -> MutexGuard<'a, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

impl Engine {
    /// Opens the state directory, recovers the journal, re-queues every
    /// non-terminal job, and starts the worker team. Fails with a typed
    /// message when the journal is unusable or replays to an illegal job
    /// history.
    pub fn open(cfg: ServeConfig) -> Result<Engine, String> {
        fs::create_dir_all(&cfg.dir)
            .map_err(|e| format!("create state dir {}: {e}", cfg.dir.display()))?;
        let (journal, recovered) =
            Journal::open(&cfg.dir.join("serve.journal")).map_err(|e| e.to_string())?;

        // Validate the recovered history against the job state machine
        // before trusting it; checksummed frames can still be illegal as a
        // *sequence* (e.g. two service instances interleaved on one file).
        let log: Vec<(String, JobTransition)> = recovered
            .events
            .iter()
            .map(|e| {
                let t = match e {
                    JobEvent::Accepted { .. } => JobTransition::Accepted,
                    JobEvent::Started { .. } => JobTransition::Started,
                    JobEvent::Done { .. } => JobTransition::Done,
                    JobEvent::Failed { .. } => JobTransition::Failed,
                    JobEvent::Cancelled { .. } => JobTransition::Cancelled,
                };
                (e.id().to_string(), t)
            })
            .collect();
        let violations = validate_job_log(&log);
        if !violations.is_empty() {
            return Err(format!(
                "journal replays to an illegal job history ({} violation(s); first: {})",
                violations.len(),
                violations[0]
            ));
        }

        // Fold events into final per-job states, keeping acceptance order.
        let mut order: Vec<String> = Vec::new();
        let mut specs: HashMap<String, JobSpec> = HashMap::new();
        let mut terminal: HashMap<String, JobState> = HashMap::new();
        let mut attempts: HashMap<String, u32> = HashMap::new();
        for e in &recovered.events {
            match e {
                JobEvent::Accepted { id, spec } => {
                    order.push(id.clone());
                    specs.insert(id.clone(), (**spec).clone());
                }
                JobEvent::Started { id, attempt } => {
                    attempts.insert(id.clone(), *attempt);
                }
                JobEvent::Done { id, .. } => {
                    terminal.insert(id.clone(), JobState::Done);
                }
                JobEvent::Failed { id, .. } => {
                    terminal.insert(id.clone(), JobState::Failed);
                }
                JobEvent::Cancelled { id, .. } => {
                    terminal.insert(id.clone(), JobState::Cancelled);
                }
            }
        }

        let (queue_tx, queue_rx) = unbounded::<String>();
        let inner = Arc::new(Inner {
            policy: AdmissionPolicy {
                queue_capacity: cfg.queue_capacity,
                flop_ceiling: cfg.flop_ceiling,
            },
            cache: PlanCache::new(cfg.plan_cache_capacity),
            pool: Arc::clone(Pool::global_arc()),
            journal: Mutex::new(journal),
            jobs: Mutex::new(HashMap::new()),
            queue_tx: Mutex::new(Some(queue_tx)),
            queue_rx,
            queued: AtomicUsize::new(0),
            running: AtomicUsize::new(0),
            draining: AtomicBool::new(false),
            fast_drain: AtomicBool::new(false),
            stop_watchdog: AtomicBool::new(false),
            cfg,
        });

        let mut summary = RecoverySummary {
            truncated_bytes: recovered.truncated_bytes,
            terminal: terminal.len(),
            ..Default::default()
        };
        {
            let mut jobs = lock(&inner.jobs);
            let tx_guard = lock(&inner.queue_tx);
            for id in order {
                let spec = match specs.get(&id) {
                    Some(s) => s.clone(),
                    None => continue,
                };
                let state = terminal.get(&id).copied().unwrap_or(JobState::Queued);
                jobs.insert(
                    id.clone(),
                    JobEntry {
                        spec,
                        state,
                        control: JobControl::new(),
                        progress_rx: None,
                        reply: None,
                        attempt: attempts.get(&id).copied().unwrap_or(0),
                        deadline_ns: None,
                        cancel_requested: false,
                        deadline_hit: false,
                    },
                );
                if state == JobState::Queued {
                    if let Some(tx) = tx_guard.as_ref() {
                        let _ = tx.send(id.clone());
                    }
                    inner.queued.fetch_add(1, Ordering::Relaxed);
                    summary.requeued.push(id);
                }
            }
        }
        ffw_obs::event(
            "serve.recovered",
            &format!(
                "requeued {} job(s), {} terminal, {} torn bytes truncated",
                summary.requeued.len(),
                summary.terminal,
                summary.truncated_bytes
            ),
        );

        let mut threads = Vec::new();
        for i in 0..inner.cfg.workers.max(1) {
            let inner = Arc::clone(&inner);
            threads.push(
                std::thread::Builder::new()
                    .name(format!("ffw-serve-worker-{i}"))
                    // lint:spawn-ok long-lived service workers, not data parallelism; each job inside runs on the shared ffw-par pool
                    .spawn(move || {
                        while let Ok(id) = inner.queue_rx.recv() {
                            inner.queued.fetch_sub(1, Ordering::Relaxed);
                            run_job(&inner, &id);
                        }
                    })
                    .map_err(|e| format!("spawn worker: {e}"))?,
            );
        }
        {
            let inner = Arc::clone(&inner);
            threads.push(
                std::thread::Builder::new()
                    .name("ffw-serve-watchdog".into())
                    // lint:spawn-ok the deadline/progress watchdog must run even while every worker is blocked inside a solve
                    .spawn(move || watchdog(&inner))
                    .map_err(|e| format!("spawn watchdog: {e}"))?,
            );
        }

        Ok(Engine {
            inner,
            threads: Mutex::new(threads),
            recovery: summary,
        })
    }

    /// Handles a submit: validates, admits, journals, queues. Every outcome
    /// is reported as one response line on `reply`.
    pub fn submit(&self, job: &Json, reply: Sender<String>) {
        let id_hint = job
            .get("id")
            .and_then(Json::as_str)
            .unwrap_or("?")
            .to_string();
        let spec = match JobSpec::from_json(job) {
            Ok(s) => s,
            Err(detail) => {
                ffw_obs::counter("serve.jobs.rejected").inc();
                let _ = reply.send(proto::rejected(
                    &id_hint,
                    &RejectReason::InvalidSpec(detail),
                ));
                return;
            }
        };
        let inner = &self.inner;
        {
            let mut jobs = lock(&inner.jobs);
            let verdict = inner.policy.admit(
                &spec,
                inner.queued.load(Ordering::Relaxed),
                inner.draining.load(Ordering::Acquire),
                jobs.contains_key(&spec.id),
            );
            if let Err(reason) = verdict {
                drop(jobs);
                ffw_obs::counter("serve.jobs.rejected").inc();
                let _ = reply.send(proto::rejected(&spec.id, &reason));
                return;
            }
            jobs.insert(
                spec.id.clone(),
                JobEntry {
                    spec: spec.clone(),
                    state: JobState::Queued,
                    control: JobControl::new(),
                    progress_rx: None,
                    reply: Some(reply.clone()),
                    attempt: 0,
                    deadline_ns: None,
                    cancel_requested: false,
                    deadline_hit: false,
                },
            );
            inner.queued.fetch_add(1, Ordering::Relaxed);
        }
        // Durability before acknowledgement: the accepted frame must be on
        // disk before the client hears "accepted".
        if let Err(e) = append_event(
            inner,
            &JobEvent::Accepted {
                id: spec.id.clone(),
                spec: Box::new(spec.clone()),
            },
        ) {
            let mut jobs = lock(&inner.jobs);
            jobs.remove(&spec.id);
            inner.queued.fetch_sub(1, Ordering::Relaxed);
            drop(jobs);
            let _ = reply.send(proto::error(&format!("journal append failed: {e}")));
            return;
        }
        let sent = {
            let tx_guard = lock(&inner.queue_tx);
            match tx_guard.as_ref() {
                Some(tx) => tx.send(spec.id.clone()).is_ok(),
                None => false,
            }
        };
        if !sent {
            // Raced with drain after the admission check; the journal keeps
            // the job, and the next service start will run it.
            let _ = reply.send(proto::rejected(&spec.id, &RejectReason::Draining));
            return;
        }
        ffw_obs::counter("serve.jobs.accepted").inc();
        let _ = reply.send(proto::accepted(&spec.id));
    }

    /// Handles a cancel request.
    pub fn cancel(&self, id: &str, reply: &Sender<String>) {
        let inner = &self.inner;
        let queued_cancel = {
            let mut jobs = lock(&inner.jobs);
            match jobs.get_mut(id) {
                None => {
                    let _ = reply.send(proto::error(&format!("unknown job '{id}'")));
                    return;
                }
                Some(entry) => match entry.state {
                    JobState::Queued => {
                        entry.cancel_requested = true;
                        entry.state = JobState::Cancelled;
                        true
                    }
                    JobState::Running => {
                        entry.cancel_requested = true;
                        entry.control.stop();
                        let _ = reply.send(proto::cancelling(id));
                        false
                    }
                    terminal => {
                        let _ = reply.send(proto::error(&format!(
                            "job '{id}' is already {}",
                            terminal.as_str()
                        )));
                        return;
                    }
                },
            }
        };
        if queued_cancel {
            let _ = append_event(
                inner,
                &JobEvent::Cancelled {
                    id: id.into(),
                    next_iter: 0,
                },
            );
            ffw_obs::counter("serve.jobs.cancelled").inc();
            let _ = reply.send(proto::cancelled(id, 0));
        }
    }

    /// Handles a status request.
    pub fn status(&self, reply: &Sender<String>) {
        let inner = &self.inner;
        let jobs = lock(&inner.jobs);
        let mut listed: Vec<(String, &'static str)> = jobs
            .iter()
            .map(|(id, e)| (id.clone(), e.state.as_str()))
            .collect();
        listed.sort();
        let line = proto::status(
            inner.queued.load(Ordering::Relaxed),
            inner.running.load(Ordering::Relaxed),
            listed,
        );
        drop(jobs);
        let _ = reply.send(line);
    }

    /// Enters draining mode: no new admissions. With `stop_running`, also
    /// asks every in-flight job to stop at its next checkpoint boundary and
    /// prevents queued jobs from starting — they stay journaled as accepted
    /// and run on the next service start (the SIGTERM path). Without it,
    /// queued and running jobs finish normally (the `drain` op).
    pub fn drain(&self, stop_running: bool) {
        let inner = &self.inner;
        inner.draining.store(true, Ordering::Release);
        if stop_running {
            inner.fast_drain.store(true, Ordering::Release);
            let jobs = lock(&inner.jobs);
            for entry in jobs.values() {
                if entry.state == JobState::Running {
                    entry.control.stop();
                }
            }
        }
        // Close the queue: workers exit once the remaining items are done.
        let mut tx_guard = lock(&inner.queue_tx);
        *tx_guard = None;
    }

    /// Waits for every worker (and the watchdog) to finish. Call after
    /// [`Engine::drain`].
    pub fn join(&self) {
        let mut threads = lock(&self.threads);
        // Workers exit when the queue closes; close it if drain was skipped.
        {
            let mut tx_guard = lock(&self.inner.queue_tx);
            *tx_guard = None;
        }
        let workers: Vec<_> = threads.drain(..).collect();
        drop(threads);
        // The watchdog must keep pumping progress until workers are done,
        // so stop it only after the workers joined. Worker panics are
        // surfaced, not swallowed.
        let n = workers.len();
        for (i, handle) in workers.into_iter().enumerate() {
            let is_watchdog = i + 1 == n;
            if is_watchdog {
                self.inner.stop_watchdog.store(true, Ordering::Release);
            }
            if let Err(panic) = handle.join() {
                let msg = panic
                    .downcast_ref::<&str>()
                    .map(|s| s.to_string())
                    .or_else(|| panic.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "opaque panic payload".into());
                ffw_obs::event("serve.thread_panic", &msg);
            }
        }
    }

    /// Drops every per-job reply sender. A session's writer thread exits
    /// when its channel disconnects, and job entries each hold a sender
    /// clone — call this after [`Engine::join`] (all terminal events are
    /// already queued by then) so the writer can drain and finish.
    pub fn release_replies(&self) {
        let mut jobs = lock(&self.inner.jobs);
        for e in jobs.values_mut() {
            e.reply = None;
        }
    }

    /// True once no queued or running work remains.
    pub fn idle(&self) -> bool {
        self.inner.queued.load(Ordering::Relaxed) == 0
            && self.inner.running.load(Ordering::Relaxed) == 0
    }

    /// Plan-cache hit count (for benches and tests).
    pub fn plan_cache_hits(&self) -> u64 {
        self.inner.cache.hits()
    }

    /// Plan-cache miss count.
    pub fn plan_cache_misses(&self) -> u64 {
        self.inner.cache.misses()
    }

    /// The state of a job, if known.
    pub fn job_state(&self, id: &str) -> Option<JobState> {
        lock(&self.inner.jobs).get(id).map(|e| e.state)
    }

    /// The output path a completed job's image was written to.
    pub fn output_path(&self, id: &str) -> PathBuf {
        self.inner.cfg.dir.join(format!("{id}.out"))
    }
}

fn append_event(inner: &Inner, event: &JobEvent) -> Result<(), JournalError> {
    lock(&inner.journal).append(event)
}

fn reply_line(inner: &Inner, id: &str, line: String) {
    let jobs = lock(&inner.jobs);
    if let Some(tx) = jobs.get(id).and_then(|e| e.reply.as_ref()) {
        let _ = tx.send(line);
    }
}

/// The watchdog: pumps per-iteration progress out to clients and enforces
/// wall-clock deadlines by raising the cooperative stop flag. Polling (a
/// few ms) is deliberate — the vendored channel has no `recv_timeout`, and
/// the granularity only bounds how late a deadline fires, not correctness.
fn watchdog(inner: &Inner) {
    loop {
        if inner.stop_watchdog.load(Ordering::Acquire) {
            return;
        }
        let now = ffw_obs::monotonic_ns();
        let mut progress: Vec<(String, Sender<String>, u32, f64)> = Vec::new();
        {
            let mut jobs = lock(&inner.jobs);
            for (id, entry) in jobs.iter_mut() {
                if entry.state != JobState::Running {
                    continue;
                }
                if let (Some(deadline), false) = (entry.deadline_ns, entry.deadline_hit) {
                    if now >= deadline {
                        entry.deadline_hit = true;
                        entry.control.stop();
                        ffw_obs::counter("serve.jobs.deadline_stops").inc();
                    }
                }
                if let (Some(rx), Some(reply)) = (&entry.progress_rx, &entry.reply) {
                    while let Ok(p) = rx.try_recv() {
                        progress.push((id.clone(), reply.clone(), p.completed, p.residual));
                    }
                }
            }
            ffw_obs::gauge("serve.queue_depth").set(inner.queued.load(Ordering::Relaxed) as f64);
            ffw_obs::gauge("serve.running").set(inner.running.load(Ordering::Relaxed) as f64);
        }
        for (id, reply, iter, residual) in progress {
            let _ = reply.send(proto::progress(&id, iter, residual));
        }
        std::thread::sleep(Duration::from_millis(2));
    }
}

/// Classifies a driver error as transient (worth a backoff + resume retry)
/// or terminal. Detected compute corruption is explicitly transient: the
/// ABFT checksum caught a bit flip whose recovery budget ran out *within
/// one attempt*, and a fresh attempt resumes from the last good checkpoint
/// on hardware that will almost certainly not flip the same bit again.
fn should_retry(err: &FaultError) -> bool {
    !matches!(
        err,
        FaultError::KrylovBreakdown { .. } | FaultError::Unrecoverable { .. }
    )
}

/// Stable failure code for a terminal driver error (mirrors the
/// `ffw-reconstruct` exit codes 3 and 4).
fn failure_code(err: &FaultError) -> &'static str {
    match err {
        FaultError::KrylovBreakdown { .. } => "breakdown",
        FaultError::Unrecoverable { .. } => "budget-exhausted",
        // Persistent SDC that survived every serve-level retry: name it so
        // operators can tell a sick node from a generic fault.
        FaultError::ComputeCorruption { .. } => "compute-corruption",
        _ => "fault",
    }
}

fn run_job(inner: &Inner, id: &str) {
    // Claim the job; skip if it was cancelled while queued or the service
    // is fast-draining (it stays journaled as accepted for the next start).
    let (spec, control) = {
        let mut jobs = lock(&inner.jobs);
        let entry = match jobs.get_mut(id) {
            Some(e) => e,
            None => return,
        };
        if entry.state != JobState::Queued {
            return;
        }
        if inner.fast_drain.load(Ordering::Acquire) {
            return;
        }
        let (ptx, prx) = unbounded::<IterProgress>();
        let control = JobControl::new().with_shutdown().with_progress(ptx);
        entry.state = JobState::Running;
        entry.attempt += 1;
        entry.control = control.clone();
        entry.progress_rx = Some(prx);
        entry.deadline_ns = entry
            .spec
            .deadline_ms
            .map(|ms| ffw_obs::monotonic_ns() + ms.saturating_mul(1_000_000));
        (entry.spec.clone(), control)
    };
    inner.running.fetch_add(1, Ordering::Relaxed);
    let attempt0 = {
        let jobs = lock(&inner.jobs);
        jobs.get(id).map(|e| e.attempt).unwrap_or(1)
    };
    let _ = append_event(
        inner,
        &JobEvent::Started {
            id: id.into(),
            attempt: attempt0,
        },
    );

    let mut attempt = attempt0;
    let outcome = loop {
        match execute(inner, &spec, control.clone()) {
            Ok(done) => break Ok(done),
            Err(err) if should_retry(&err) && attempt < attempt0 + inner.cfg.max_retries => {
                attempt += 1;
                ffw_obs::counter("serve.jobs.retries").inc();
                reply_line(inner, id, proto::retrying(id, attempt));
                let backoff = inner
                    .cfg
                    .retry_backoff_ms
                    .saturating_mul(1u64 << (attempt - attempt0 - 1).min(16));
                std::thread::sleep(Duration::from_millis(backoff));
                let _ = append_event(
                    inner,
                    &JobEvent::Started {
                        id: id.into(),
                        attempt,
                    },
                );
                {
                    let mut jobs = lock(&inner.jobs);
                    if let Some(e) = jobs.get_mut(id) {
                        e.attempt = attempt;
                    }
                }
            }
            Err(err) => break Err(err),
        }
    };

    match outcome {
        Ok((result, image)) => {
            if let Some(completed) = result.interrupted {
                finish_interrupted(inner, id, completed);
            } else {
                finish_done(inner, id, &spec, &result, &image);
            }
        }
        Err(err) => {
            let code = failure_code(&err);
            let detail = err.to_string();
            set_state(inner, id, JobState::Failed);
            let _ = append_event(
                inner,
                &JobEvent::Failed {
                    id: id.into(),
                    code: code.into(),
                    detail: detail.clone(),
                },
            );
            ffw_obs::counter("serve.jobs.failed").inc();
            reply_line(inner, id, proto::failed(id, code, &detail));
        }
    }
    inner.running.fetch_sub(1, Ordering::Relaxed);
}

/// An interrupted run stopped at a checkpoint boundary. Why it stopped
/// decides the terminal state: client cancel -> `cancelled`; deadline ->
/// `failed(deadline-exceeded)`; drain/SIGTERM -> *no* terminal frame, the
/// job reverts to queued so the next service start resumes it.
fn finish_interrupted(inner: &Inner, id: &str, completed: u32) {
    let (cancelled, deadline) = {
        let jobs = lock(&inner.jobs);
        jobs.get(id)
            .map(|e| (e.cancel_requested, e.deadline_hit))
            .unwrap_or((false, false))
    };
    if cancelled {
        set_state(inner, id, JobState::Cancelled);
        let _ = append_event(
            inner,
            &JobEvent::Cancelled {
                id: id.into(),
                next_iter: completed,
            },
        );
        ffw_obs::counter("serve.jobs.cancelled").inc();
        reply_line(inner, id, proto::cancelled(id, completed));
    } else if deadline {
        set_state(inner, id, JobState::Failed);
        let detail = format!("deadline exceeded after {completed} outer iteration(s)");
        let _ = append_event(
            inner,
            &JobEvent::Failed {
                id: id.into(),
                code: "deadline-exceeded".into(),
                detail: detail.clone(),
            },
        );
        ffw_obs::counter("serve.jobs.failed").inc();
        reply_line(inner, id, proto::failed(id, "deadline-exceeded", &detail));
    } else {
        // Drain or process shutdown: checkpoint flushed, nothing journaled,
        // the accepted frame re-queues this job on the next start.
        set_state(inner, id, JobState::Queued);
        ffw_obs::event("serve.job_parked", id);
    }
}

fn finish_done(inner: &Inner, id: &str, spec: &JobSpec, result: &FtDbimResult, image: &[f64]) {
    match write_output(inner, id, image) {
        Ok(digest) => {
            set_state(inner, id, JobState::Done);
            let _ = append_event(
                inner,
                &JobEvent::Done {
                    id: id.into(),
                    residual: result.final_residual,
                    digest,
                },
            );
            ffw_obs::counter("serve.jobs.completed").inc();
            // The job is complete and durably recorded; its checkpoint is
            // no longer needed.
            let _ = fs::remove_file(inner.cfg.dir.join(format!("job-{id}.ckpt")));
            let out = inner.cfg.dir.join(format!("{id}.out"));
            reply_line(
                inner,
                id,
                proto::done(
                    id,
                    result.final_residual,
                    digest,
                    &out.display().to_string(),
                ),
            );
            let _ = spec;
        }
        Err(e) => {
            set_state(inner, id, JobState::Failed);
            let detail = format!("writing output: {e}");
            let _ = append_event(
                inner,
                &JobEvent::Failed {
                    id: id.into(),
                    code: "io".into(),
                    detail: detail.clone(),
                },
            );
            reply_line(inner, id, proto::failed(id, "io", &detail));
        }
    }
}

fn set_state(inner: &Inner, id: &str, state: JobState) {
    let mut jobs = lock(&inner.jobs);
    if let Some(e) = jobs.get_mut(id) {
        e.state = state;
        e.progress_rx = None;
    }
}

/// Maps a serial-driver failure into the engine's fault taxonomy so retry
/// classification and failure codes behave identically across drivers: a
/// backend rejection is a Krylov breakdown (terminal, like the distributed
/// driver's), and detected compute corruption keeps its own `FaultError`.
fn dbim_fault(e: DbimError) -> FaultError {
    match e {
        DbimError::ComputeCorruption(fe) => fe,
        DbimError::Backend(b) => FaultError::KrylovBreakdown {
            rank: 0,
            iterations: 0,
            rel_residual: f64::INFINITY,
            detail: b.to_string(),
        },
    }
}

/// Like [`dbim_fault`] for the multi-frequency driver. A hop-checkpoint
/// failure is classified unrecoverable: a retry would replay against the
/// same on-disk state and fail identically.
fn serial_fault(e: HopError) -> FaultError {
    match e {
        HopError::Dbim(d) => dbim_fault(d),
        HopError::Checkpoint(c) => FaultError::Unrecoverable {
            detail: format!("hop checkpoint: {c}"),
        },
    }
}

/// Runs a frequency-hopping or non-default-regularizer job on the serial
/// driver (admission pins `groups == subtree == 1` for these, so no
/// distributed launch exists to route them through). Hop jobs checkpoint at
/// hop-stage boundaries under the same `job-<id>.ckpt` path the distributed
/// driver uses, so drain/SIGTERM parking and journal-replay recovery resume
/// them exactly like distributed jobs; single-frequency regularizer jobs
/// are short serial solves that simply recompute on a restart.
fn execute_serial(
    inner: &Inner,
    spec: &JobSpec,
    control: &JobControl,
) -> Result<(FtDbimResult, Vec<f64>), FaultError> {
    let scene = spec.scene();
    let dbim_cfg = DbimConfig {
        iterations: spec.iterations,
        backend: spec.backend,
        regularizer: spec.regularizer,
        ..Default::default()
    };
    if let Some(schedule) = &spec.hops {
        // One pipeline per frequency stage: the plan cache holds single
        // `Reconstruction`s keyed by geometry, so hop jobs build their
        // stages fresh on the shared pool each attempt.
        let pipeline = HopPipeline::with_pool(&scene, schedule, Arc::clone(&inner.pool));
        let phantom = spec.build_phantom(pipeline.final_stage().domain().side());
        let mut measured = pipeline.synthesize(phantom.as_ref());
        if let Some(db) = spec.noise_db {
            HopPipeline::add_noise(&mut measured, db, 1);
        }
        let ckpt = inner.cfg.dir.join(format!("job-{}.ckpt", spec.id));
        let resume = ckpt.exists();
        let fingerprint = pipeline.fingerprint(&scene, spec.iterations);
        let stop = || control.stop_requested();
        let result = pipeline
            .run(
                &measured,
                spec.iterations,
                &dbim_cfg,
                Some(ckpt),
                resume,
                fingerprint,
                Some(&stop),
            )
            .map_err(serial_fault)?;
        // Best-effort stage progress (resumed stages were reported by the
        // attempt that computed them; `completed` counts across attempts).
        for (i, st) in result.stages.iter().enumerate() {
            control.progress((result.resumed + i + 1) as u32, st.final_residual);
        }
        let residual_history: Vec<f64> = result.stages.iter().map(|s| s.final_residual).collect();
        let image = pipeline.final_stage().image(&result.object);
        let ft = FtDbimResult {
            final_residual: residual_history.last().copied().unwrap_or(f64::NAN),
            residual_history,
            object: result.object,
            lost_txs: Vec::new(),
            restarts: 0,
            interrupted: result.interrupted,
        };
        return Ok((ft, image));
    }
    let recon = inner.cache.get_or_build(spec.geometry_fingerprint(), || {
        Arc::new(Reconstruction::with_pool(
            &spec.scene(),
            Arc::clone(&inner.pool),
        ))
    });
    let phantom = spec.build_phantom(recon.domain().side());
    let mut measured = recon.synthesize(phantom.as_ref());
    if let Some(db) = spec.noise_db {
        add_noise(&mut measured, db, 1);
    }
    let result = recon
        .run_dbim_with(&measured, &dbim_cfg)
        .map_err(dbim_fault)?;
    // `history[i]` records the residual at the *start* of iteration `i`;
    // shift by one and close with the final residual so each progress/
    // history entry reports the residual *after* a completed iteration,
    // matching the distributed driver's convention.
    let mut residual_history: Vec<f64> = result
        .history
        .iter()
        .skip(1)
        .map(|r| r.rel_residual)
        .collect();
    residual_history.push(result.final_residual);
    for (i, r) in residual_history.iter().enumerate() {
        control.progress((i + 1) as u32, *r);
    }
    let image = recon.image(&result.object);
    let ft = FtDbimResult {
        final_residual: result.final_residual,
        residual_history,
        object: result.object,
        lost_txs: Vec::new(),
        restarts: 0,
        interrupted: None,
    };
    Ok((ft, image))
}

/// Runs one attempt of a job. Setup is deterministic in the spec, so a
/// resumed attempt reproduces the exact run the checkpoint fingerprints.
fn execute(
    inner: &Inner,
    spec: &JobSpec,
    control: JobControl,
) -> Result<(FtDbimResult, Vec<f64>), FaultError> {
    if spec.hops.is_some() || spec.regularizer != Regularizer::default() {
        return execute_serial(inner, spec, &control);
    }
    let recon = inner.cache.get_or_build(spec.geometry_fingerprint(), || {
        Arc::new(Reconstruction::with_pool(
            &spec.scene(),
            Arc::clone(&inner.pool),
        ))
    });
    let phantom = spec.build_phantom(recon.domain().side());
    let mut measured = recon.synthesize(phantom.as_ref());
    if let Some(db) = spec.noise_db {
        add_noise(&mut measured, db, 1);
    }
    let ckpt = inner.cfg.dir.join(format!("job-{}.ckpt", spec.id));
    let resume = ckpt.exists();
    let ft = FtConfig {
        dbim: DbimConfig {
            iterations: spec.iterations,
            backend: spec.backend,
            ..Default::default()
        },
        groups: spec.groups,
        subtree_ranks: spec.subtree,
        checkpoint: Some(ckpt),
        resume,
        max_restarts: spec.max_restarts,
        min_groups: spec.min_groups,
        control: Some(control),
        // Injected faults apply to the first fresh launch only; a resumed
        // attempt must run clean or it could never make progress.
        fault_plan: match (resume, spec.chaos_seed, spec.groups * spec.subtree) {
            // Seeded plans need >= 2 ranks; a single-rank job ignores the
            // seed rather than panicking.
            (false, Some(s), ranks) if ranks >= 2 => Some(FaultPlan::seeded(s, ranks)),
            _ => None,
        },
        deadlock_timeout: None,
    };
    let result = run_dbim_ft(&recon.setup, Arc::clone(&recon.plan), &measured, &ft)?;
    let image = recon.image(&result.object);
    Ok((result, image))
}

/// Writes the reconstructed image as little-endian `f64`s, atomically
/// (tmp + rename + dir fsync, like the checkpoint writer), and returns the
/// FNV-1a 64 digest of the bytes — the value journaled and reported, and
/// the value the chaos tests compare for bit-identity.
fn write_output(inner: &Inner, id: &str, image: &[f64]) -> Result<u64, String> {
    let path = inner.cfg.dir.join(format!("{id}.out"));
    let mut bytes = Vec::with_capacity(image.len() * 8);
    for v in image {
        bytes.extend_from_slice(&v.to_le_bytes());
    }
    let digest = fnv1a64(&bytes);
    let tmp = path.with_extension("out.tmp");
    let io = |what: &str, e: std::io::Error| format!("{what} {}: {e}", tmp.display());
    let mut f = fs::File::create(&tmp).map_err(|e| io("create", e))?;
    f.write_all(&bytes).map_err(|e| io("write", e))?;
    f.sync_all().map_err(|e| io("sync", e))?;
    drop(f);
    fs::rename(&tmp, &path).map_err(|e| format!("rename to {}: {e}", path.display()))?;
    let dir = fs::File::open(&inner.cfg.dir)
        .map_err(|e| format!("open dir {}: {e}", inner.cfg.dir.display()))?;
    dir.sync_all()
        .map_err(|e| format!("sync dir {}: {e}", inner.cfg.dir.display()))?;
    Ok(digest)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retry_classification_matches_error_taxonomy() {
        assert!(should_retry(&FaultError::SendLost {
            rank: 0,
            dst: 1,
            tag: 7,
            attempts: 3
        }));
        assert!(should_retry(&FaultError::PeerDead {
            rank: 0,
            peer: 1,
            detail: String::new(),
        }));
        assert!(!should_retry(&FaultError::KrylovBreakdown {
            rank: 0,
            iterations: 5,
            rel_residual: 1.0,
            detail: "x".into(),
        }));
        assert!(!should_retry(&FaultError::Unrecoverable {
            detail: "x".into()
        }));
        assert_eq!(
            failure_code(&FaultError::Unrecoverable { detail: "x".into() }),
            "budget-exhausted"
        );
    }

    /// Detected silent data corruption is transient by classification — a
    /// retry resumes on (almost certainly) healthy hardware — and carries
    /// its own failure code if it somehow persists through every retry.
    #[test]
    fn compute_corruption_is_retryable_with_its_own_terminal_code() {
        let err = FaultError::ComputeCorruption {
            rank: 2,
            stage: "dist.apply_block".into(),
            panel: 7,
            attempts: 1,
        };
        assert!(should_retry(&err));
        assert_eq!(failure_code(&err), "compute-corruption");
    }
}
