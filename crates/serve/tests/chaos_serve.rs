//! Kill-and-restart chaos test for the service binary: SIGKILL the daemon
//! at a seeded point (after the first progress event of a 3-job mixed
//! queue), restart it, and require every accepted job to complete with
//! outputs bit-identical to an uninterrupted reference run. This is the
//! acceptance test for the crash-safety contract: the fsynced journal plus
//! outer-iteration checkpoints mean a SIGKILL at any byte boundary loses
//! no accepted work.

use std::io::{BufRead, BufReader, Write};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};

const THREE_JOBS: [&str; 3] = [
    r#"{"op":"submit","job":{"id":"j1","size":32,"tx":2,"rx":4,"iterations":3}}"#,
    r#"{"op":"submit","job":{"id":"j2","size":32,"tx":2,"rx":4,"iterations":2,"phantom":"annulus"}}"#,
    r#"{"op":"submit","job":{"id":"j3","size":32,"tx":4,"rx":8,"iterations":2,"contrast":0.08}}"#,
];

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ffw-serve-chaos-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn serve_cmd(dir: &Path, extra: &[&str]) -> Command {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_ffw-serve"));
    cmd.args(["--dir", dir.to_str().expect("utf8 path"), "--workers", "1"])
        .args(extra)
        // Pin the pool so the interrupted and reference runs schedule
        // identically (thread-count invariance is separately gated, but the
        // chaos assertion is strict bit-identity).
        .env("FFW_THREADS", "2")
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped());
    cmd
}

/// Runs the service in `--once` mode over the given request lines and
/// returns (stdout lines, stderr).
fn run_once(dir: &Path, input: &[&str]) -> (Vec<String>, String) {
    let mut child = serve_cmd(dir, &["--once"])
        .spawn()
        .expect("spawn ffw-serve");
    {
        let mut stdin = child.stdin.take().expect("stdin");
        for line in input {
            writeln!(stdin, "{line}").expect("write request");
        }
        // Dropping stdin closes it: --once exits once all jobs settle.
    }
    let out = child.wait_with_output().expect("wait ffw-serve");
    let stderr = String::from_utf8_lossy(&out.stderr).into_owned();
    assert!(
        out.status.success(),
        "ffw-serve --once failed: {:?}\nstderr: {stderr}",
        out.status
    );
    let lines = String::from_utf8_lossy(&out.stdout)
        .lines()
        .map(str::to_owned)
        .collect();
    (lines, stderr)
}

fn outputs(dir: &Path) -> Vec<(String, Vec<u8>)> {
    ["j1", "j2", "j3"]
        .iter()
        .map(|id| {
            let bytes = std::fs::read(dir.join(format!("{id}.out")))
                .unwrap_or_else(|e| panic!("output for {id}: {e}"));
            (id.to_string(), bytes)
        })
        .collect()
}

/// SIGKILLs `child` once its stdout has shown all three accepted events and
/// the first progress event — i.e. all three jobs are durably journaled and
/// the first is mid-solve with at least one checkpointed iteration landing.
fn kill_at_first_progress(child: &mut Child) {
    let stdout = child.stdout.take().expect("stdout");
    let mut accepted = 0;
    let mut saw_progress = false;
    for line in BufReader::new(stdout).lines() {
        let line = line.expect("daemon stdout line");
        if line.contains(r#""ev":"accepted""#) {
            accepted += 1;
        }
        if line.contains(r#""ev":"progress""#) {
            saw_progress = true;
        }
        if accepted == 3 && saw_progress {
            child.kill().expect("SIGKILL the daemon");
            return;
        }
        assert!(
            !line.contains(r#""ev":"rejected""#),
            "no job may be rejected in the chaos queue: {line}"
        );
    }
    panic!("daemon stdout ended before 3 accepts + 1 progress (accepted {accepted})");
}

#[test]
fn sigkill_and_restart_completes_all_jobs_bit_identically() {
    let ref_dir = tmp_dir("ref");
    let chaos_dir = tmp_dir("kill");

    // Reference: the same 3-job queue, uninterrupted.
    let (ref_lines, _) = run_once(&ref_dir, &THREE_JOBS);
    let done = ref_lines
        .iter()
        .filter(|l| l.contains(r#""ev":"done""#))
        .count();
    assert_eq!(
        done, 3,
        "reference run must complete all jobs: {ref_lines:?}"
    );
    let reference = outputs(&ref_dir);

    // Chaos: same queue, SIGKILL at the seeded point.
    let mut child = serve_cmd(&chaos_dir, &[]).spawn().expect("spawn daemon");
    {
        let mut stdin = child.stdin.take().expect("stdin");
        for line in THREE_JOBS {
            writeln!(stdin, "{line}").expect("write request");
        }
        // Keep stdin open implicitly dropped here; the daemon (not --once)
        // keeps serving until killed.
    }
    kill_at_first_progress(&mut child);
    let _ = child.wait();

    // Restart: recovery must re-queue every journaled job and finish them.
    let (_, stderr) = run_once(&chaos_dir, &[]);
    assert!(
        stderr.contains("recovered:"),
        "restart must report what it recovered: {stderr}"
    );
    let recovered = outputs(&chaos_dir);
    for ((id, want), (_, got)) in reference.iter().zip(&recovered) {
        assert_eq!(
            want, got,
            "{id}: output after SIGKILL + restart must be bit-identical to \
             the uninterrupted run"
        );
    }

    // The journal must still replay cleanly (all jobs terminal).
    let (_, stderr) = run_once(&chaos_dir, &[]);
    assert!(
        !stderr.contains("re-queued"),
        "third start must find nothing to re-run: {stderr}"
    );
    let _ = std::fs::remove_dir_all(&ref_dir);
    let _ = std::fs::remove_dir_all(&chaos_dir);
}

/// The daemon front end also honours SIGTERM: in-flight work parks with a
/// checkpoint, the process exits with the documented code 5, and a restart
/// finishes the queue.
#[test]
fn sigterm_drains_and_restart_finishes() {
    let dir = tmp_dir("sigterm");
    let mut child = serve_cmd(&dir, &[]).spawn().expect("spawn daemon");
    {
        let mut stdin = child.stdin.take().expect("stdin");
        writeln!(stdin, "{}", THREE_JOBS[0]).expect("write request");
    }
    // Wait until the job is running (first progress line), then SIGTERM.
    let stdout = child.stdout.take().expect("stdout");
    let mut reader = BufReader::new(stdout);
    let mut line = String::new();
    loop {
        line.clear();
        assert!(
            reader.read_line(&mut line).expect("read daemon stdout") > 0,
            "daemon exited before first progress"
        );
        if line.contains(r#""ev":"progress""#) {
            break;
        }
    }
    let term = Command::new("kill")
        .args(["-TERM", &child.id().to_string()])
        .status()
        .expect("send SIGTERM");
    assert!(term.success());
    let out = child.wait_with_output().expect("wait daemon");
    assert_eq!(
        out.status.code(),
        Some(5),
        "SIGTERM must exit with the documented interrupted code\nstderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(
        dir.join("job-j1.ckpt").exists(),
        "drained job must leave its checkpoint"
    );

    // Restart finishes the parked job.
    let (_, stderr) = run_once(&dir, &[]);
    assert!(stderr.contains("recovered:"), "{stderr}");
    assert!(
        dir.join("j1.out").exists(),
        "parked job must complete on restart"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
