//! In-process engine integration tests: typed admission end-to-end, plan
//! deduplication across same-geometry jobs, cancellation, and
//! journal-driven restart recovery with bit-identical outputs.

use crossbeam_channel::{unbounded, Receiver};
use ffw_serve::json::Json;
use ffw_serve::{Engine, JobState, ServeConfig};
use std::path::PathBuf;
use std::time::Duration;

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ffw-serve-engine-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn cfg(dir: PathBuf) -> ServeConfig {
    ServeConfig {
        workers: 1,
        queue_capacity: 2,
        ..ServeConfig::new(dir)
    }
}

fn job(id: &str, extra: &str) -> Json {
    let sep = if extra.is_empty() { "" } else { "," };
    Json::parse(&format!(
        r#"{{"id":"{id}","size":32,"tx":2,"rx":4,"iterations":1{sep}{extra}}}"#
    ))
    .expect("job json")
}

/// Submits and returns the first response line (accepted/rejected). The
/// admission reply is synchronous, so a plain blocking recv is safe.
fn submit(engine: &Engine, j: &Json) -> String {
    let (tx, rx) = unbounded();
    engine.submit(j, tx);
    rx.recv().expect("admission reply")
}

/// Like [`submit`] but keeps the reply channel, for tests that follow the
/// job's progress/terminal events.
fn submit_watched(engine: &Engine, j: &Json) -> (String, Receiver<String>) {
    let (tx, rx) = unbounded();
    engine.submit(j, tx);
    let first = rx.recv().expect("admission reply");
    (first, rx)
}

fn wait_terminal(engine: &Engine, id: &str) -> JobState {
    for _ in 0..6000 {
        match engine.job_state(id) {
            Some(s @ (JobState::Done | JobState::Failed | JobState::Cancelled)) => return s,
            _ => std::thread::sleep(Duration::from_millis(10)),
        }
    }
    panic!("job '{id}' never reached a terminal state");
}

fn wait_running(engine: &Engine, id: &str) {
    for _ in 0..6000 {
        if engine.job_state(id) == Some(JobState::Running) {
            return;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    panic!("job '{id}' never started running");
}

/// Blocks until a line matching `needle` arrives on the reply channel.
fn wait_line(rx: &Receiver<String>, needle: &str) -> String {
    loop {
        let line = rx.recv().expect("event line");
        if line.contains(needle) {
            return line;
        }
    }
}

#[test]
fn admission_rejections_are_typed_end_to_end() {
    let dir = tmp_dir("admission");
    let engine = Engine::open(cfg(dir.clone())).expect("open");

    // Invalid spec.
    let bad = Json::parse(r#"{"id":"bad size","size":33}"#).expect("json");
    let line = submit(&engine, &bad);
    assert!(line.contains(r#""ev":"rejected""#), "{line}");
    assert!(line.contains(r#""reason":"invalid-spec""#), "{line}");

    // Budget-infeasible: a per-job FLOP cap far below the estimate.
    let line = submit(&engine, &job("over-budget", r#""max_flops":1.0"#));
    assert!(line.contains(r#""reason":"budget-infeasible""#), "{line}");

    // A long job occupies the single worker; two more fill the queue; the
    // fourth is shed with the typed queue-full rejection.
    let line = submit(&engine, &job("long", r#""iterations":30"#));
    assert!(line.contains(r#""ev":"accepted""#), "{line}");
    wait_running(&engine, "long");
    assert!(submit(&engine, &job("q1", "")).contains(r#""ev":"accepted""#));
    assert!(submit(&engine, &job("q2", "")).contains(r#""ev":"accepted""#));
    let line = submit(&engine, &job("shed", ""));
    assert!(line.contains(r#""reason":"queue-full""#), "{line}");

    // Duplicate id wins over every other reason.
    let line = submit(&engine, &job("q1", ""));
    assert!(line.contains(r#""reason":"duplicate-id""#), "{line}");

    // Cancel the running job and the queue; drain; a fresh submit is
    // rejected as draining.
    let (tx, rx) = unbounded();
    engine.cancel("long", &tx);
    let line = rx.recv().expect("cancel ack");
    assert!(line.contains(r#""ev":"cancelling""#), "{line}");
    engine.cancel("q1", &tx);
    assert!(rx.recv().expect("ack").contains(r#""ev":"cancelled""#));
    engine.cancel("q2", &tx);
    assert!(rx.recv().expect("ack").contains(r#""ev":"cancelled""#));
    engine.drain(false);
    let line = submit(&engine, &job("late", ""));
    assert!(line.contains(r#""reason":"draining""#), "{line}");
    assert_eq!(wait_terminal(&engine, "long"), JobState::Cancelled);
    engine.join();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn same_geometry_jobs_share_one_cached_plan() {
    let dir = tmp_dir("cache");
    let engine = Engine::open(cfg(dir.clone())).expect("open");
    // Three jobs: two share a geometry (different phantom/id — those fields
    // are outside the fingerprint), one differs (other size).
    assert!(submit(&engine, &job("a1", "")).contains("accepted"));
    assert!(submit(&engine, &job("a2", r#""phantom":"annulus""#)).contains("accepted"));
    assert!(submit(
        &engine,
        &Json::parse(r#"{"id":"b1","size":64,"tx":2,"rx":4,"iterations":1}"#).expect("json")
    )
    .contains("accepted"));
    assert_eq!(wait_terminal(&engine, "a1"), JobState::Done);
    assert_eq!(wait_terminal(&engine, "a2"), JobState::Done);
    assert_eq!(wait_terminal(&engine, "b1"), JobState::Done);
    assert_eq!(engine.plan_cache_misses(), 2, "two distinct geometries");
    assert!(
        engine.plan_cache_hits() >= 1,
        "the second same-geometry job must hit the cache (hits {})",
        engine.plan_cache_hits()
    );
    // Outputs exist and differ (different phantoms/geometries).
    let a1 = std::fs::read(engine.output_path("a1")).expect("a1 output");
    let a2 = std::fs::read(engine.output_path("a2")).expect("a2 output");
    assert_eq!(a1.len(), a2.len());
    assert_ne!(a1, a2, "different phantoms must reconstruct differently");
    engine.drain(false);
    engine.join();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn restart_recovers_unfinished_jobs_and_reproduces_outputs_bit_identically() {
    let ref_dir = tmp_dir("restart-ref");
    let chaos_dir = tmp_dir("restart-chaos");
    // Multi-iteration jobs so a drain has an outer-iteration boundary to
    // stop at *before* completion.
    let spec1 = || job("r1", r#""iterations":4"#);
    let spec2 = || job("r2", r#""iterations":4,"phantom":"annulus""#);

    // Reference: both jobs run to completion uninterrupted.
    let reference = Engine::open(cfg(ref_dir.clone())).expect("open ref");
    assert!(submit(&reference, &spec1()).contains("accepted"));
    assert!(submit(&reference, &spec2()).contains("accepted"));
    assert_eq!(wait_terminal(&reference, "r1"), JobState::Done);
    assert_eq!(wait_terminal(&reference, "r2"), JobState::Done);
    reference.drain(false);
    reference.join();
    let ref1 = std::fs::read(reference.output_path("r1")).expect("ref r1");
    let ref2 = std::fs::read(reference.output_path("r2")).expect("ref r2");

    // First service instance: accept both jobs, wait until r1 has finished
    // at least one outer iteration (first progress event), then fast-drain
    // — the SIGTERM path. r1 parks mid-run with a checkpoint; r2 (single
    // worker) never starts. Neither may reach a terminal state.
    {
        let engine = Engine::open(cfg(chaos_dir.clone())).expect("open chaos");
        let (ack, rx) = submit_watched(&engine, &spec1());
        assert!(ack.contains("accepted"));
        assert!(submit(&engine, &spec2()).contains("accepted"));
        wait_line(&rx, r#""ev":"progress""#);
        engine.drain(true);
        engine.join();
        for id in ["r1", "r2"] {
            let s = engine.job_state(id).expect("known job");
            assert!(
                matches!(s, JobState::Queued | JobState::Running),
                "{id} must stay non-terminal across a drain, got {s:?}"
            );
        }
        assert!(
            chaos_dir.join("job-r1.ckpt").exists(),
            "the drained running job must leave its checkpoint"
        );
    }

    // Second instance: recovery re-queues both (acceptance order), resumes
    // r1 from its checkpoint, runs r2 fresh.
    let engine = Engine::open(cfg(chaos_dir.clone())).expect("reopen");
    assert_eq!(
        engine.recovery.requeued,
        vec!["r1".to_string(), "r2".to_string()]
    );
    assert_eq!(wait_terminal(&engine, "r1"), JobState::Done);
    assert_eq!(wait_terminal(&engine, "r2"), JobState::Done);
    engine.drain(false);
    engine.join();

    let got1 = std::fs::read(engine.output_path("r1")).expect("r1 output");
    let got2 = std::fs::read(engine.output_path("r2")).expect("r2 output");
    assert_eq!(
        ref1, got1,
        "r1 must be bit-identical to the uninterrupted run"
    );
    assert_eq!(
        ref2, got2,
        "r2 must be bit-identical to the uninterrupted run"
    );

    // A third open finds only terminal jobs: nothing to re-run.
    let idle = Engine::open(cfg(chaos_dir.clone())).expect("third open");
    assert!(idle.recovery.requeued.is_empty());
    assert_eq!(idle.recovery.terminal, 2);
    idle.drain(false);
    idle.join();
    let _ = std::fs::remove_dir_all(&ref_dir);
    let _ = std::fs::remove_dir_all(&chaos_dir);
}

/// A frequency-hopping job with the hybrid wGCV-LSQR regularizer runs on
/// the serial driver end-to-end: accepted, per-stage progress streamed,
/// done with an output file — and a rerun of the same spec reproduces the
/// output bit-identically (the serial path is as deterministic as the
/// distributed one).
#[test]
fn hop_regularizer_jobs_run_serially_to_done() {
    let dir = tmp_dir("hop");
    let engine = Engine::open(cfg(dir.clone())).expect("open");
    let spec = |id: &str| {
        job(
            id,
            r#""iterations":4,"hops":"2.0,1.0","regularizer":"wgcv-lsqr:4:0.8","noise_db":40"#,
        )
    };
    let (ack, rx) = submit_watched(&engine, &spec("h1"));
    assert!(ack.contains("accepted"), "{ack}");
    assert_eq!(wait_terminal(&engine, "h1"), JobState::Done);
    let line = wait_line(&rx, r#""ev":"done""#);
    assert!(line.contains(r#""residual""#), "{line}");
    assert!(submit(&engine, &spec("h2")).contains("accepted"));
    assert_eq!(wait_terminal(&engine, "h2"), JobState::Done);
    let h1 = std::fs::read(engine.output_path("h1")).expect("h1 output");
    let h2 = std::fs::read(engine.output_path("h2")).expect("h2 output");
    assert_eq!(h1, h2, "same hop spec must reconstruct bit-identically");
    assert!(
        !dir.join("job-h1.ckpt").exists(),
        "completed hop jobs must clean up their stage checkpoint"
    );
    // A hop job that violates the serial-driver constraint is rejected at
    // admission with the spec detail, not failed mid-run.
    let line = submit(
        &engine,
        &job("h3", r#""hops":"2.0,1.0","iterations":4,"groups":2"#),
    );
    assert!(line.contains(r#""reason":"invalid-spec""#), "{line}");
    assert!(line.contains("serial"), "{line}");
    engine.drain(false);
    engine.join();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn deadline_exceeded_is_a_typed_failure() {
    let dir = tmp_dir("deadline");
    let engine = Engine::open(cfg(dir.clone())).expect("open");
    let (ack, rx) = submit_watched(
        &engine,
        &job("slow", r#""iterations":50,"deadline_ms":200"#),
    );
    assert!(ack.contains("accepted"));
    assert_eq!(wait_terminal(&engine, "slow"), JobState::Failed);
    let line = wait_line(&rx, r#""ev":"failed""#);
    assert!(line.contains(r#""code":"deadline-exceeded""#), "{line}");
    engine.drain(false);
    engine.join();
    let _ = std::fs::remove_dir_all(&dir);
}
