//! Crash-safety property tests for the job journal: a process killed at
//! *any* byte boundary — or a disk corrupting any single byte — must leave
//! a file that recovers to a known-good prefix of the accepted history (or
//! a typed error), never a panic and never garbage events.

use ffw_serve::journal::{JobEvent, Journal, JournalError};
use ffw_serve::json::Json;
use ffw_serve::spec::JobSpec;
use std::fs;
use std::path::PathBuf;

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("ffw-serve-torn-test");
    fs::create_dir_all(&dir).expect("mkdir");
    dir.join(format!("{name}-{}.journal", std::process::id()))
}

fn spec(id: &str) -> JobSpec {
    JobSpec::from_json(
        &Json::parse(&format!(
            r#"{{"id":"{id}","size":32,"tx":4,"rx":8,"iterations":2}}"#
        ))
        .expect("json"),
    )
    .expect("spec")
}

fn history() -> Vec<JobEvent> {
    vec![
        JobEvent::Accepted {
            id: "j1".into(),
            spec: Box::new(spec("j1")),
        },
        JobEvent::Started {
            id: "j1".into(),
            attempt: 1,
        },
        JobEvent::Accepted {
            id: "j2".into(),
            spec: Box::new(spec("j2")),
        },
        JobEvent::Done {
            id: "j1".into(),
            residual: 0.01,
            digest: 0x1234_5678_9ABC_DEF0,
        },
        JobEvent::Cancelled {
            id: "j2".into(),
            next_iter: 0,
        },
    ]
}

/// Writes the full history and returns the journal's bytes.
fn written_journal(path: &PathBuf) -> Vec<u8> {
    fs::remove_file(path).ok();
    let (mut j, rec) = Journal::open(path).expect("fresh open");
    assert!(rec.events.is_empty());
    for e in history() {
        j.append(&e).expect("append");
    }
    drop(j);
    fs::read(path).expect("read journal bytes")
}

fn is_prefix(events: &[JobEvent], of: &[JobEvent]) -> bool {
    events.len() <= of.len() && events.iter().zip(of).all(|(a, b)| a == b)
}

/// Kill-at-every-byte: truncate the journal to each possible length. Every
/// single one must recover to a prefix of the original history, the
/// truncated-byte accounting must balance, and a *second* open of the
/// repaired file must be clean (the recovery truncation really happened on
/// disk, not just in memory).
#[test]
fn truncation_at_every_byte_offset_recovers_a_clean_prefix() {
    let path = tmp("every-byte");
    let full = written_journal(&path);
    let all = history();
    let mut prefix_lens = std::collections::BTreeSet::new();
    for cut in 0..=full.len() {
        fs::write(&path, &full[..cut]).expect("truncate");
        let (mut j, rec) = Journal::open(&path).expect("recovery must never fail on a torn tail");
        assert!(
            is_prefix(&rec.events, &all),
            "cut at {cut}: recovered events are not a prefix (got {} events)",
            rec.events.len()
        );
        prefix_lens.insert(rec.events.len());
        if cut >= 8 {
            // Accounting: everything past the recovered frames was
            // truncated. (A cut inside the 8-byte header instead recreates
            // a fresh header, so the identity only holds from 8 on.)
            let kept = fs::metadata(&path).expect("metadata").len();
            assert_eq!(
                kept + rec.truncated_bytes,
                cut as u64,
                "cut at {cut}: kept {kept} + truncated {} != {cut}",
                rec.truncated_bytes
            );
        } else {
            assert_eq!(rec.truncated_bytes, cut as u64);
        }
        // The repaired file must append and reopen cleanly.
        j.append(&JobEvent::Started {
            id: "j9".into(),
            attempt: 1,
        })
        .expect("append after recovery");
        drop(j);
        let (_, rec2) = Journal::open(&path).expect("reopen repaired file");
        assert_eq!(
            rec2.truncated_bytes, 0,
            "cut at {cut}: repair left a bad tail"
        );
        assert_eq!(rec2.events.len(), rec.events.len() + 1);
    }
    // The sweep must actually exercise every intermediate prefix length,
    // not just the empty and full recoveries.
    assert_eq!(
        prefix_lens,
        (0..=all.len()).collect(),
        "some prefix length was never produced"
    );
    fs::remove_file(&path).ok();
}

/// Flip every byte of the journal, one at a time. Recovery must yield a
/// prefix of the true history or the typed foreign-header error — never a
/// panic, and never an event that was not written.
#[test]
fn single_byte_corruption_never_panics_and_never_fabricates_events() {
    let path = tmp("bit-flip");
    let full = written_journal(&path);
    let all = history();
    for pos in 0..full.len() {
        let mut damaged = full.clone();
        damaged[pos] ^= 0xFF;
        fs::write(&path, &damaged).expect("write damaged");
        match Journal::open(&path) {
            Ok((_, rec)) => {
                assert!(
                    is_prefix(&rec.events, &all),
                    "flip at {pos}: recovered a non-prefix ({} events)",
                    rec.events.len()
                );
                if pos >= 8 {
                    // A flip inside frame data must cost at least the frame
                    // it landed in.
                    assert!(
                        rec.events.len() < all.len(),
                        "flip at {pos} inside a frame went undetected"
                    );
                }
            }
            Err(JournalError::BadHeader) => {
                assert!(pos < 8, "flip at {pos} misreported as a foreign header");
                // The damaged file must not have been touched.
                assert_eq!(fs::read(&path).expect("read"), damaged);
            }
            Err(e) => panic!("flip at {pos}: unexpected error {e}"),
        }
    }
    fs::remove_file(&path).ok();
}

/// Deleting the file entirely (crash before creation fsync reached the
/// directory) is a fresh start, not an error.
#[test]
fn missing_file_is_a_fresh_journal() {
    let path = tmp("missing");
    fs::remove_file(&path).ok();
    let (_, rec) = Journal::open(&path).expect("fresh open");
    assert!(rec.events.is_empty());
    assert_eq!(rec.truncated_bytes, 0);
    fs::remove_file(&path).ok();
}
