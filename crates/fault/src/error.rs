//! Typed fault errors shared by the runtime (`ffw-mpi`) and the
//! fault-tolerant distributed solver (`ffw-dist`).

use crate::checkpoint::CheckpointError;
use std::fmt;

/// A fault surfaced by the distributed stack as a value instead of a panic.
///
/// Every variant names the rank that observed the fault so a failed run can
/// always be attributed ("rank 3 died at op 17", "rank 1 lost its send to
/// rank 2"), which is what the chaos harness asserts on.
#[derive(Clone, Debug, PartialEq)]
pub enum FaultError {
    /// A seeded [`crate::FaultPlan`] crashed this rank at its `op`-th
    /// runtime operation.
    InjectedCrash {
        /// Rank that was crashed.
        rank: usize,
        /// 1-based index of the MPI operation at which the crash fired.
        op: u64,
    },
    /// A blocking receive (or barrier) can never complete because the peer
    /// rank has died (finished or panicked without sending).
    PeerDead {
        /// Rank whose wait was abandoned.
        rank: usize,
        /// The dead peer the wait depended on.
        peer: usize,
        /// Human-readable wait-for-graph report from the watchdog.
        detail: String,
    },
    /// A send was dropped by fault injection and the retry budget ran out;
    /// the destination is treated as dead.
    SendLost {
        /// Rank that was sending.
        rank: usize,
        /// Destination rank now considered dead.
        dst: usize,
        /// Message tag of the lost send.
        tag: u32,
        /// Total delivery attempts made (initial try + retries).
        attempts: u32,
    },
    /// A received payload failed its CRC-32 integrity check (or an ABFT
    /// checksum lane disagreed with the reduced data) and the bounded
    /// NACK/retransmit budget was exhausted without a clean copy arriving.
    Corruption {
        /// Rank whose receive kept failing verification.
        rank: usize,
        /// Source rank of the corrupted message.
        src: usize,
        /// Message tag of the corrupted receive.
        tag: u32,
        /// Total verification attempts made (initial receive + NACKed
        /// retransmits).
        attempts: u32,
    },
    /// A checksum-verified compute stage (an ABFT-checked MLFMA panel apply
    /// or a Krylov drift guard) kept failing verification: the detected
    /// silent data corruption persisted through the bounded recompute /
    /// rollback budget, so the result cannot be trusted.
    ComputeCorruption {
        /// Rank that detected the corruption (0 in serial runs).
        rank: usize,
        /// Compute stage that failed verification (e.g. `mlfma.apply_block`,
        /// `krylov.drift`, `dist.apply_block`).
        stage: String,
        /// 1-based index of the corrupted panel apply on this rank.
        panel: u64,
        /// Total verification attempts made (initial compute + recomputes).
        attempts: u32,
    },
    /// An iterative Krylov solve broke down (rho underflow or non-finite
    /// residual) and did not recover after one automatic restart.
    KrylovBreakdown {
        /// Rank on which the solve broke down.
        rank: usize,
        /// Iterations completed before the breakdown.
        iterations: usize,
        /// Last finite relative residual observed.
        rel_residual: f64,
        /// What broke down (e.g. "rho underflow", "non-finite residual").
        detail: String,
    },
    /// Saving or loading a reconstruction checkpoint failed.
    Checkpoint(CheckpointError),
    /// The driver cannot make further progress (e.g. every illumination
    /// group has been lost, or the restart budget is exhausted).
    Unrecoverable {
        /// Why recovery is impossible.
        detail: String,
    },
}

impl fmt::Display for FaultError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultError::InjectedCrash { rank, op } => {
                write!(f, "injected fault: rank {rank} crashed at MPI op #{op}")
            }
            FaultError::PeerDead { rank, peer, detail } => {
                write!(
                    f,
                    "rank {rank}: peer rank {peer} can no longer participate\n{detail}"
                )
            }
            FaultError::SendLost {
                rank,
                dst,
                tag,
                attempts,
            } => {
                write!(
                    f,
                    "rank {rank}: send to rank {dst} (tag {tag:#x}) lost after \
                     {attempts} attempts; declaring the peer dead"
                )
            }
            FaultError::Corruption {
                rank,
                src,
                tag,
                attempts,
            } => {
                write!(
                    f,
                    "rank {rank}: payload from rank {src} (tag {tag:#x}) failed \
                     integrity verification after {attempts} attempts; \
                     retransmit budget exhausted"
                )
            }
            FaultError::ComputeCorruption {
                rank,
                stage,
                panel,
                attempts,
            } => {
                write!(
                    f,
                    "rank {rank}: compute corruption in {stage} at panel #{panel} \
                     persisted after {attempts} attempts; recompute budget exhausted"
                )
            }
            FaultError::KrylovBreakdown {
                rank,
                iterations,
                rel_residual,
                detail,
            } => {
                write!(
                    f,
                    "rank {rank}: Krylov breakdown after {iterations} iterations \
                     (rel residual {rel_residual:.3e}): {detail}"
                )
            }
            FaultError::Checkpoint(e) => write!(f, "checkpoint: {e}"),
            FaultError::Unrecoverable { detail } => {
                write!(f, "unrecoverable: {detail}")
            }
        }
    }
}

impl std::error::Error for FaultError {}

impl From<CheckpointError> for FaultError {
    fn from(e: CheckpointError) -> Self {
        FaultError::Checkpoint(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_rank() {
        let e = FaultError::InjectedCrash { rank: 3, op: 17 };
        let msg = e.to_string();
        assert!(msg.contains("rank 3"), "{msg}");
        assert!(msg.contains("#17"), "{msg}");

        let e = FaultError::SendLost {
            rank: 1,
            dst: 2,
            tag: 0x100,
            attempts: 4,
        };
        let msg = e.to_string();
        assert!(msg.contains("rank 1"), "{msg}");
        assert!(msg.contains("rank 2"), "{msg}");
        assert!(msg.contains("4 attempts"), "{msg}");
    }

    #[test]
    fn corruption_names_both_endpoints_and_the_budget() {
        let e = FaultError::Corruption {
            rank: 2,
            src: 0,
            tag: 0x101,
            attempts: 4,
        };
        let msg = e.to_string();
        assert!(msg.contains("rank 2"), "{msg}");
        assert!(msg.contains("rank 0"), "{msg}");
        assert!(msg.contains("4 attempts"), "{msg}");
        assert!(msg.contains("integrity"), "{msg}");
    }

    #[test]
    fn compute_corruption_names_rank_stage_panel_and_budget() {
        let e = FaultError::ComputeCorruption {
            rank: 2,
            stage: "mlfma.apply_block".into(),
            panel: 7,
            attempts: 4,
        };
        let msg = e.to_string();
        assert!(msg.contains("rank 2"), "{msg}");
        assert!(msg.contains("mlfma.apply_block"), "{msg}");
        assert!(msg.contains("#7"), "{msg}");
        assert!(msg.contains("4 attempts"), "{msg}");
    }

    #[test]
    fn peer_dead_preserves_watchdog_detail() {
        let e = FaultError::PeerDead {
            rank: 0,
            peer: 1,
            detail: "deadlock detected: rank 0 waits on rank 1".into(),
        };
        assert!(e.to_string().contains("deadlock detected"));
    }
}
