//! Phi-accrual-lite failure suspicion.
//!
//! Classic phi-accrual (Hayashibara et al.) models heartbeat inter-arrival
//! times and reports a continuous suspicion level instead of a binary
//! timeout. This "lite" variant keeps the continuous-score idea but uses an
//! EWMA of inter-arrival intervals as the distribution summary: the score
//! is the elapsed time since the last beat measured in units of the mean
//! interval, so `phi == 1` means "exactly on schedule" and `phi == 8`
//! means "eight expected intervals of silence".
//!
//! The struct is pure data — time is fed in as monotonic nanoseconds by
//! the caller (`ffw-mpi` uses `ffw_obs::monotonic_ns`), which keeps it
//! deterministic under test and respects the workspace rule that only
//! `ffw-obs` reads the clock.

/// Suspicion score above which a rank is declared a suspect. Eight missed
/// expected intervals is far past scheduler jitter (which costs ~1–2) but
/// still detects death in O(heartbeat interval), not O(deadlock timeout).
pub const DEFAULT_PHI_THRESHOLD: f64 = 8.0;

/// EWMA-based phi-accrual-lite estimator for one monitored rank.
#[derive(Clone, Debug)]
pub struct PhiLite {
    /// EWMA of observed inter-arrival intervals, ns.
    mean_ns: f64,
    /// Monotonic timestamp of the most recent beat, ns.
    last_ns: u64,
    /// EWMA smoothing factor for new observations.
    alpha: f64,
    /// Floor on the mean so a burst of fast beats cannot make the
    /// estimator hair-triggered.
    floor_ns: f64,
    beats: u64,
}

impl PhiLite {
    /// New estimator expecting beats roughly every `expected_interval_ns`,
    /// with the first beat implicitly at `now_ns`.
    pub fn new(expected_interval_ns: u64, now_ns: u64) -> Self {
        let expected = (expected_interval_ns.max(1)) as f64;
        PhiLite {
            mean_ns: expected,
            last_ns: now_ns,
            alpha: 0.2,
            floor_ns: expected / 4.0,
            beats: 0,
        }
    }

    /// Record a heartbeat observed at monotonic time `now_ns`.
    pub fn beat(&mut self, now_ns: u64) {
        let interval = now_ns.saturating_sub(self.last_ns) as f64;
        self.mean_ns = (1.0 - self.alpha) * self.mean_ns + self.alpha * interval;
        if self.mean_ns < self.floor_ns {
            self.mean_ns = self.floor_ns;
        }
        self.last_ns = now_ns;
        self.beats += 1;
    }

    /// Suspicion level at `now_ns`: elapsed time since the last beat in
    /// units of the mean inter-arrival interval. Monotonically increasing
    /// between beats; reset (near) zero by each beat.
    pub fn phi(&self, now_ns: u64) -> f64 {
        now_ns.saturating_sub(self.last_ns) as f64 / self.mean_ns
    }

    /// True when the suspicion level exceeds `threshold`
    /// (see [`DEFAULT_PHI_THRESHOLD`]).
    pub fn is_suspect(&self, now_ns: u64, threshold: f64) -> bool {
        self.phi(now_ns) > threshold
    }

    /// Current mean inter-arrival estimate, ns.
    pub fn mean_interval_ns(&self) -> f64 {
        self.mean_ns
    }

    /// Number of beats recorded so far.
    pub fn beats(&self) -> u64 {
        self.beats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MS: u64 = 1_000_000;

    #[test]
    fn on_schedule_beats_keep_phi_low() {
        let mut p = PhiLite::new(5 * MS, 0);
        for k in 1..=50u64 {
            p.beat(k * 5 * MS);
        }
        // Immediately after a beat phi is 0; one interval later it is ~1.
        assert!(p.phi(250 * MS) < 0.01);
        let one_later = p.phi(255 * MS);
        assert!((0.5..2.0).contains(&one_later), "phi={one_later}");
        assert!(!p.is_suspect(255 * MS, DEFAULT_PHI_THRESHOLD));
    }

    #[test]
    fn silence_crosses_the_threshold_in_o_interval() {
        let mut p = PhiLite::new(5 * MS, 0);
        for k in 1..=20u64 {
            p.beat(k * 5 * MS);
        }
        let last = 100 * MS;
        // Dead rank: no more beats. Threshold 8 crossed by ~9 intervals of
        // silence — milliseconds, not the 250 ms deadlock watchdog.
        assert!(!p.is_suspect(last + 2 * 5 * MS, DEFAULT_PHI_THRESHOLD));
        assert!(p.is_suspect(last + 10 * 5 * MS, DEFAULT_PHI_THRESHOLD));
        // phi grows monotonically during silence.
        assert!(p.phi(last + 20 * MS) < p.phi(last + 40 * MS));
    }

    #[test]
    fn jittery_but_alive_rank_stays_unsuspected() {
        let mut p = PhiLite::new(5 * MS, 0);
        let mut t = 0u64;
        // Alternating 2 ms / 9 ms intervals: noisy but alive.
        for k in 0..60u64 {
            t += if k % 2 == 0 { 2 * MS } else { 9 * MS };
            p.beat(t);
        }
        // Even at the long end of the jitter the score stays far under 8.
        assert!(p.phi(t + 9 * MS) < 4.0);
        assert!(!p.is_suspect(t + 9 * MS, DEFAULT_PHI_THRESHOLD));
    }

    #[test]
    fn fast_beat_burst_cannot_hair_trigger_the_estimator() {
        let mut p = PhiLite::new(5 * MS, 0);
        let mut t = 100 * MS;
        // 1000 beats in quick succession (0.01 ms apart) try to drag the
        // mean to ~0; the floor keeps one normal 5 ms gap unsuspicious.
        for _ in 0..1000 {
            t += MS / 100;
            p.beat(t);
        }
        assert!(p.mean_interval_ns() >= 5.0 * MS as f64 / 4.0 - 1.0);
        assert!(!p.is_suspect(t + 5 * MS, DEFAULT_PHI_THRESHOLD));
    }

    #[test]
    fn unstarted_estimator_uses_the_expected_interval() {
        // Before any beat arrives the expected interval seeds the mean, so
        // a rank that dies before its first beat is still detected.
        let p = PhiLite::new(5 * MS, 0);
        assert!(!p.is_suspect(5 * MS, DEFAULT_PHI_THRESHOLD));
        assert!(p.is_suspect(100 * MS, DEFAULT_PHI_THRESHOLD));
        assert_eq!(p.beats(), 0);
    }
}
