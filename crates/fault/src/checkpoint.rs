//! Crash-consistent checkpoints for the distributed DBIM reconstruction.
//!
//! Format (all integers little-endian, written by a small from-scratch
//! writer — no external serialization dependency):
//!
//! ```text
//! magic    8 bytes   b"FFWCKPT1"
//! payload  N bytes   fingerprint, next_iter, lost_txs, residual history,
//!                    object, grad_prev, dir, per-tx fields (see encode())
//! checksum 8 bytes   FNV-1a 64 over the payload bytes
//! ```
//!
//! Writes go to `<path>.tmp` followed by an atomic `rename`, so a crash
//! mid-write can never leave a torn checkpoint at the published path; a
//! reader sees either the previous complete checkpoint or the new one.

use std::fmt;
use std::fs;
use std::io::Write as _;
use std::path::Path;

const MAGIC: &[u8; 8] = b"FFWCKPT1";

/// Why loading a checkpoint failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CheckpointError {
    /// Filesystem error (message carries the underlying cause).
    Io(String),
    /// The file does not start with the checkpoint magic.
    BadMagic,
    /// The file ends before the declared payload and checksum.
    Truncated,
    /// The stored checksum does not match the payload.
    ChecksumMismatch {
        /// Checksum stored in the file trailer.
        stored: u64,
        /// Checksum computed over the payload actually read.
        computed: u64,
    },
    /// The payload decodes to inconsistent lengths or counts.
    Malformed(String),
    /// The checkpoint was written by a run with a different scene/config.
    FingerprintMismatch {
        /// Fingerprint of the current run.
        expected: u64,
        /// Fingerprint stored in the checkpoint.
        found: u64,
    },
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io(msg) => write!(f, "io error: {msg}"),
            CheckpointError::BadMagic => write!(f, "bad magic (not an ffw checkpoint)"),
            CheckpointError::Truncated => write!(f, "truncated checkpoint file"),
            CheckpointError::ChecksumMismatch { stored, computed } => write!(
                f,
                "checksum mismatch (stored {stored:#018x}, computed {computed:#018x})"
            ),
            CheckpointError::Malformed(msg) => write!(f, "malformed payload: {msg}"),
            CheckpointError::FingerprintMismatch { expected, found } => write!(
                f,
                "config fingerprint mismatch (run {expected:#018x}, file {found:#018x})"
            ),
        }
    }
}

impl std::error::Error for CheckpointError {}

/// FNV-1a 64-bit hash of `bytes`.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Incremental FNV-1a 64 hasher for building config fingerprints.
#[derive(Clone, Copy, Debug)]
pub struct Fingerprint {
    h: u64,
}

impl Fingerprint {
    /// Start a fresh fingerprint.
    pub fn new() -> Self {
        Fingerprint {
            h: 0xcbf2_9ce4_8422_2325,
        }
    }

    /// Mix a u64 (little-endian bytes) into the fingerprint.
    pub fn u64(mut self, v: u64) -> Self {
        for b in v.to_le_bytes() {
            self.h ^= b as u64;
            self.h = self.h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        self
    }

    /// Mix an f64 (bit pattern) into the fingerprint.
    pub fn f64(self, v: f64) -> Self {
        self.u64(v.to_bits())
    }

    /// Mix a boolean flag into the fingerprint.
    pub fn flag(self, v: bool) -> Self {
        self.u64(v as u64)
    }

    /// Finish and return the 64-bit fingerprint.
    pub fn finish(self) -> u64 {
        self.h
    }
}

impl Default for Fingerprint {
    fn default() -> Self {
        Fingerprint::new()
    }
}

/// Snapshot of the distributed DBIM state after a completed outer iteration.
///
/// Complex vectors are stored as `(re, im)` pairs so this crate does not
/// depend on the numerics crate; the solver converts at the boundary.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Checkpoint {
    /// Fingerprint of the scene/config that produced this state.
    pub fingerprint: u64,
    /// Next outer iteration to run (iterations `0..next_iter` are done).
    pub next_iter: u32,
    /// Illumination (transmitter) indices lost to dead ranks so far.
    pub lost_txs: Vec<u32>,
    /// Relative residual after each completed outer iteration.
    pub residual_history: Vec<f64>,
    /// Full contrast (object) vector.
    pub object: Vec<(f64, f64)>,
    /// Previous gradient (for Polak-Ribiere conjugate directions).
    pub grad_prev: Vec<(f64, f64)>,
    /// Current conjugate search direction.
    pub dir: Vec<(f64, f64)>,
    /// Warm-start total fields, one full-length vector per surviving tx.
    pub fields: Vec<(u32, Vec<(f64, f64)>)>,
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_bits().to_le_bytes());
}

fn put_c64_vec(out: &mut Vec<u8>, v: &[(f64, f64)]) {
    put_u64(out, v.len() as u64);
    for &(re, im) in v {
        put_f64(out, re);
        put_f64(out, im);
    }
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn u64(&mut self) -> Result<u64, CheckpointError> {
        let end = self.pos + 8;
        if end > self.bytes.len() {
            return Err(CheckpointError::Truncated);
        }
        let mut buf = [0u8; 8];
        buf.copy_from_slice(&self.bytes[self.pos..end]);
        self.pos = end;
        Ok(u64::from_le_bytes(buf))
    }

    fn f64(&mut self) -> Result<f64, CheckpointError> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn len(&mut self, what: &str) -> Result<usize, CheckpointError> {
        let n = self.u64()?;
        // A length prefix larger than the remaining bytes is corruption,
        // not a request to allocate.
        if n > (self.bytes.len() - self.pos) as u64 {
            return Err(CheckpointError::Malformed(format!(
                "{what} length {n} exceeds remaining payload"
            )));
        }
        Ok(n as usize)
    }

    fn c64_vec(&mut self, what: &str) -> Result<Vec<(f64, f64)>, CheckpointError> {
        let n = self.len(what)?;
        let mut v = Vec::with_capacity(n);
        for _ in 0..n {
            v.push((self.f64()?, self.f64()?));
        }
        Ok(v)
    }
}

impl Checkpoint {
    /// Serialize to the on-disk byte layout (magic + payload + checksum).
    pub fn encode(&self) -> Vec<u8> {
        let mut payload = Vec::new();
        put_u64(&mut payload, self.fingerprint);
        put_u64(&mut payload, self.next_iter as u64);
        put_u64(&mut payload, self.lost_txs.len() as u64);
        for &t in &self.lost_txs {
            put_u64(&mut payload, t as u64);
        }
        put_u64(&mut payload, self.residual_history.len() as u64);
        for &r in &self.residual_history {
            put_f64(&mut payload, r);
        }
        put_c64_vec(&mut payload, &self.object);
        put_c64_vec(&mut payload, &self.grad_prev);
        put_c64_vec(&mut payload, &self.dir);
        put_u64(&mut payload, self.fields.len() as u64);
        for (tx, field) in &self.fields {
            put_u64(&mut payload, *tx as u64);
            put_c64_vec(&mut payload, field);
        }

        let mut out = Vec::with_capacity(payload.len() + 16);
        out.extend_from_slice(MAGIC);
        let checksum = fnv1a64(&payload);
        out.extend_from_slice(&payload);
        out.extend_from_slice(&checksum.to_le_bytes());
        out
    }

    /// Decode from bytes produced by [`Checkpoint::encode`].
    pub fn decode(bytes: &[u8]) -> Result<Checkpoint, CheckpointError> {
        if bytes.len() < MAGIC.len() + 8 {
            if bytes.len() >= MAGIC.len() && &bytes[..MAGIC.len()] != MAGIC {
                return Err(CheckpointError::BadMagic);
            }
            return Err(CheckpointError::Truncated);
        }
        if &bytes[..MAGIC.len()] != MAGIC {
            return Err(CheckpointError::BadMagic);
        }
        let payload = &bytes[MAGIC.len()..bytes.len() - 8];
        let mut stored = [0u8; 8];
        stored.copy_from_slice(&bytes[bytes.len() - 8..]);
        let stored = u64::from_le_bytes(stored);
        let computed = fnv1a64(payload);
        if stored != computed {
            return Err(CheckpointError::ChecksumMismatch { stored, computed });
        }

        let mut r = Reader {
            bytes: payload,
            pos: 0,
        };
        let fingerprint = r.u64()?;
        let next_iter = r.u64()? as u32;
        let n_lost = r.len("lost_txs")?;
        let mut lost_txs = Vec::with_capacity(n_lost);
        for _ in 0..n_lost {
            lost_txs.push(r.u64()? as u32);
        }
        let n_res = r.len("residual_history")?;
        let mut residual_history = Vec::with_capacity(n_res);
        for _ in 0..n_res {
            residual_history.push(r.f64()?);
        }
        let object = r.c64_vec("object")?;
        let grad_prev = r.c64_vec("grad_prev")?;
        let dir = r.c64_vec("dir")?;
        let n_fields = r.len("fields")?;
        let mut fields = Vec::with_capacity(n_fields);
        for _ in 0..n_fields {
            let tx = r.u64()? as u32;
            fields.push((tx, r.c64_vec("field")?));
        }
        if r.pos != payload.len() {
            return Err(CheckpointError::Malformed(format!(
                "{} trailing bytes after payload",
                payload.len() - r.pos
            )));
        }
        if grad_prev.len() != object.len() || dir.len() != object.len() {
            return Err(CheckpointError::Malformed(
                "object/grad_prev/dir length mismatch".into(),
            ));
        }
        Ok(Checkpoint {
            fingerprint,
            next_iter,
            lost_txs,
            residual_history,
            object,
            grad_prev,
            dir,
            fields,
        })
    }

    /// Write atomically and durably: serialize to `<path>.tmp`, fsync the
    /// file, rename over `path`, then fsync the parent directory so the
    /// rename itself survives a crash — without the directory sync a power
    /// loss can roll the directory entry back to the old checkpoint (or to
    /// nothing) even though the file data was synced.
    pub fn save(&self, path: &Path) -> Result<(), CheckpointError> {
        let bytes = self.encode();
        let tmp = path.with_extension("tmp");
        let io = |e: std::io::Error| CheckpointError::Io(format!("{}: {e}", tmp.display()));
        let mut f = fs::File::create(&tmp).map_err(io)?;
        f.write_all(&bytes).map_err(io)?;
        f.sync_all().map_err(io)?;
        drop(f);
        fs::rename(&tmp, path)
            .map_err(|e| CheckpointError::Io(format!("rename to {}: {e}", path.display())))?;
        // Durability of the rename: sync the directory entry. `path` came
        // from the caller, so it may have no parent component ("ckpt.bin");
        // fall back to "." in that case.
        let parent = match path.parent() {
            Some(p) if !p.as_os_str().is_empty() => p.to_path_buf(),
            _ => Path::new(".").to_path_buf(),
        };
        let dir = fs::File::open(&parent)
            .map_err(|e| CheckpointError::Io(format!("open dir {}: {e}", parent.display())))?;
        dir.sync_all()
            .map_err(|e| CheckpointError::Io(format!("sync dir {}: {e}", parent.display())))
    }

    /// Load and verify a checkpoint, including the config fingerprint.
    pub fn load(path: &Path, expected_fingerprint: u64) -> Result<Checkpoint, CheckpointError> {
        let bytes =
            fs::read(path).map_err(|e| CheckpointError::Io(format!("{}: {e}", path.display())))?;
        let ckpt = Checkpoint::decode(&bytes)?;
        if ckpt.fingerprint != expected_fingerprint {
            return Err(CheckpointError::FingerprintMismatch {
                expected: expected_fingerprint,
                found: ckpt.fingerprint,
            });
        }
        Ok(ckpt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Checkpoint {
        Checkpoint {
            fingerprint: 0xDEAD_BEEF_0123_4567,
            next_iter: 3,
            lost_txs: vec![4, 5],
            residual_history: vec![0.9, 0.5, 0.25],
            object: vec![(1.0, -2.0), (0.5, 0.0), (3.25, 1e-300)],
            grad_prev: vec![(0.0, 0.0), (-1.0, 1.0), (2.0, 2.0)],
            dir: vec![(0.1, 0.2), (0.3, 0.4), (0.5, 0.6)],
            fields: vec![(0, vec![(7.0, 8.0)]), (2, vec![(9.0, -9.0)])],
        }
    }

    #[test]
    fn roundtrip_is_bit_identical() {
        let ckpt = sample();
        let decoded = Checkpoint::decode(&ckpt.encode()).expect("decode");
        assert_eq!(decoded, ckpt);
    }

    #[test]
    fn every_corrupted_payload_byte_is_detected() {
        let bytes = sample().encode();
        // Flip each payload byte in turn; the checksum must catch it.
        for i in MAGIC.len()..bytes.len() - 8 {
            let mut bad = bytes.clone();
            bad[i] ^= 0x01;
            match Checkpoint::decode(&bad) {
                Err(CheckpointError::ChecksumMismatch { .. }) => {}
                other => panic!("byte {i}: expected checksum mismatch, got {other:?}"),
            }
        }
    }

    #[test]
    fn truncation_fails_cleanly() {
        let bytes = sample().encode();
        for keep in 0..bytes.len() {
            let err = Checkpoint::decode(&bytes[..keep]).expect_err("must fail");
            assert!(
                matches!(
                    err,
                    CheckpointError::Truncated
                        | CheckpointError::BadMagic
                        | CheckpointError::ChecksumMismatch { .. }
                        | CheckpointError::Malformed(_)
                ),
                "keep={keep}: {err:?}"
            );
        }
    }

    #[test]
    fn bad_magic_is_reported() {
        let mut bytes = sample().encode();
        bytes[0] = b'X';
        assert_eq!(Checkpoint::decode(&bytes), Err(CheckpointError::BadMagic));
    }

    #[test]
    fn save_then_load_roundtrips_and_checks_fingerprint() {
        let dir = std::env::temp_dir().join("ffw-fault-ckpt-test");
        fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("state.ckpt");
        let ckpt = sample();
        ckpt.save(&path).expect("save");
        let loaded = Checkpoint::load(&path, ckpt.fingerprint).expect("load");
        assert_eq!(loaded, ckpt);
        // No stray tmp file left behind.
        assert!(!path.with_extension("tmp").exists());
        match Checkpoint::load(&path, ckpt.fingerprint ^ 1) {
            Err(CheckpointError::FingerprintMismatch { .. }) => {}
            other => panic!("expected fingerprint mismatch, got {other:?}"),
        }
        fs::remove_file(&path).ok();
    }

    #[test]
    fn oversized_length_prefix_is_malformed_not_oom() {
        let ckpt = Checkpoint {
            fingerprint: 1,
            next_iter: 0,
            lost_txs: vec![],
            residual_history: vec![],
            object: vec![(0.0, 0.0)],
            grad_prev: vec![(0.0, 0.0)],
            dir: vec![(0.0, 0.0)],
            fields: vec![],
        };
        let mut bytes = ckpt.encode();
        // Patch the object length prefix (offset: magic + fingerprint +
        // next_iter + lost len + res len = 8 + 8 + 8 + 8 + 8) to a huge
        // value and fix up the checksum so only the bounds check trips.
        let off = 8 + 32;
        bytes[off..off + 8].copy_from_slice(&u64::MAX.to_le_bytes());
        let payload_end = bytes.len() - 8;
        let sum = fnv1a64(&bytes[8..payload_end]);
        bytes[payload_end..].copy_from_slice(&sum.to_le_bytes());
        match Checkpoint::decode(&bytes) {
            Err(CheckpointError::Malformed(_)) => {}
            other => panic!("expected malformed, got {other:?}"),
        }
    }
}
