//! Deterministic, seeded fault schedules.
//!
//! A [`FaultPlan`] is a pure description — no wall-clock, no randomness at
//! execution time — of which ranks crash, which sends are dropped, and which
//! ranks are slowed. The runtime activates a plan once per launch
//! ([`FaultPlan::activate`]) to obtain per-rank operation counters; every
//! decision is then a function of (rank, operation index) or
//! (src, dst, send index), so a given plan replays identically on every run.

use std::sync::atomic::{AtomicU64, Ordering};

/// Retry/backoff policy the runtime applies when fault injection drops a
/// send before giving up and declaring the destination dead.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Maximum number of retries after the first failed attempt.
    pub max_retries: u32,
    /// Backoff before the first retry, in milliseconds.
    pub base_backoff_ms: u64,
    /// Upper bound on any single backoff, in milliseconds.
    pub max_backoff_ms: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 3,
            base_backoff_ms: 1,
            max_backoff_ms: 8,
        }
    }
}

impl RetryPolicy {
    /// Bounded exponential backoff before retry number `attempt` (0-based).
    pub fn backoff_ms(&self, attempt: u32) -> u64 {
        let shift = attempt.min(16);
        (self.base_backoff_ms << shift).min(self.max_backoff_ms)
    }
}

#[derive(Clone, Copy, Debug)]
struct CrashRule {
    rank: usize,
    at_op: u64,
}

#[derive(Clone, Copy, Debug)]
struct DropRule {
    src: usize,
    dst: usize,
    /// 1-based index of the logical send on the (src, dst) edge to drop.
    nth_send: u64,
    /// How many consecutive delivery attempts of that send to drop.
    times: u32,
}

#[derive(Clone, Copy, Debug)]
struct CorruptRule {
    src: usize,
    dst: usize,
    /// 1-based index of the logical send on the (src, dst) edge to corrupt.
    nth_send: u64,
    /// How many consecutive delivery attempts of that send to corrupt.
    times: u32,
}

#[derive(Clone, Copy, Debug)]
struct ComputeRule {
    rank: usize,
    /// 1-based index of the logical panel apply on `rank` to corrupt.
    nth_apply: u64,
    /// Flat lane index of the f64 to corrupt, reduced modulo the number of
    /// lanes in the panel at injection time.
    slot: u64,
    /// Bit to flip within the chosen f64 lane (0–51 mantissa, 52–62
    /// exponent; reduced modulo 64, bit 63 — the sign — included).
    bit: u32,
    /// How many consecutive compute attempts of that apply to corrupt.
    times: u32,
}

#[derive(Clone, Copy, Debug)]
struct StraggleRule {
    rank: usize,
    from_op: u64,
    to_op: u64,
    delay_ms: u64,
}

/// A deterministic schedule of injected faults for one distributed launch.
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    crashes: Vec<CrashRule>,
    drops: Vec<DropRule>,
    corrupts: Vec<CorruptRule>,
    computes: Vec<ComputeRule>,
    straggles: Vec<StraggleRule>,
    retry: RetryPolicy,
}

impl FaultPlan {
    /// An empty plan (injects nothing).
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Crash `rank` when it begins its `at_op`-th runtime operation
    /// (1-based; sends, recvs, barriers and collectives all count).
    pub fn crash_at(mut self, rank: usize, at_op: u64) -> Self {
        self.crashes.push(CrashRule { rank, at_op });
        self
    }

    /// Drop the `nth_send`-th send (1-based) from `src` to `dst` for
    /// `times` consecutive delivery attempts. If `times` exceeds the retry
    /// budget the send is lost and `dst` is declared dead by `src`.
    pub fn drop_send(mut self, src: usize, dst: usize, nth_send: u64, times: u32) -> Self {
        self.drops.push(DropRule {
            src,
            dst,
            nth_send,
            times,
        });
        self
    }

    /// Corrupt the `nth_send`-th send (1-based) from `src` to `dst` for
    /// `times` consecutive delivery attempts by flipping payload bits in
    /// flight. The receiver's CRC check rejects each corrupted attempt and
    /// NACKs for a retransmit; if `times` exceeds the retry budget the
    /// receive fails with [`crate::FaultError::Corruption`].
    pub fn corrupt_send(mut self, src: usize, dst: usize, nth_send: u64, times: u32) -> Self {
        self.corrupts.push(CorruptRule {
            src,
            dst,
            nth_send,
            times,
        });
        self
    }

    /// Flip one bit of one f64 lane in the output of the `nth_apply`-th
    /// (1-based) checksum-verified panel apply on `rank`, once. The ABFT
    /// checksum column detects the flip and the panel is recomputed cleanly
    /// — the recovered output is bit-identical to a fault-free run.
    pub fn corrupt_compute(self, rank: usize, nth_apply: u64, slot: u64, bit: u32) -> Self {
        self.corrupt_compute_times(rank, nth_apply, slot, bit, 1)
    }

    /// Like [`FaultPlan::corrupt_compute`], but corrupt the first `times`
    /// consecutive compute attempts of that apply. If `times` exceeds the
    /// recompute budget the verified operator gives up and surfaces
    /// [`crate::FaultError::ComputeCorruption`] instead of a silent wrong
    /// result.
    pub fn corrupt_compute_times(
        mut self,
        rank: usize,
        nth_apply: u64,
        slot: u64,
        bit: u32,
        times: u32,
    ) -> Self {
        self.computes.push(ComputeRule {
            rank,
            nth_apply,
            slot,
            bit,
            times,
        });
        self
    }

    /// Delay every operation of `rank` in the 1-based operation range
    /// `from_op..=to_op` by `delay_ms` milliseconds (a straggler model).
    pub fn straggler(mut self, rank: usize, from_op: u64, to_op: u64, delay_ms: u64) -> Self {
        self.straggles.push(StraggleRule {
            rank,
            from_op,
            to_op,
            delay_ms,
        });
        self
    }

    /// Override the retry policy used when sends are dropped.
    pub fn retry_policy(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// The retry policy the runtime should apply to dropped sends.
    pub fn retry(&self) -> RetryPolicy {
        self.retry
    }

    /// True when the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.crashes.is_empty()
            && self.drops.is_empty()
            && self.corrupts.is_empty()
            && self.computes.is_empty()
            && self.straggles.is_empty()
    }

    /// Derive a single-fault plan from a seed — the chaos-test matrix.
    ///
    /// Deterministic: the same `(seed, n_ranks)` always yields the same
    /// plan. Seeds cycle through crash / recoverable-drop / lost-drop /
    /// straggler / recoverable-corrupt / lost-corrupt schedules so a small
    /// seed range exercises every fault class on varying ranks and
    /// operation indices.
    pub fn seeded(seed: u64, n_ranks: usize) -> FaultPlan {
        assert!(n_ranks >= 2, "seeded plans need at least 2 ranks");
        let h0 = splitmix64(seed);
        let h1 = splitmix64(h0);
        let h2 = splitmix64(h1);
        let h3 = splitmix64(h2);
        let rank = (h0 % n_ranks as u64) as usize;
        let op = 3 + h1 % 40;
        let dst = (rank + 1 + (h2 % (n_ranks as u64 - 1)) as usize) % n_ranks;
        match seed % 6 {
            0 => FaultPlan::new().crash_at(rank, op),
            1 => {
                // Recoverable: dropped fewer times than the retry budget.
                let times = 1 + (h3 % RetryPolicy::default().max_retries as u64) as u32;
                FaultPlan::new().drop_send(rank, dst, 1 + h1 % 6, times)
            }
            2 => {
                // Unrecoverable: dropped past the retry budget => SendLost.
                let times = RetryPolicy::default().max_retries + 1 + (h3 % 2) as u32;
                FaultPlan::new().drop_send(rank, dst, 1 + h1 % 6, times)
            }
            3 => FaultPlan::new().straggler(rank, op, op + 8 + h2 % 16, 1 + h3 % 3),
            4 => {
                // Recoverable corruption: CRC rejects, retransmit succeeds.
                let times = 1 + (h3 % RetryPolicy::default().max_retries as u64) as u32;
                FaultPlan::new().corrupt_send(rank, dst, 1 + h1 % 6, times)
            }
            _ => {
                // Unrecoverable corruption: budget exhausted => Corruption.
                let times = RetryPolicy::default().max_retries + 1 + (h3 % 2) as u32;
                FaultPlan::new().corrupt_send(rank, dst, 1 + h1 % 6, times)
            }
        }
    }

    /// Derive a single compute-corruption plan from a seed — the silent-
    /// data-corruption chaos matrix.
    ///
    /// Deterministic like [`FaultPlan::seeded`], but every seed injects a
    /// bit flip into a checksum-verified panel apply: seeds alternate
    /// exponent- and mantissa-bit flips, cycle recoverable (within the
    /// recompute budget) and unrecoverable (budget-exhausting) corruption,
    /// and compose the flip with a crash or a straggler on another rank so
    /// recovery paths interact. Works for `n_ranks == 1` (the serial CLI
    /// path) — the composed secondary faults need a second rank and are
    /// skipped otherwise.
    pub fn seeded_compute(seed: u64, n_ranks: usize) -> FaultPlan {
        assert!(n_ranks >= 1, "seeded compute plans need at least 1 rank");
        let h0 = splitmix64(seed);
        let h1 = splitmix64(h0);
        let h2 = splitmix64(h1);
        let h3 = splitmix64(h2);
        let h4 = splitmix64(h3);
        let rank = (h0 % n_ranks as u64) as usize;
        let nth_apply = 1 + h1 % 12;
        let slot = h2;
        // Alternate exponent (52–62) and high-mantissa (36–51) bits so the
        // matrix proves detection at both granularities. Mantissa bits below
        // ~30 perturb a lane by less than the calibrated checksum tolerance
        // — indistinguishable from operator rounding, and harmless by the
        // same argument — so seeded plans stay above that floor to keep the
        // every-flip-detected contract testable.
        let bit = if seed.is_multiple_of(2) {
            52 + (h3 % 11) as u32
        } else {
            36 + (h3 % 16) as u32
        };
        let budget = RetryPolicy::default().max_retries;
        let recoverable_times = 1 + (h4 % budget as u64) as u32;
        match seed % 4 {
            // Recoverable: fewer corrupted attempts than the recompute budget.
            0 => FaultPlan::new().corrupt_compute_times(
                rank,
                nth_apply,
                slot,
                bit,
                recoverable_times,
            ),
            // Unrecoverable: persists past the budget => ComputeCorruption.
            1 => {
                let times = budget + 1 + (h4 % 2) as u32;
                FaultPlan::new().corrupt_compute_times(rank, nth_apply, slot, bit, times)
            }
            // Recoverable flip composed with a crash on another rank.
            2 => {
                let p = FaultPlan::new().corrupt_compute(rank, nth_apply, slot, bit);
                if n_ranks >= 2 {
                    let other = (rank + 1 + (h4 % (n_ranks as u64 - 1)) as usize) % n_ranks;
                    p.crash_at(other, 3 + h4 % 40)
                } else {
                    p
                }
            }
            // Recoverable flip composed with a straggler on another rank.
            _ => {
                let p = FaultPlan::new().corrupt_compute(rank, nth_apply, slot, bit);
                if n_ranks >= 2 {
                    let other = (rank + 1 + (h4 % (n_ranks as u64 - 1)) as usize) % n_ranks;
                    let op = 3 + h4 % 20;
                    p.straggler(other, op, op + 8 + h4 % 16, 1 + h4 % 3)
                } else {
                    p
                }
            }
        }
    }

    /// Instantiate per-launch counters for a communicator of `n_ranks`.
    pub fn activate(&self, n_ranks: usize) -> ActiveFaults {
        ActiveFaults {
            plan: self.clone(),
            ops: (0..n_ranks).map(|_| AtomicU64::new(0)).collect(),
            sends: (0..n_ranks * n_ranks).map(|_| AtomicU64::new(0)).collect(),
            applies: (0..n_ranks).map(|_| AtomicU64::new(0)).collect(),
            n_ranks,
        }
    }
}

/// What the runtime must do at the operation a rank is about to perform.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OpAction {
    /// No fault scheduled here.
    Proceed,
    /// Crash the rank (panic with [`crate::FaultError::InjectedCrash`]).
    Crash {
        /// 1-based operation index at which the crash fires.
        op: u64,
    },
    /// Sleep `delay_ms` before proceeding (straggler model).
    Delay {
        /// Milliseconds to sleep.
        delay_ms: u64,
        /// 1-based operation index being delayed.
        op: u64,
    },
}

/// Faults scheduled for one logical send on an edge, as reported by
/// [`ActiveFaults::on_send`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SendFault {
    /// Consecutive delivery attempts to drop (0 = deliver immediately).
    pub drops: u32,
    /// Consecutive delivery attempts to corrupt in flight.
    pub corrupts: u32,
}

/// A bit flip scheduled for one logical panel apply, as reported by
/// [`ActiveFaults::on_apply`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ComputeFault {
    /// Flat f64 lane to corrupt (reduce modulo the panel's lane count).
    pub slot: u64,
    /// Bit to flip within that lane (reduce modulo 64).
    pub bit: u32,
    /// Consecutive compute attempts to corrupt (recomputes past this many
    /// run clean).
    pub times: u32,
}

/// Per-launch activation of a [`FaultPlan`]: operation and send counters.
#[derive(Debug)]
pub struct ActiveFaults {
    plan: FaultPlan,
    ops: Vec<AtomicU64>,
    sends: Vec<AtomicU64>,
    applies: Vec<AtomicU64>,
    n_ranks: usize,
}

impl ActiveFaults {
    /// Advance `rank`'s operation counter and report any fault scheduled
    /// at the new operation index.
    pub fn on_op(&self, rank: usize) -> OpAction {
        let op = self.ops[rank].fetch_add(1, Ordering::SeqCst) + 1;
        for c in &self.plan.crashes {
            if c.rank == rank && c.at_op == op {
                return OpAction::Crash { op };
            }
        }
        for s in &self.plan.straggles {
            if s.rank == rank && op >= s.from_op && op <= s.to_op {
                return OpAction::Delay {
                    delay_ms: s.delay_ms,
                    op,
                };
            }
        }
        OpAction::Proceed
    }

    /// Advance the (src, dst) send counter and return the faults scheduled
    /// for this logical send: how many consecutive delivery attempts must
    /// be dropped, and how many must be corrupted in flight. Each logical
    /// send advances the edge counter exactly once, so drop and corrupt
    /// rules targeting the same `nth_send` compose.
    pub fn on_send(&self, src: usize, dst: usize) -> SendFault {
        let n = self.sends[src * self.n_ranks + dst].fetch_add(1, Ordering::SeqCst) + 1;
        let drops = self
            .plan
            .drops
            .iter()
            .filter(|d| d.src == src && d.dst == dst && d.nth_send == n)
            .map(|d| d.times)
            .max()
            .unwrap_or(0);
        let corrupts = self
            .plan
            .corrupts
            .iter()
            .filter(|c| c.src == src && c.dst == dst && c.nth_send == n)
            .map(|c| c.times)
            .max()
            .unwrap_or(0);
        SendFault { drops, corrupts }
    }

    /// Advance `rank`'s logical panel-apply counter and return any bit flip
    /// scheduled for this apply. Recompute attempts of the *same* logical
    /// apply must not call this again — the verified operator consults the
    /// returned `times` to decide how many attempts stay corrupted, so the
    /// counter advances exactly once per logical panel.
    pub fn on_apply(&self, rank: usize) -> Option<ComputeFault> {
        let n = self.applies[rank].fetch_add(1, Ordering::SeqCst) + 1;
        self.plan
            .computes
            .iter()
            .find(|c| c.rank == rank && c.nth_apply == n)
            .map(|c| ComputeFault {
                slot: c.slot,
                bit: c.bit,
                times: c.times,
            })
    }

    /// The retry policy for dropped sends.
    pub fn retry(&self) -> RetryPolicy {
        self.plan.retry()
    }
}

fn splitmix64(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crash_fires_exactly_at_the_scheduled_op() {
        let faults = FaultPlan::new().crash_at(1, 3).activate(2);
        assert_eq!(faults.on_op(1), OpAction::Proceed);
        assert_eq!(faults.on_op(1), OpAction::Proceed);
        assert_eq!(faults.on_op(1), OpAction::Crash { op: 3 });
        // Other ranks unaffected.
        assert_eq!(faults.on_op(0), OpAction::Proceed);
    }

    #[test]
    fn straggler_covers_its_op_range() {
        let faults = FaultPlan::new().straggler(0, 2, 3, 5).activate(1);
        assert_eq!(faults.on_op(0), OpAction::Proceed);
        assert_eq!(faults.on_op(0), OpAction::Delay { delay_ms: 5, op: 2 });
        assert_eq!(faults.on_op(0), OpAction::Delay { delay_ms: 5, op: 3 });
        assert_eq!(faults.on_op(0), OpAction::Proceed);
    }

    #[test]
    fn drop_counts_per_edge() {
        let faults = FaultPlan::new().drop_send(0, 1, 2, 3).activate(2);
        assert_eq!(faults.on_send(0, 1).drops, 0); // 1st send delivered
        assert_eq!(faults.on_send(0, 1).drops, 3); // 2nd send dropped 3x
        assert_eq!(faults.on_send(0, 1).drops, 0); // 3rd send delivered
        assert_eq!(faults.on_send(1, 0).drops, 0); // reverse edge untouched
    }

    #[test]
    fn corrupt_counts_per_edge_and_composes_with_drops() {
        let faults = FaultPlan::new()
            .corrupt_send(0, 1, 2, 2)
            .drop_send(0, 1, 3, 1)
            .activate(2);
        assert_eq!(faults.on_send(0, 1), SendFault::default()); // 1st clean
        let second = faults.on_send(0, 1);
        assert_eq!(second.corrupts, 2); // 2nd corrupted twice
        assert_eq!(second.drops, 0);
        let third = faults.on_send(0, 1); // 3rd dropped once, not corrupted
        assert_eq!(
            third,
            SendFault {
                drops: 1,
                corrupts: 0
            }
        );
        assert_eq!(faults.on_send(1, 0), SendFault::default());
    }

    #[test]
    fn backoff_is_bounded() {
        let r = RetryPolicy::default();
        assert_eq!(r.backoff_ms(0), 1);
        assert_eq!(r.backoff_ms(1), 2);
        assert_eq!(r.backoff_ms(2), 4);
        assert_eq!(r.backoff_ms(3), 8);
        assert_eq!(r.backoff_ms(10), 8);
        assert_eq!(r.backoff_ms(u32::MAX), 8);
    }

    #[test]
    fn compute_fault_fires_exactly_at_the_scheduled_apply() {
        let faults = FaultPlan::new()
            .corrupt_compute_times(1, 2, 17, 54, 3)
            .activate(2);
        assert_eq!(faults.on_apply(1), None); // 1st apply clean
        assert_eq!(
            faults.on_apply(1),
            Some(ComputeFault {
                slot: 17,
                bit: 54,
                times: 3
            })
        );
        assert_eq!(faults.on_apply(1), None); // 3rd apply clean
        assert_eq!(faults.on_apply(0), None); // other ranks unaffected
    }

    #[test]
    fn seeded_compute_plans_are_deterministic_and_cover_both_bit_classes() {
        let mut exponent = 0usize;
        let mut mantissa = 0usize;
        for seed in 0..16 {
            let a = FaultPlan::seeded_compute(seed, 4);
            let b = FaultPlan::seeded_compute(seed, 4);
            assert!(!a.is_empty());
            assert_eq!(format!("{a:?}"), format!("{b:?}"));
            assert_eq!(a.computes.len(), 1, "exactly one flip per seed");
            let bit = a.computes[0].bit;
            if (52..=62).contains(&bit) {
                exponent += 1;
            } else {
                mantissa += 1;
            }
        }
        assert!(exponent > 0 && mantissa > 0, "{exponent} / {mantissa}");
        // Serial plans are legal and never carry multi-rank secondaries.
        for seed in 0..8 {
            let p = FaultPlan::seeded_compute(seed, 1);
            assert!(p.crashes.is_empty() && p.straggles.is_empty());
            assert_eq!(p.computes[0].rank, 0);
        }
    }

    #[test]
    fn seeded_plans_are_deterministic_and_nonempty() {
        for seed in 0..32 {
            let a = FaultPlan::seeded(seed, 4);
            let b = FaultPlan::seeded(seed, 4);
            assert!(!a.is_empty());
            assert_eq!(format!("{a:?}"), format!("{b:?}"));
        }
    }
}
