//! # ffw-fault — seeded fault injection and crash-consistent recovery
//!
//! The paper's production runs (4,096 GPUs on Blue Waters) operate in a
//! regime where rank crashes, dropped messages and stragglers are routine.
//! This crate provides the three ingredients the rest of the workspace uses
//! to survive them:
//!
//! * [`FaultPlan`] — a deterministic, seeded schedule of injected faults
//!   (crash rank N at its K-th MPI op, drop the J-th send on an edge,
//!   slow a rank down). `ffw-mpi` consults an activated plan at every
//!   runtime operation, so a given seed replays bit-identically.
//! * [`FaultError`] — the typed error surfaced when a fault (injected or
//!   organic) is observed: a dead peer, a lost send, a Krylov breakdown,
//!   a bad checkpoint. Ranks return these as values instead of panicking.
//! * [`Checkpoint`] — a from-scratch, checksummed, atomically-renamed
//!   on-disk snapshot of the DBIM outer-iteration state, enabling
//!   `--resume` to continue a killed reconstruction bit-identically.
//!
//! The crate is dependency-free (a leaf) so both `ffw-mpi` and `ffw-dist`
//! can share its types without cycles; the chaos-test harness in
//! `tests/chaos.rs` exercises the whole stack end-to-end.

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

mod checkpoint;
mod error;
mod heartbeat;
mod integrity;
mod plan;
mod shutdown;

pub use checkpoint::{fnv1a64, Checkpoint, CheckpointError, Fingerprint};
pub use error::FaultError;
pub use heartbeat::{PhiLite, DEFAULT_PHI_THRESHOLD};
pub use integrity::{
    abft_lane_c64, abft_lane_f64, abft_verify_c64, abft_verify_f64, crc32, crc32_c64, crc32_f64,
    crc32_u64, crc32_update,
};
pub use plan::{ActiveFaults, ComputeFault, FaultPlan, OpAction, RetryPolicy, SendFault};
pub use shutdown::{
    install_shutdown_handler, request_shutdown, reset_shutdown, shutdown_requested,
};
