//! End-to-end message integrity: a from-scratch CRC-32 (IEEE 802.3
//! polynomial, reflected) used by `ffw-mpi` to frame every payload, plus
//! the ABFT-style checksum-lane verifier used by the allreduce paths.
//!
//! No dependencies: the 256-entry table is computed at first use and cached
//! behind a `OnceLock`, and the checksum is the standard reflected CRC-32
//! (`crc32("123456789") == 0xCBF4_3926`) so it can be cross-checked against
//! any external implementation.

use std::sync::OnceLock;

/// Reflected IEEE 802.3 polynomial (0x04C11DB7 bit-reversed).
const POLY: u32 = 0xEDB8_8320;

fn table() -> &'static [u32; 256] {
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        let mut i = 0usize;
        while i < 256 {
            let mut c = i as u32;
            let mut k = 0;
            while k < 8 {
                c = if c & 1 != 0 { POLY ^ (c >> 1) } else { c >> 1 };
                k += 1;
            }
            t[i] = c;
            i += 1;
        }
        t
    })
}

/// CRC-32 (IEEE, reflected) of `bytes`. `crc32(b"123456789") == 0xCBF43926`.
pub fn crc32(bytes: &[u8]) -> u32 {
    crc32_update(0xFFFF_FFFF, bytes) ^ 0xFFFF_FFFF
}

/// Incremental form: feed chunks into a running state initialised to
/// `0xFFFF_FFFF`, finalise by XORing with `0xFFFF_FFFF`.
pub fn crc32_update(state: u32, bytes: &[u8]) -> u32 {
    let t = table();
    let mut c = state;
    for &b in bytes {
        c = t[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c
}

/// CRC-32 over a complex buffer's raw bit patterns (order-sensitive), so
/// `-0.0` vs `0.0` and NaN payloads are all distinguished.
pub fn crc32_c64(data: &[(f64, f64)]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &(re, im) in data {
        c = crc32_update(c, &re.to_bits().to_le_bytes());
        c = crc32_update(c, &im.to_bits().to_le_bytes());
    }
    c ^ 0xFFFF_FFFF
}

/// CRC-32 over a real buffer's raw bit patterns.
pub fn crc32_f64(data: &[f64]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &x in data {
        c = crc32_update(c, &x.to_bits().to_le_bytes());
    }
    c ^ 0xFFFF_FFFF
}

/// CRC-32 over a u64 buffer (little-endian bytes).
pub fn crc32_u64(data: &[u64]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &x in data {
        c = crc32_update(c, &x.to_le_bytes());
    }
    c ^ 0xFFFF_FFFF
}

/// ABFT checksum lane for a complex vector: the element sum, carried next
/// to the data so a receiver can re-derive it and detect corruption that a
/// per-message CRC cannot see (e.g. a fault *inside* a reduction).
pub fn abft_lane_c64(data: &[(f64, f64)]) -> (f64, f64) {
    let mut re = 0.0;
    let mut im = 0.0;
    for &(r, i) in data {
        re += r;
        im += i;
    }
    (re, im)
}

/// ABFT checksum lane for a real vector: the element sum.
pub fn abft_lane_f64(data: &[f64]) -> f64 {
    data.iter().sum()
}

/// Verify a real-vector ABFT lane (see [`abft_verify_c64`] for semantics).
pub fn abft_verify_f64(data: &[f64], lane: f64, tol: f64) -> bool {
    let got = abft_lane_f64(data);
    if !got.is_finite() || !lane.is_finite() {
        return got.to_bits() == lane.to_bits();
    }
    let norm1: f64 = data.iter().map(|x| x.abs()).sum();
    let scale = norm1.max(lane.abs()).max(1.0);
    (got - lane).abs() <= tol * scale
}

/// Verify an ABFT checksum lane against the received data. The lane is a
/// floating-point sum, so verification is tolerance-based (association
/// order may differ across senders): relative error against the larger of
/// the lane magnitude and the data's 1-norm, with `tol` around 1e-9 for
/// the injected-corruption regime (bit flips move sums by many orders of
/// magnitude; legitimate reassociation moves them by ~1e-16).
pub fn abft_verify_c64(data: &[(f64, f64)], lane: (f64, f64), tol: f64) -> bool {
    let got = abft_lane_c64(data);
    if !got.0.is_finite() || !got.1.is_finite() || !lane.0.is_finite() || !lane.1.is_finite() {
        // A NaN/Inf lane or sum is itself evidence of corruption unless
        // both sides agree bit-for-bit.
        return got.0.to_bits() == lane.0.to_bits() && got.1.to_bits() == lane.1.to_bits();
    }
    let norm1: f64 = data.iter().map(|&(r, i)| r.abs() + i.abs()).sum();
    let scale = norm1.max(lane.0.abs() + lane.1.abs()).max(1.0);
    let err = (got.0 - lane.0).abs() + (got.1 - lane.1).abs();
    err <= tol * scale
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_published_vectors() {
        // The canonical check value for reflected IEEE CRC-32.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
        assert_eq!(crc32(b"abc"), 0x3524_41C2);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn crc32_incremental_equals_one_shot() {
        let msg = b"hello, distributed world";
        let one = crc32(msg);
        let mut state = 0xFFFF_FFFFu32;
        for chunk in msg.chunks(5) {
            state = crc32_update(state, chunk);
        }
        assert_eq!(state ^ 0xFFFF_FFFF, one);
    }

    #[test]
    fn crc32_detects_single_bit_flips() {
        let data: Vec<(f64, f64)> = (0..64).map(|i| (i as f64, -(i as f64) / 3.0)).collect();
        let clean = crc32_c64(&data);
        for flip_idx in [0usize, 17, 63] {
            let mut bad = data.clone();
            bad[flip_idx].0 = f64::from_bits(bad[flip_idx].0.to_bits() ^ (1 << 13));
            assert_ne!(crc32_c64(&bad), clean, "flip at {flip_idx} undetected");
        }
    }

    #[test]
    fn crc32_is_bit_pattern_sensitive() {
        // -0.0 == 0.0 under PartialEq but has a different bit pattern; the
        // CRC must distinguish them (payloads travel as raw bits).
        assert_ne!(crc32_c64(&[(0.0, 0.0)]), crc32_c64(&[(-0.0, 0.0)]));
        assert_eq!(crc32_f64(&[1.5, 2.5]), crc32_f64(&[1.5, 2.5]));
    }

    #[test]
    fn abft_lane_accepts_clean_and_rejects_corrupt() {
        let data: Vec<(f64, f64)> = (0..32)
            .map(|i| ((i as f64).sin(), (i as f64).cos()))
            .collect();
        let lane = abft_lane_c64(&data);
        assert!(abft_verify_c64(&data, lane, 1e-9));
        // Reassociation-level perturbation of the lane still verifies.
        let jittered = (lane.0 * (1.0 + 1e-15), lane.1);
        assert!(abft_verify_c64(&data, jittered, 1e-9));
        // A corrupted element does not.
        let mut bad = data.clone();
        bad[7].0 += 1.0e3;
        assert!(!abft_verify_c64(&bad, lane, 1e-9));
    }

    #[test]
    fn abft_lane_flags_nonfinite_disagreement() {
        let data = vec![(1.0, 2.0), (3.0, 4.0)];
        assert!(!abft_verify_c64(&data, (f64::NAN, 0.0), 1e-9));
        let nan_data = vec![(f64::NAN, 0.0)];
        let lane = abft_lane_c64(&nan_data);
        // Bitwise-equal NaN lanes agree (both sides saw the same bits).
        assert!(abft_verify_c64(&nan_data, lane, 1e-9));
    }
}
