//! Cooperative shutdown on SIGTERM/SIGINT.
//!
//! Long-running drivers (`ffw-reconstruct --groups`, `ffw-serve`) must never
//! die mid-checkpoint: the atomic-rename protocol already guarantees the
//! *published* checkpoint is never torn, but the default signal action kills
//! the process between iteration boundaries, losing the entire in-flight
//! iteration and leaving a stray `.tmp` behind. This module converts the
//! first SIGTERM/SIGINT into a flag that the iteration loops poll at their
//! checkpoint boundaries, so a terminating run flushes its last completed
//! state and exits with a documented code instead.
//!
//! The handler itself only performs an atomic store (async-signal-safe); all
//! real work happens on the polling side. A *second* signal falls back to
//! the default action (immediate termination), so a wedged run can still be
//! killed interactively.

use std::sync::atomic::{AtomicBool, Ordering};

/// Set by the signal handler; drained by [`shutdown_requested`].
static SHUTDOWN: AtomicBool = AtomicBool::new(false);

/// Whether a SIGTERM/SIGINT has been observed (or [`request_shutdown`] was
/// called). The acquire load pairs with the release store in the handler so
/// the polling thread also sees anything written before the request.
pub fn shutdown_requested() -> bool {
    SHUTDOWN.load(Ordering::Acquire)
}

/// Programmatic equivalent of receiving SIGTERM: used by the serve engine's
/// drain path and by tests (no signals involved).
pub fn request_shutdown() {
    SHUTDOWN.store(true, Ordering::Release);
}

/// Clears the flag. Test-harness hook: production drivers install once and
/// exit; tests that simulate multiple lifetimes in one process need a reset.
pub fn reset_shutdown() {
    SHUTDOWN.store(false, Ordering::Release);
}

#[cfg(unix)]
mod imp {
    use super::SHUTDOWN;
    use std::sync::atomic::Ordering;

    // Minimal hand-rolled libc surface: the build environment has no
    // registry access, so the `libc` crate is unavailable; these two symbols
    // are part of every POSIX libc ABI.
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    const SIG_DFL: usize = 0;

    extern "C" {
        // POSIX `signal(2)`. `handler` is either SIG_DFL or a function
        // pointer cast to usize.
        fn signal(signum: i32, handler: usize) -> usize;
    }

    /// The installed handler: flags shutdown, then re-arms the default
    /// action so a second signal terminates immediately.
    extern "C" fn on_signal(signum: i32) {
        // Only async-signal-safe operations here: an atomic store and a
        // direct syscall wrapper. No allocation, no locks, no printing.
        SHUTDOWN.store(true, Ordering::Release);
        // SAFETY: `signal` is async-signal-safe per POSIX; resetting the
        // disposition to SIG_DFL from inside the handler is the documented
        // way to make the *next* delivery fatal again.
        unsafe {
            signal(signum, SIG_DFL);
        }
    }

    pub fn install() {
        for s in [SIGINT, SIGTERM] {
            // SAFETY: `on_signal` is an `extern "C"` fn of the exact
            // signature `signal(2)` expects, performs only
            // async-signal-safe operations, and outlives the process; the
            // usize cast is the classical sighandler_t encoding.
            unsafe {
                signal(s, on_signal as *const () as usize);
            }
        }
    }
}

#[cfg(not(unix))]
mod imp {
    pub fn install() {}
}

/// Installs the SIGTERM/SIGINT handler (no-op on non-unix platforms).
/// Idempotent; call once at driver startup, then poll
/// [`shutdown_requested`] at every checkpoint boundary.
pub fn install_shutdown_handler() {
    imp::install();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_and_reset_roundtrip() {
        reset_shutdown();
        assert!(!shutdown_requested());
        request_shutdown();
        assert!(shutdown_requested());
        reset_shutdown();
        assert!(!shutdown_requested());
    }

    #[cfg(unix)]
    #[test]
    fn handler_installs_without_error() {
        // Installing must not crash or alter the flag.
        reset_shutdown();
        install_shutdown_handler();
        assert!(!shutdown_requested());
    }
}
