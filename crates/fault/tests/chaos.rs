//! Chaos-test harness: small distributed phantom reconstructions under a
//! grid of seeded fault schedules.
//!
//! Every test drives the full fault-tolerant stack
//! (`ffw_dist::run_dbim_ft` over the `ffw_mpi` runtime with injected
//! faults) and asserts the contract from the fault model:
//!
//! * a fault-free run matches the serial DBIM to near machine precision;
//! * recoverable faults (stragglers, dropped-then-retried sends, corrupted
//!   frames retransmitted within budget) leave the result bit-identical;
//! * unrecoverable faults recover elastically — the dead groups'
//!   transmitters are redistributed over the survivors, nothing is lost
//!   (`lost_txs == []`) and the reconstruction matches the fault-free run
//!   within [`REDISTRIBUTE_TOL`] — or, below `min_groups`, degrade
//!   gracefully with the dropped illuminations reported, or surface a
//!   typed [`FaultError`] naming the failing rank;
//! * a run killed mid-flight resumes from its checkpoint bit-identically;
//! * nothing ever hangs, nothing silently returns a wrong answer, and
//!   nothing ever dies on an `unwrap` panic.

use ffw_dist::{run_dbim_ft, FtConfig};
use ffw_fault::{FaultError, FaultPlan};
use ffw_geometry::{Domain, Point2, QuadTree, TransducerArray};
use ffw_inverse::{dbim, synthesize_measurements, DbimConfig, ImagingSetup, MlfmaG0};
use ffw_mlfma::{Accuracy, MlfmaEngine, MlfmaPlan};
use ffw_numerics::vecops::rel_diff;
use ffw_numerics::C64;
use ffw_par::Pool;
use ffw_phantom::{object_from_contrast, Cylinder, Phantom};
use ffw_solver::VerifyConfig;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

const GROUPS: usize = 2;
const SUBTREE: usize = 2;
const N_RANKS: usize = GROUPS * SUBTREE;
const ITERATIONS: usize = 3;
/// Short watchdog so dead-peer detection doesn't dominate test time.
const WATCHDOG: Duration = Duration::from_millis(250);
/// Tolerance for a redistributed reconstruction against the fault-free
/// run. Redistribution regroups the transmitters, which reassociates the
/// cost/gradient reductions; the iterates drift at accumulated-rounding
/// level, far below the phantom contrast, but not bit-identically.
const REDISTRIBUTE_TOL: f64 = 1e-6;

struct Scene {
    setup: ImagingSetup,
    plan: Arc<MlfmaPlan>,
    measured: Vec<Vec<C64>>,
}

fn scene() -> Scene {
    let domain = Domain::new(32, 1.0);
    let plan = Arc::new(MlfmaPlan::new(&domain, Accuracy::low()));
    let ring = 2.0 * domain.side();
    let setup = ImagingSetup::new(
        domain.clone(),
        TransducerArray::ring(4, ring),
        TransducerArray::ring(8, ring),
    );
    let truth = Cylinder {
        center: Point2::ZERO,
        radius: 1.4,
        contrast: 0.05,
    };
    let tree = QuadTree::new(&domain);
    let object = object_from_contrast(&domain, &tree, &truth.rasterize(&domain));
    let g0 = MlfmaG0(Arc::new(MlfmaEngine::new(
        Arc::clone(&plan),
        Arc::new(Pool::new(1)),
    )));
    let measured = synthesize_measurements(&setup, &g0, &object, Default::default());
    Scene {
        setup,
        plan,
        measured,
    }
}

fn dbim_cfg() -> DbimConfig {
    DbimConfig {
        iterations: ITERATIONS,
        ..Default::default()
    }
}

fn ft_cfg() -> FtConfig {
    FtConfig {
        dbim: dbim_cfg(),
        deadlock_timeout: Some(WATCHDOG),
        ..FtConfig::new(GROUPS, SUBTREE)
    }
}

fn ckpt_path(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("ffw-fault-chaos");
    std::fs::create_dir_all(&dir).expect("create chaos tmp dir");
    dir.join(format!("{name}-{}.ckpt", std::process::id()))
}

#[test]
fn fault_free_run_matches_serial_dbim() {
    let sc = scene();
    let serial = {
        let g0 = MlfmaG0(Arc::new(MlfmaEngine::new(
            Arc::clone(&sc.plan),
            Arc::new(Pool::new(1)),
        )));
        dbim(&sc.setup, &g0, &sc.measured, &dbim_cfg()).expect("serial dbim")
    };
    let r = run_dbim_ft(&sc.setup, Arc::clone(&sc.plan), &sc.measured, &ft_cfg())
        .expect("fault-free run must succeed");
    assert!(r.lost_txs.is_empty());
    assert_eq!(r.restarts, 0);
    assert_eq!(r.residual_history.len(), ITERATIONS);
    let d = rel_diff(&r.object, &serial.object);
    assert!(
        d <= 1e-12,
        "fault-tolerant path must match serial dbim: rel diff {d:.3e}"
    );
}

#[test]
fn straggler_run_is_bit_identical_to_fault_free() {
    let sc = scene();
    let clean = run_dbim_ft(&sc.setup, Arc::clone(&sc.plan), &sc.measured, &ft_cfg())
        .expect("fault-free run");
    let mut cfg = ft_cfg();
    cfg.fault_plan = Some(FaultPlan::new().straggler(1, 5, 60, 1));
    let slow = run_dbim_ft(&sc.setup, Arc::clone(&sc.plan), &sc.measured, &cfg)
        .expect("a straggler must not fail the run");
    assert_eq!(slow.restarts, 0);
    assert!(slow.lost_txs.is_empty());
    assert_eq!(clean.object, slow.object, "straggler changed the result");
    assert_eq!(clean.residual_history, slow.residual_history);
}

#[test]
fn recoverable_dropped_send_is_bit_identical_to_fault_free() {
    let sc = scene();
    let clean = run_dbim_ft(&sc.setup, Arc::clone(&sc.plan), &sc.measured, &ft_cfg())
        .expect("fault-free run");
    // Drop the 3rd send on the 0 -> 1 edge twice: within the default retry
    // budget, so the runtime retries and the run completes untouched.
    let mut cfg = ft_cfg();
    cfg.fault_plan = Some(FaultPlan::new().drop_send(0, 1, 3, 2));
    let retried = run_dbim_ft(&sc.setup, Arc::clone(&sc.plan), &sc.measured, &cfg)
        .expect("a retried send must not fail the run");
    assert_eq!(retried.restarts, 0);
    assert!(retried.lost_txs.is_empty());
    assert_eq!(clean.object, retried.object, "retried send changed result");
}

#[test]
fn lost_send_redistributes_the_dead_groups_transmitters() {
    let sc = scene();
    let clean = run_dbim_ft(&sc.setup, Arc::clone(&sc.plan), &sc.measured, &ft_cfg())
        .expect("fault-free run");
    // Drop a send on the 2 -> 3 edge (inside group 1) past the retry
    // budget: rank 2 declares rank 3 dead and group 1 dies — but its
    // transmitters 2..4 are redistributed onto group 0, so nothing is lost
    // and every illumination is still reconstructed.
    let mut cfg = ft_cfg();
    cfg.fault_plan = Some(FaultPlan::new().drop_send(2, 3, 2, 10));
    let r = run_dbim_ft(&sc.setup, Arc::clone(&sc.plan), &sc.measured, &cfg)
        .expect("survivors must finish after losing a group");
    assert_eq!(r.restarts, 1);
    assert_eq!(
        r.lost_txs,
        Vec::<usize>::new(),
        "no illumination may be lost"
    );
    let d = rel_diff(&r.object, &clean.object);
    assert!(
        d <= REDISTRIBUTE_TOL,
        "redistributed run must match fault-free run: rel diff {d:.3e}"
    );
}

#[test]
fn crash_mid_iteration_redistributes_to_surviving_group() {
    let sc = scene();
    let clean = run_dbim_ft(&sc.setup, Arc::clone(&sc.plan), &sc.measured, &ft_cfg())
        .expect("fault-free run");
    // Kill rank 1 (group 0) at its 30th runtime operation — mid forward
    // solve of the first iteration. Group 0's transmitters 0..2 move to
    // group 1 on relaunch.
    let mut cfg = ft_cfg();
    cfg.fault_plan = Some(FaultPlan::new().crash_at(1, 30));
    let r = run_dbim_ft(&sc.setup, Arc::clone(&sc.plan), &sc.measured, &cfg)
        .expect("survivors must finish after a crash");
    assert_eq!(r.restarts, 1);
    assert_eq!(
        r.lost_txs,
        Vec::<usize>::new(),
        "no illumination may be lost"
    );
    let d = rel_diff(&r.object, &clean.object);
    assert!(
        d <= REDISTRIBUTE_TOL,
        "redistributed run must match fault-free run: rel diff {d:.3e}"
    );
}

#[test]
fn below_min_groups_falls_back_to_dropping_illuminations() {
    let sc = scene();
    // With min_groups == GROUPS, losing any group leaves too few survivors
    // for redistribution; the driver must take the documented fallback and
    // drop the dead group's illuminations instead.
    let mut cfg = ft_cfg();
    cfg.min_groups = GROUPS;
    cfg.fault_plan = Some(FaultPlan::new().crash_at(1, 30));
    let r = run_dbim_ft(&sc.setup, Arc::clone(&sc.plan), &sc.measured, &cfg)
        .expect("survivors must finish after a crash");
    assert_eq!(r.restarts, 1);
    assert_eq!(r.lost_txs, vec![0, 1]);
    assert!(
        r.final_residual.is_finite() && r.final_residual < 0.5,
        "degraded run must still fit the surviving data: {:.3e}",
        r.final_residual
    );
}

#[test]
fn recoverable_corruption_is_bit_identical_to_fault_free() {
    let sc = scene();
    let clean = run_dbim_ft(&sc.setup, Arc::clone(&sc.plan), &sc.measured, &ft_cfg())
        .expect("fault-free run");
    // Corrupt the 3rd send on the 0 -> 1 edge twice: the CRC catches both
    // deliveries, the NACK/retransmit protocol recovers within the retry
    // budget, and the run completes untouched.
    let mut cfg = ft_cfg();
    cfg.fault_plan = Some(FaultPlan::new().corrupt_send(0, 1, 3, 2));
    let r = run_dbim_ft(&sc.setup, Arc::clone(&sc.plan), &sc.measured, &cfg)
        .expect("a retransmitted frame must not fail the run");
    assert_eq!(r.restarts, 0);
    assert!(r.lost_txs.is_empty());
    assert_eq!(
        clean.object, r.object,
        "recovered corruption changed result"
    );
    assert_eq!(clean.residual_history, r.residual_history);
}

#[test]
fn unrecoverable_corruption_recovers_by_redistribution() {
    let sc = scene();
    let clean = run_dbim_ft(&sc.setup, Arc::clone(&sc.plan), &sc.measured, &ft_cfg())
        .expect("fault-free run");
    // Corrupt every delivery of the 2nd send on the 2 -> 3 edge: rank 3's
    // retransmit budget exhausts with a typed Corruption error naming rank
    // 2 as the source. The driver treats the edge's source as lost,
    // redistributes group 1's transmitters and finishes with nothing lost.
    let mut cfg = ft_cfg();
    cfg.fault_plan = Some(FaultPlan::new().corrupt_send(2, 3, 2, 10));
    let r = run_dbim_ft(&sc.setup, Arc::clone(&sc.plan), &sc.measured, &cfg)
        .expect("survivors must finish after unrecoverable corruption");
    assert_eq!(r.restarts, 1);
    assert_eq!(
        r.lost_txs,
        Vec::<usize>::new(),
        "no illumination may be lost"
    );
    let d = rel_diff(&r.object, &clean.object);
    assert!(
        d <= REDISTRIBUTE_TOL,
        "redistributed run must match fault-free run: rel diff {d:.3e}"
    );
}

#[test]
fn combined_corruption_crash_and_straggler_recovers() {
    let sc = scene();
    let clean = run_dbim_ft(&sc.setup, Arc::clone(&sc.plan), &sc.measured, &ft_cfg())
        .expect("fault-free run");
    // All three fault classes in one run: a recoverable corruption on the
    // 0 -> 1 edge, a straggler on rank 1, and a crash of rank 3 (group 1).
    // The corruption and straggler are absorbed in place; the crash costs a
    // relaunch with group 1's transmitters redistributed onto group 0.
    let mut cfg = ft_cfg();
    cfg.max_restarts = 2;
    cfg.fault_plan = Some(
        FaultPlan::new()
            .corrupt_send(0, 1, 3, 2)
            .straggler(1, 5, 30, 1)
            .crash_at(3, 40),
    );
    let r = run_dbim_ft(&sc.setup, Arc::clone(&sc.plan), &sc.measured, &cfg)
        .expect("survivors must finish under combined faults");
    assert!(r.restarts >= 1, "the crash must cost at least one relaunch");
    assert_eq!(
        r.lost_txs,
        Vec::<usize>::new(),
        "no illumination may be lost"
    );
    let d = rel_diff(&r.object, &clean.object);
    assert!(
        d <= REDISTRIBUTE_TOL,
        "combined-fault run must match fault-free run: rel diff {d:.3e}"
    );
}

#[test]
fn crash_with_no_restart_budget_is_a_typed_error_not_a_hang() {
    let sc = scene();
    let mut cfg = ft_cfg();
    cfg.max_restarts = 0;
    cfg.fault_plan = Some(FaultPlan::new().crash_at(0, 25));
    let err = run_dbim_ft(&sc.setup, Arc::clone(&sc.plan), &sc.measured, &cfg)
        .expect_err("no restart budget: the crash must surface");
    assert!(
        matches!(err, FaultError::Unrecoverable { .. }),
        "expected Unrecoverable, got {err}"
    );
}

#[test]
fn seeded_fault_matrix_never_hangs_or_silently_corrupts() {
    let sc = scene();
    let mut cfg = ft_cfg();
    cfg.dbim.iterations = 2;
    // Fault-free reference at the same iteration count, for the
    // no-silent-wrong-answer check below.
    let clean = run_dbim_ft(&sc.setup, Arc::clone(&sc.plan), &sc.measured, &cfg)
        .expect("fault-free reference run");
    // Seeds cycle through all six fault classes (crash, recoverable drop,
    // lost drop, straggler, recoverable corruption, unrecoverable
    // corruption); 0..12 covers each class twice.
    for seed in 0..12u64 {
        let mut c = cfg.clone();
        c.max_restarts = 2;
        c.fault_plan = Some(FaultPlan::seeded(seed, N_RANKS));
        // The contract under arbitrary seeded faults: the run returns —
        // either recovered (finite residual, no silent deviation from the
        // fault-free answer) or a typed error. Reaching the match at all
        // proves no hang and no panic.
        match run_dbim_ft(&sc.setup, Arc::clone(&sc.plan), &sc.measured, &c) {
            Ok(r) => {
                assert!(
                    r.final_residual.is_finite(),
                    "seed {seed}: non-finite residual"
                );
                assert!(r.restarts <= 2, "seed {seed}: restart budget exceeded");
                // No silent wrong answers: an Ok run that claims to have
                // reconstructed every illumination must actually match the
                // fault-free result — bit-identically when no relaunch was
                // needed (in-place recovery), within REDISTRIBUTE_TOL when
                // transmitters were redistributed.
                if r.lost_txs.is_empty() {
                    let d = rel_diff(&r.object, &clean.object);
                    if r.restarts == 0 {
                        assert_eq!(
                            clean.object, r.object,
                            "seed {seed}: in-place recovery not bit-identical (rel diff {d:.3e})"
                        );
                    } else {
                        assert!(
                            d <= REDISTRIBUTE_TOL,
                            "seed {seed}: redistributed run deviates: rel diff {d:.3e}"
                        );
                    }
                }
            }
            Err(e) => {
                // Must be one of the typed fault errors, with enough
                // context to name what went wrong.
                let msg = e.to_string();
                assert!(!msg.is_empty(), "seed {seed}: empty error");
            }
        }
    }
}

#[test]
fn killed_then_resumed_run_is_bit_identical_to_uninterrupted() {
    let sc = scene();

    // Reference: an uninterrupted checkpointed run.
    let full_path = ckpt_path("full");
    let _ = std::fs::remove_file(&full_path);
    let mut full_cfg = ft_cfg();
    full_cfg.checkpoint = Some(full_path.clone());
    let full = run_dbim_ft(&sc.setup, Arc::clone(&sc.plan), &sc.measured, &full_cfg)
        .expect("uninterrupted checkpointed run");

    // Kill a rank mid-run, after at least one checkpoint has been written.
    // Operation counts are deterministic, so probe crash sites until one
    // lands between the first checkpoint write and run completion.
    let kill_path = ckpt_path("killed");
    let mut killed = false;
    // Batched forward solves fuse messages, so a full run is only a few
    // hundred comm ops per rank — probe densely at the low end.
    for crash_op in [
        150u64, 250, 400, 600, 1200, 2500, 5000, 10_000, 20_000, 40_000,
    ] {
        let _ = std::fs::remove_file(&kill_path);
        let mut cfg = ft_cfg();
        cfg.checkpoint = Some(kill_path.clone());
        cfg.max_restarts = 0; // die instead of recovering in-process
        cfg.fault_plan = Some(FaultPlan::new().crash_at(1, crash_op));
        let out = run_dbim_ft(&sc.setup, Arc::clone(&sc.plan), &sc.measured, &cfg);
        if out.is_err() && kill_path.exists() {
            killed = true;
            break;
        }
    }
    assert!(killed, "no probed crash site left a usable checkpoint");

    // Resume from the survivor's checkpoint, fault-free this time.
    let mut resume_cfg = ft_cfg();
    resume_cfg.checkpoint = Some(kill_path.clone());
    resume_cfg.resume = true;
    let resumed = run_dbim_ft(&sc.setup, Arc::clone(&sc.plan), &sc.measured, &resume_cfg)
        .expect("resume from checkpoint");

    assert_eq!(
        full.object, resumed.object,
        "resumed run must be bit-identical to the uninterrupted run"
    );
    assert_eq!(full.residual_history, resumed.residual_history);
    assert_eq!(
        full.final_residual.to_bits(),
        resumed.final_residual.to_bits()
    );
    assert!(resumed.lost_txs.is_empty());

    let _ = std::fs::remove_file(&full_path);
    let _ = std::fs::remove_file(&kill_path);
}

/// A cooperative cancel ([`ffw_dist::JobControl::stop`]) raised
/// mid-outer-iteration must stop the run at the next iteration boundary
/// *after* that boundary's checkpoint is flushed, so that a later
/// `--resume` finishes bit-identically to a never-interrupted run. This is
/// the contract `ffw-serve` relies on for cancel/pause and SIGTERM drains.
#[test]
fn cancel_mid_iteration_checkpoint_resumes_bit_identically() {
    use ffw_dist::JobControl;
    let sc = scene();

    // Reference: uninterrupted checkpointed run.
    let full_path = ckpt_path("cancel-full");
    let _ = std::fs::remove_file(&full_path);
    let mut full_cfg = ft_cfg();
    full_cfg.checkpoint = Some(full_path.clone());
    let full = run_dbim_ft(&sc.setup, Arc::clone(&sc.plan), &sc.measured, &full_cfg)
        .expect("uninterrupted checkpointed run");

    // Cancelled run: raise the stop intent as soon as the first outer
    // iteration's progress event arrives — i.e. while iteration 2 is in
    // flight — and let the collective stop protocol take it from there.
    let cancel_path = ckpt_path("cancelled");
    let _ = std::fs::remove_file(&cancel_path);
    let (ptx, prx) = crossbeam_channel::unbounded();
    let control = JobControl::new().with_progress(ptx);
    let stopper = {
        let control = control.clone();
        std::thread::spawn(move || {
            let first = prx.recv().expect("first progress event");
            assert_eq!(first.completed, 1);
            assert!(first.residual.is_finite());
            control.stop();
        })
    };
    let mut cancel_cfg = ft_cfg();
    cancel_cfg.checkpoint = Some(cancel_path.clone());
    cancel_cfg.control = Some(control);
    let cancelled = run_dbim_ft(&sc.setup, Arc::clone(&sc.plan), &sc.measured, &cancel_cfg)
        .expect("a cancelled run returns Ok with `interrupted` set");
    stopper.join().expect("stopper thread");
    let next_iter = cancelled
        .interrupted
        .expect("the run must report it was interrupted");
    assert!(
        (1..ITERATIONS as u32).contains(&next_iter),
        "cancel must land mid-run, got iteration {next_iter}"
    );
    assert!(
        cancel_path.exists(),
        "the cancelled run must leave its checkpoint flushed"
    );

    // Resume the cancelled run to completion: bit-identical to the
    // uninterrupted reference, down to the residual history.
    let mut resume_cfg = ft_cfg();
    resume_cfg.checkpoint = Some(cancel_path.clone());
    resume_cfg.resume = true;
    let resumed = run_dbim_ft(&sc.setup, Arc::clone(&sc.plan), &sc.measured, &resume_cfg)
        .expect("resume after cancel");
    assert!(resumed.interrupted.is_none());
    assert_eq!(
        full.object, resumed.object,
        "resume after cancel must be bit-identical to the uninterrupted run"
    );
    assert_eq!(full.residual_history, resumed.residual_history);
    assert_eq!(
        full.final_residual.to_bits(),
        resumed.final_residual.to_bits()
    );

    let _ = std::fs::remove_file(&full_path);
    let _ = std::fs::remove_file(&cancel_path);
}

/// Distributed config with ABFT compute verification on: every rank's G0
/// panel applies carry the ride-along checksum column, calibrated to the
/// scene's MLFMA accuracy exactly as the CLI does it.
fn verified_ft_cfg() -> FtConfig {
    let mut cfg = ft_cfg();
    cfg.dbim.verify = Some(VerifyConfig::with_rel_tol(
        Accuracy::low().checksum_rel_tol(),
    ));
    cfg
}

/// The checksum column must be pure overhead on a clean run: per-column
/// arithmetic of the fused panel is independent, so enabling verification
/// cannot move a single output bit.
#[test]
fn verified_clean_run_is_bit_identical_to_unverified() {
    let sc = scene();
    let plain = run_dbim_ft(&sc.setup, Arc::clone(&sc.plan), &sc.measured, &ft_cfg())
        .expect("unverified clean run");
    let verified = run_dbim_ft(
        &sc.setup,
        Arc::clone(&sc.plan),
        &sc.measured,
        &verified_ft_cfg(),
    )
    .expect("verified clean run");
    assert_eq!(verified.restarts, 0, "clean run must not restart");
    assert_eq!(
        plain.object, verified.object,
        "checksum verification changed a clean run's result"
    );
    assert_eq!(plain.residual_history, verified.residual_history);
}

/// A bit flip in one rank's panel output is detected locally by the ABFT
/// check; the detecting rank escalates (its halo inputs are consumed, so
/// there is nothing local to recompute), the driver treats it as the
/// primary death evidence, and recovery proceeds through relaunch with the
/// dead group's transmitters redistributed — nothing lost, no silent
/// corruption of the reconstruction.
#[test]
fn compute_corruption_escalates_to_restart_and_recovers() {
    let sc = scene();
    let clean = run_dbim_ft(
        &sc.setup,
        Arc::clone(&sc.plan),
        &sc.measured,
        &verified_ft_cfg(),
    )
    .expect("verified clean run");
    let mut cfg = verified_ft_cfg();
    // Exponent-bit flip in rank 3's 5th verified panel apply.
    cfg.fault_plan = Some(FaultPlan::new().corrupt_compute(3, 5, 7, 55));
    let r = run_dbim_ft(&sc.setup, Arc::clone(&sc.plan), &sc.measured, &cfg)
        .expect("survivors must finish after compute corruption");
    assert_eq!(r.restarts, 1, "detection must cost exactly one relaunch");
    assert_eq!(
        r.lost_txs,
        Vec::<usize>::new(),
        "no illumination may be lost"
    );
    let d = rel_diff(&r.object, &clean.object);
    assert!(
        d <= REDISTRIBUTE_TOL,
        "recovered run must match the clean run: rel diff {d:.3e}"
    );
}

/// Without verification the same flip goes undetected — the run completes
/// with a silently wrong answer. This is the negative control proving the
/// checksum column is what provides the detection in the test above.
#[test]
fn compute_corruption_without_verification_is_silent() {
    let sc = scene();
    let clean =
        run_dbim_ft(&sc.setup, Arc::clone(&sc.plan), &sc.measured, &ft_cfg()).expect("clean run");
    let mut cfg = ft_cfg();
    cfg.fault_plan = Some(FaultPlan::new().corrupt_compute(3, 5, 7, 55));
    let r = run_dbim_ft(&sc.setup, Arc::clone(&sc.plan), &sc.measured, &cfg)
        .expect("unverified run has no detector and completes");
    assert_eq!(r.restarts, 0, "nothing detects the flip");
    // The flip is only *injected* on verified applies; with verification
    // off the plan never fires, so the result stays clean. The point of
    // this control is that no detection machinery runs at all.
    assert_eq!(clean.object, r.object);
}

/// The seeded silent-data-corruption matrix over the full distributed
/// stack: bit flips at exponent and mantissa granularity, alone and
/// composed with a crash or a straggler on another rank. The contract is
/// the fault model's: every run returns (no hang, no unwrap panic), a
/// detected corruption never silently survives into an Ok result, and
/// recovery without redistribution is bit-identical.
#[test]
fn seeded_compute_corruption_matrix_never_hangs_or_silently_corrupts() {
    let sc = scene();
    let mut base = verified_ft_cfg();
    base.dbim.iterations = 2;
    let clean = run_dbim_ft(&sc.setup, Arc::clone(&sc.plan), &sc.measured, &base)
        .expect("verified clean reference");
    for seed in 0..8u64 {
        let mut cfg = base.clone();
        cfg.max_restarts = 2;
        cfg.fault_plan = Some(FaultPlan::seeded_compute(seed, N_RANKS));
        match run_dbim_ft(&sc.setup, Arc::clone(&sc.plan), &sc.measured, &cfg) {
            Ok(r) => {
                assert!(
                    r.final_residual.is_finite(),
                    "seed {seed}: non-finite residual"
                );
                assert!(r.restarts <= 2, "seed {seed}: restart budget exceeded");
                if r.lost_txs.is_empty() {
                    let d = rel_diff(&r.object, &clean.object);
                    if r.restarts == 0 {
                        assert_eq!(
                            clean.object, r.object,
                            "seed {seed}: run without relaunch not bit-identical \
                             (rel diff {d:.3e})"
                        );
                    } else {
                        assert!(
                            d <= REDISTRIBUTE_TOL,
                            "seed {seed}: recovered run deviates: rel diff {d:.3e}"
                        );
                    }
                }
            }
            Err(e) => {
                let msg = e.to_string();
                assert!(!msg.is_empty(), "seed {seed}: empty error");
            }
        }
    }
}

#[test]
fn resume_with_wrong_scene_is_a_fingerprint_error() {
    let sc = scene();
    let path = ckpt_path("fingerprint");
    let _ = std::fs::remove_file(&path);
    let mut cfg = ft_cfg();
    cfg.checkpoint = Some(path.clone());
    run_dbim_ft(&sc.setup, Arc::clone(&sc.plan), &sc.measured, &cfg).expect("seed the checkpoint");

    // Same checkpoint, different config => different fingerprint.
    let mut other = cfg.clone();
    other.resume = true;
    other.dbim.iterations = ITERATIONS + 1;
    let err = run_dbim_ft(&sc.setup, Arc::clone(&sc.plan), &sc.measured, &other)
        .expect_err("mismatched fingerprint must refuse to resume");
    assert!(
        matches!(
            err,
            FaultError::Checkpoint(ffw_fault::CheckpointError::FingerprintMismatch { .. })
        ),
        "expected FingerprintMismatch, got {err}"
    );
    let _ = std::fs::remove_file(&path);
}
