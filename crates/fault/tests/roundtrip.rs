//! Round-trip regression tests for the PR-2 serialization surfaces:
//! [`Checkpoint`] encode/decode and save/load must be bit-identical, and
//! [`FaultPlan::seeded`] must be a pure function of `(seed, n_ranks)`.

use ffw_fault::{Checkpoint, CheckpointError, FaultPlan};
use std::path::PathBuf;

/// A checkpoint exercising every field, including float values whose bit
/// patterns break value-level (non-bitwise) round-trips: negative zero and
/// a subnormal.
fn rich_checkpoint() -> Checkpoint {
    Checkpoint {
        fingerprint: 0x5EED_CAFE_0042_1337,
        next_iter: 7,
        lost_txs: vec![0, 3, 12],
        residual_history: vec![1.0, 0.25, 3.0e-2, f64::MIN_POSITIVE / 8.0],
        object: vec![(0.1, -0.2), (-0.0, 0.0), (1.0e-300, -1.0e300)],
        grad_prev: vec![(2.0, 3.0); 3],
        dir: vec![(-1.5, 0.5); 3],
        fields: vec![
            (0, vec![(0.0, 0.0), (9.75, -0.125), (1.0, 2.0)]),
            (
                2,
                vec![(std::f64::consts::PI, -0.0), (0.5, 0.5), (6.0, 7.0)],
            ),
        ],
    }
}

fn tmp_path(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("ffw-fault-roundtrip");
    std::fs::create_dir_all(&dir).expect("create tmp dir");
    dir.join(format!("{name}-{}.ckpt", std::process::id()))
}

#[test]
fn checkpoint_encode_decode_is_identity() {
    let ckpt = rich_checkpoint();
    let bytes = ckpt.encode();
    let back = Checkpoint::decode(&bytes).expect("decode own encoding");
    assert_eq!(back, ckpt);
    // Bit-identity, not just value equality: re-encoding the decoded
    // checkpoint must reproduce the byte stream exactly (floats travel as
    // raw bits, so -0.0 and subnormals survive).
    assert_eq!(back.encode(), bytes);
}

#[test]
fn checkpoint_negative_zero_survives_bitwise() {
    let ckpt = rich_checkpoint();
    let back = Checkpoint::decode(&ckpt.encode()).expect("decode");
    // (-0.0, 0.0) at object[1]: sign bit must survive even though
    // -0.0 == 0.0 under PartialEq.
    assert!(back.object[1].0.to_bits() == (-0.0f64).to_bits());
}

#[test]
fn checkpoint_save_load_is_identity() {
    let ckpt = rich_checkpoint();
    let path = tmp_path("save-load");
    ckpt.save(&path).expect("save checkpoint");
    // The on-disk bytes are exactly the encoding (atomic rename, no framing
    // beyond what encode() writes).
    assert_eq!(std::fs::read(&path).expect("read back"), ckpt.encode());
    let back = Checkpoint::load(&path, ckpt.fingerprint).expect("load checkpoint");
    assert_eq!(back, ckpt);
    std::fs::remove_file(&path).ok();
}

#[test]
fn checkpoint_save_leaves_no_tempfile() {
    // save() stages into `<path>.tmp` then renames and syncs the parent
    // directory; the staging file must never survive a successful save.
    let ckpt = rich_checkpoint();
    let path = tmp_path("no-tempfile");
    ckpt.save(&path).expect("save checkpoint");
    let tmp = path.with_extension("tmp");
    assert!(
        !tmp.exists(),
        "staging file {} left behind after save",
        tmp.display()
    );
    assert!(path.exists(), "checkpoint missing after save");
    // Saving over an existing checkpoint must also leave no staging file.
    ckpt.save(&path).expect("re-save checkpoint");
    assert!(!tmp.exists(), "staging file left behind after re-save");
    std::fs::remove_file(&path).ok();
}

#[test]
fn checkpoint_load_rejects_wrong_fingerprint() {
    let ckpt = rich_checkpoint();
    let path = tmp_path("wrong-fp");
    ckpt.save(&path).expect("save checkpoint");
    match Checkpoint::load(&path, ckpt.fingerprint ^ 1) {
        Err(CheckpointError::FingerprintMismatch { expected, found }) => {
            assert_eq!(expected, ckpt.fingerprint ^ 1);
            assert_eq!(found, ckpt.fingerprint);
        }
        other => panic!("expected FingerprintMismatch, got {other:?}"),
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn checkpoint_decode_rejects_corruption() {
    let bytes = rich_checkpoint().encode();
    // Truncation anywhere must error, never panic or return garbage.
    for cut in [0, 1, 7, 8, bytes.len() / 2, bytes.len() - 1] {
        assert!(
            Checkpoint::decode(&bytes[..cut]).is_err(),
            "decode accepted a {cut}-byte prefix"
        );
    }
    // A flipped payload byte must fail the checksum.
    let mut flipped = bytes.clone();
    let mid = flipped.len() / 2;
    flipped[mid] ^= 0x40;
    assert!(matches!(
        Checkpoint::decode(&flipped),
        Err(CheckpointError::ChecksumMismatch { .. })
    ));
}

#[test]
fn seeded_fault_plans_are_deterministic() {
    // Same (seed, n_ranks) -> identical plan, across repeated derivations.
    // FaultPlan is a plain data schedule, so the Debug form captures every
    // rule; equal Debug forms mean the runtime replays identical faults.
    for n_ranks in [2usize, 4, 7] {
        for seed in 0u64..32 {
            let a = format!("{:?}", FaultPlan::seeded(seed, n_ranks));
            let b = format!("{:?}", FaultPlan::seeded(seed, n_ranks));
            assert_eq!(a, b, "seed {seed} n_ranks {n_ranks} not reproducible");
        }
    }
}

#[test]
fn seeded_fault_plans_cover_every_fault_class() {
    // Seeds cycle crash / recoverable drop / lost drop / straggler; a seed
    // sweep must produce non-empty plans of more than one shape.
    let reprs: Vec<String> = (0..8)
        .map(|seed| format!("{:?}", FaultPlan::seeded(seed, 4)))
        .collect();
    for (seed, r) in reprs.iter().enumerate() {
        assert!(
            !FaultPlan::seeded(seed as u64, 4).is_empty(),
            "seed {seed} produced an empty plan"
        );
        assert!(!r.is_empty());
    }
    let distinct: std::collections::BTreeSet<&String> = reprs.iter().collect();
    assert!(
        distinct.len() >= 4,
        "seed sweep produced only {} distinct plans",
        distinct.len()
    );
}
