//! Demonstrates the fault-tolerance stack end to end:
//!
//! 1. a fault-free distributed reconstruction (reference),
//! 2. a seeded rank crash with graceful degradation (the surviving
//!    illumination group finishes and the lost transmitters are reported),
//! 3. a run killed mid-flight and resumed bit-identically from its
//!    checkpoint.
//!
//! Run with: `cargo run --release -p ffw-fault --example fault_demo`

use ffw_dist::{run_dbim_ft, FtConfig};
use ffw_fault::FaultPlan;
use ffw_geometry::{Domain, Point2, QuadTree, TransducerArray};
use ffw_inverse::{synthesize_measurements, DbimConfig, ImagingSetup, MlfmaG0};
use ffw_mlfma::{Accuracy, MlfmaEngine, MlfmaPlan};
use ffw_par::Pool;
use ffw_phantom::{object_from_contrast, Cylinder, Phantom};
use std::sync::Arc;
use std::time::Duration;

fn main() {
    let domain = Domain::new(32, 1.0);
    let plan = Arc::new(MlfmaPlan::new(&domain, Accuracy::low()));
    let ring = 2.0 * domain.side();
    let setup = ImagingSetup::new(
        domain.clone(),
        TransducerArray::ring(4, ring),
        TransducerArray::ring(8, ring),
    );
    let truth = Cylinder {
        center: Point2::ZERO,
        radius: 1.4,
        contrast: 0.05,
    };
    let tree = QuadTree::new(&domain);
    let object = object_from_contrast(&domain, &tree, &truth.rasterize(&domain));
    let g0 = MlfmaG0(Arc::new(MlfmaEngine::new(
        Arc::clone(&plan),
        Arc::new(Pool::new(1)),
    )));
    let measured = synthesize_measurements(&setup, &g0, &object, Default::default());

    let base = FtConfig {
        dbim: DbimConfig {
            iterations: 3,
            ..Default::default()
        },
        deadlock_timeout: Some(Duration::from_millis(250)),
        ..FtConfig::new(2, 2)
    };

    // --- 1. fault-free reference ---
    let clean = run_dbim_ft(&setup, Arc::clone(&plan), &measured, &base).expect("fault-free run");
    println!(
        "fault-free run:    residual {:.3e}, lost illuminations {:?}, restarts {}",
        clean.final_residual, clean.lost_txs, clean.restarts
    );

    // --- 2. crash a rank, degrade gracefully ---
    let mut crash = base.clone();
    crash.fault_plan = Some(FaultPlan::new().crash_at(1, 30));
    let degraded = run_dbim_ft(&setup, Arc::clone(&plan), &measured, &crash).expect("degraded run");
    println!(
        "rank 1 crashed:    residual {:.3e}, lost illuminations {:?}, restarts {}",
        degraded.final_residual, degraded.lost_txs, degraded.restarts
    );

    // --- 3. kill mid-run, then resume from the checkpoint ---
    let ckpt = std::env::temp_dir().join(format!("ffw-fault-demo-{}.ckpt", std::process::id()));
    let _ = std::fs::remove_file(&ckpt);
    // Operation counts are deterministic; probe crash sites until one lands
    // after the first checkpoint write but before the run completes.
    for crash_op in [600u64, 1200, 2500, 5000, 10_000] {
        let _ = std::fs::remove_file(&ckpt);
        let mut kill = base.clone();
        kill.checkpoint = Some(ckpt.clone());
        kill.max_restarts = 0;
        kill.fault_plan = Some(FaultPlan::new().crash_at(1, crash_op));
        if let Err(e) = run_dbim_ft(&setup, Arc::clone(&plan), &measured, &kill) {
            if ckpt.exists() {
                println!("killed mid-run:    {e}");
                break;
            }
        }
    }

    let mut resume = base.clone();
    resume.checkpoint = Some(ckpt.clone());
    resume.resume = ckpt.exists();
    let resumed = run_dbim_ft(&setup, Arc::clone(&plan), &measured, &resume).expect("resumed run");
    let identical = resumed.object == clean.object;
    println!(
        "resumed run:       residual {:.3e}, bit-identical to fault-free: {identical}",
        resumed.final_residual
    );
    let _ = std::fs::remove_file(&ckpt);
}
