//! # ffw-par
//!
//! A from-scratch scoped thread pool: the intra-node parallel substrate
//! standing in for the paper's OpenMP layer (Section IV-C).
//!
//! The pool owns long-lived pinned workers (like an OpenMP parallel region's
//! thread team). Work is distributed by an atomic chunk dispenser, which
//! gives the same dynamic load balancing `schedule(dynamic, grain)` would:
//! MLFMA levels with many clusters and few samples use a large item count and
//! small grain (cluster-parallel), while levels with few clusters and many
//! samples parallelize over samples — the calling crate picks the axis, the
//! pool only sees `(n_items, grain)`.
//!
//! Safety model: `parallel_for` erases the closure's lifetime to hand it to
//! the workers, and does not return until every chunk has completed (tracked
//! by an atomic chunk counter), so the borrow can never dangle. Worker panics
//! are caught and re-raised on the caller thread.

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

use crossbeam_channel::{unbounded, Receiver, Sender};
use std::ops::Range;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use std::thread::JoinHandle;

/// Type-erased view of the user closure: executes one chunk of the iteration
/// space.
struct Job {
    /// Pointer to a `&(dyn Fn(Range<usize>) + Sync)` living on the caller's
    /// stack; valid until all chunks complete.
    func: *const (dyn Fn(Range<usize>) + Sync),
    state: Arc<JobState>,
}

// SAFETY: the closure behind `func` is `Sync`, and `parallel_chunks` blocks
// until all chunks complete before the referent can be dropped.
unsafe impl Send for Job {}

struct JobState {
    n_items: usize,
    grain: usize,
    /// Next unclaimed item index.
    dispenser: AtomicUsize,
    /// Chunks completed so far (compared against total chunk count).
    chunks_done: AtomicUsize,
    total_chunks: usize,
    panicked: AtomicBool,
    done_tx: Sender<()>,
}

impl JobState {
    /// Claims and runs chunks until the dispenser is exhausted.
    ///
    /// SAFETY contract: `func` must point to a closure that stays alive while
    /// any chunk remains incomplete. The pointer is dereferenced only *after*
    /// a chunk is successfully claimed: a successful claim means
    /// `chunks_done < total_chunks`, so the caller of `parallel_chunks` is
    /// still blocked and the closure on its stack is still alive. A stale job
    /// copy dequeued after completion finds the dispenser exhausted and never
    /// touches the pointer.
    unsafe fn run(&self, func: *const (dyn Fn(Range<usize>) + Sync)) {
        loop {
            let start = self.dispenser.fetch_add(self.grain, Ordering::Relaxed);
            if start >= self.n_items {
                break;
            }
            // SAFETY: the claim above succeeded, so per this function's
            // contract the caller is still blocked and the closure is alive.
            let func = unsafe { &*func };
            let end = (start + self.grain).min(self.n_items);
            let result = catch_unwind(AssertUnwindSafe(|| func(start..end)));
            if result.is_err() {
                self.panicked.store(true, Ordering::Release);
            }
            let done = self.chunks_done.fetch_add(1, Ordering::AcqRel) + 1;
            if done == self.total_chunks {
                // Last chunk: wake the caller. Ignore a disconnected receiver
                // (cannot happen while the caller is blocked, but be safe).
                let _ = self.done_tx.send(());
            }
        }
    }
}

/// A fixed-size pool of worker threads.
pub struct Pool {
    injector: Sender<Job>,
    jobs_rx: Receiver<Job>,
    workers: Vec<JoinHandle<()>>,
    n_threads: usize,
}

impl Pool {
    /// Creates a pool executing on `n_threads` threads total: `n_threads - 1`
    /// workers plus the calling thread, which always participates.
    pub fn new(n_threads: usize) -> Self {
        let n_threads = n_threads.max(1);
        let (tx, rx) = unbounded::<Job>();
        let workers = (0..n_threads - 1)
            .map(|i| {
                let rx = rx.clone();
                std::thread::Builder::new()
                    .name(format!("ffw-par-{i}"))
                    .spawn(move || {
                        while let Ok(job) = rx.recv() {
                            // SAFETY: per `JobState::run`'s contract, the
                            // pointer is only dereferenced after a chunk claim
                            // proves the caller is still blocked.
                            unsafe { job.state.run(job.func) };
                        }
                    })
                    .expect("spawn pool worker")
            })
            .collect();
        Pool {
            injector: tx,
            jobs_rx: rx,
            workers,
            n_threads,
        }
    }

    /// Number of threads (including the caller).
    pub fn n_threads(&self) -> usize {
        self.n_threads
    }

    /// The process-wide pool, sized to the available parallelism. Initialized
    /// on first use; `FFW_THREADS` overrides the size.
    ///
    /// # Panics
    ///
    /// Panics on first use if `FFW_THREADS` is set to something that is not a
    /// positive integer. A typo'd override silently falling back to the core
    /// count would be a misconfiguration that only shows up as a perf anomaly;
    /// failing loudly is cheaper to debug.
    pub fn global() -> &'static Pool {
        Pool::global_arc()
    }

    /// Like [`Pool::global`], but returns a clonable `Arc` handle so the
    /// shared pool can be passed where an owned `Arc<Pool>` is required
    /// (e.g. `MlfmaEngine::new`) without constructing a second pool.
    pub fn global_arc() -> &'static Arc<Pool> {
        static GLOBAL: OnceLock<Arc<Pool>> = OnceLock::new();
        GLOBAL.get_or_init(|| {
            let n = match std::env::var("FFW_THREADS") {
                Ok(raw) => match raw.trim().parse::<usize>() {
                    Ok(0) => {
                        panic!("FFW_THREADS={raw:?} is invalid: the pool needs at least 1 thread")
                    }
                    Ok(n) => n,
                    Err(_) => panic!(
                        "FFW_THREADS={raw:?} is invalid: expected a positive integer \
                         (e.g. FFW_THREADS=8)"
                    ),
                },
                Err(_) => std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1),
            };
            Arc::new(Pool::new(n))
        })
    }

    /// Runs `f` over `0..n_items` split into chunks of `grain`, in parallel.
    /// Blocks until every chunk has run. Panics (after all chunks finish) if
    /// any chunk panicked.
    pub fn parallel_chunks(&self, n_items: usize, grain: usize, f: impl Fn(Range<usize>) + Sync) {
        if n_items == 0 {
            return;
        }
        let grain = grain.max(1);
        let total_chunks = n_items.div_ceil(grain);
        let (done_tx, done_rx) = crossbeam_channel::bounded(1);
        let state = Arc::new(JobState {
            n_items,
            grain,
            dispenser: AtomicUsize::new(0),
            chunks_done: AtomicUsize::new(0),
            total_chunks,
            panicked: AtomicBool::new(false),
            done_tx,
        });

        let f_ref: &(dyn Fn(Range<usize>) + Sync) = &f;
        // SAFETY: lifetime erasure; `JobState::run`'s claim protocol ensures
        // the pointer is never dereferenced after this function returns.
        let func: *const (dyn Fn(Range<usize>) + Sync + 'static) = unsafe {
            std::mem::transmute::<
                *const (dyn Fn(Range<usize>) + Sync + '_),
                *const (dyn Fn(Range<usize>) + Sync + 'static),
            >(f_ref)
        };
        // Wake the workers only if there is enough work to share.
        if self.n_threads > 1 && total_chunks > 1 {
            let copies = (self.n_threads - 1).min(total_chunks - 1);
            for _ in 0..copies {
                let job = Job {
                    func,
                    state: Arc::clone(&state),
                };
                self.injector.send(job).expect("pool alive");
            }
        }
        // The caller participates in the same dispenser.
        // SAFETY: `f` is alive for this whole function body.
        unsafe { state.run(func) };
        // Wait until the *last* chunk (possibly on a worker) completes.
        while state.chunks_done.load(Ordering::Acquire) < total_chunks {
            let _ = done_rx.recv();
        }
        if state.panicked.load(Ordering::Acquire) {
            panic!("ffw-par: a parallel task panicked");
        }
    }

    /// Runs `f(i)` for every `i in 0..n_items` in parallel with the given
    /// grain size.
    pub fn parallel_for(&self, n_items: usize, grain: usize, f: impl Fn(usize) + Sync) {
        self.parallel_chunks(n_items, grain, |range| {
            for i in range {
                f(i);
            }
        });
    }

    /// Parallel map-reduce: maps each chunk to a partial value, then folds the
    /// partials sequentially (deterministically, in chunk order).
    pub fn map_reduce<T: Send>(
        &self,
        n_items: usize,
        grain: usize,
        map: impl Fn(Range<usize>) -> T + Sync,
        identity: T,
        mut fold: impl FnMut(T, T) -> T,
    ) -> T {
        if n_items == 0 {
            return identity;
        }
        let grain = grain.max(1);
        let total_chunks = n_items.div_ceil(grain);
        let partials: Vec<parking_lot::Mutex<Option<T>>> = (0..total_chunks)
            .map(|_| parking_lot::Mutex::new(None))
            .collect();
        self.parallel_chunks(n_items, grain, |range| {
            let chunk_idx = range.start / grain;
            *partials[chunk_idx].lock() = Some(map(range));
        });
        let mut acc = identity;
        for p in partials {
            if let Some(v) = p.into_inner() {
                acc = fold(acc, v);
            }
        }
        acc
    }

    /// Splits `data` into disjoint mutable chunks of `grain` elements and
    /// processes them in parallel: the mutable analogue of
    /// [`Self::parallel_chunks`]. Each invocation receives the chunk's start
    /// offset and an exclusive sub-slice.
    pub fn for_each_chunk_mut<T: Send>(
        &self,
        data: &mut [T],
        grain: usize,
        f: impl Fn(usize, &mut [T]) + Sync,
    ) {
        let grain = grain.max(1);
        let n = data.len();
        // Capture the pointer itself (not a usize round-trip, which would
        // strip provenance and is UB under the strict-provenance model that
        // Miri checks): the wrapper only exists to make the capture `Sync`.
        struct SyncPtr<T>(*mut T);
        // SAFETY: the raw pointer is only dereferenced through the disjoint
        // per-chunk sub-slices below, so sharing it across workers is sound.
        unsafe impl<T> Sync for SyncPtr<T> {}
        impl<T> SyncPtr<T> {
            // Accessor (rather than field access in the closure) so the
            // closure captures the whole Sync wrapper, not the raw field.
            fn get(&self) -> *mut T {
                self.0
            }
        }
        let base = SyncPtr(data.as_mut_ptr());
        self.parallel_chunks(n, grain, move |range| {
            // SAFETY: `range.start <= n`, in bounds of the allocation `base`
            // points into (and `base` keeps its provenance, no usize detour).
            let ptr = unsafe { base.get().add(range.start) };
            // SAFETY: ranges produced by the dispenser are disjoint and within
            // bounds, so each task gets an exclusive sub-slice.
            let chunk = unsafe { std::slice::from_raw_parts_mut(ptr, range.len()) };
            f(range.start, chunk);
        });
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        // Close the channel so workers exit, then join them.
        let (dead_tx, _) = unbounded::<Job>();
        self.injector = dead_tx;
        // Drain any jobs that were never picked up (none should remain).
        while self.jobs_rx.try_recv().is_ok() {}
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn parallel_for_visits_every_index_once() {
        let pool = Pool::new(4);
        let n = 10_000;
        let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        pool.parallel_for(n, 13, |i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn sum_matches_sequential() {
        let pool = Pool::new(3);
        let total = AtomicU64::new(0);
        pool.parallel_for(1000, 7, |i| {
            total.fetch_add(i as u64, Ordering::Relaxed);
        });
        assert_eq!(total.load(Ordering::Relaxed), 999 * 1000 / 2);
    }

    #[test]
    fn map_reduce_deterministic() {
        let pool = Pool::new(4);
        let result = pool.map_reduce(
            1_000,
            32,
            |range| range.map(|i| i as f64).sum::<f64>(),
            0.0,
            |a, b| a + b,
        );
        assert_eq!(result, (0..1000).map(|i| i as f64).sum::<f64>());
    }

    #[test]
    fn chunk_mut_disjoint_writes() {
        let pool = Pool::new(4);
        let mut data = vec![0u64; 5000];
        pool.for_each_chunk_mut(&mut data, 17, |start, chunk| {
            for (j, v) in chunk.iter_mut().enumerate() {
                *v = (start + j) as u64 * 3;
            }
        });
        assert!(data.iter().enumerate().all(|(i, &v)| v == i as u64 * 3));
    }

    #[test]
    fn zero_items_is_noop() {
        let pool = Pool::new(2);
        pool.parallel_for(0, 8, |_| panic!("must not run"));
    }

    #[test]
    fn single_thread_pool_works() {
        let pool = Pool::new(1);
        let total = AtomicUsize::new(0);
        pool.parallel_for(100, 9, |i| {
            total.fetch_add(i, Ordering::Relaxed);
        });
        assert_eq!(total.load(Ordering::Relaxed), 4950);
    }

    #[test]
    fn reusable_across_many_jobs() {
        let pool = Pool::new(4);
        for round in 0..50 {
            let total = AtomicUsize::new(0);
            pool.parallel_for(64, 5, |i| {
                total.fetch_add(i + round, Ordering::Relaxed);
            });
            assert_eq!(total.load(Ordering::Relaxed), 64 * round + 2016);
        }
    }

    #[test]
    fn panic_propagates() {
        let pool = Pool::new(2);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.parallel_for(100, 1, |i| {
                if i == 37 {
                    panic!("boom");
                }
            });
        }));
        assert!(result.is_err());
        // Pool must still be usable afterwards.
        let total = AtomicUsize::new(0);
        pool.parallel_for(10, 2, |i| {
            total.fetch_add(i, Ordering::Relaxed);
        });
        assert_eq!(total.load(Ordering::Relaxed), 45);
    }

    #[test]
    fn global_pool_is_singleton() {
        let a = Pool::global() as *const Pool;
        let b = Pool::global() as *const Pool;
        assert_eq!(a, b);
        assert!(Pool::global().n_threads() >= 1);
        // The Arc handle aliases the same pool, not a second one.
        let c = Arc::as_ptr(Pool::global_arc());
        assert_eq!(a, c);
    }

    #[test]
    fn nested_data_borrow_is_sound() {
        // Borrow a stack vector inside the closure; must compile and be correct.
        let pool = Pool::new(4);
        let input: Vec<f64> = (0..777).map(|i| i as f64).collect();
        let out: Vec<AtomicU64> = (0..777).map(|_| AtomicU64::new(0)).collect();
        pool.parallel_for(777, 10, |i| {
            out[i].store((input[i] * 2.0) as u64, Ordering::Relaxed);
        });
        assert!(out
            .iter()
            .enumerate()
            .all(|(i, v)| v.load(Ordering::Relaxed) == 2 * i as u64));
    }
}
