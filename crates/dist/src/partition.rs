//! Sub-tree partitioning of the MLFMA cluster hierarchy (paper Section IV-A).
//!
//! The 16 clusters of the top computed level are the partition unit: a rank
//! owns a contiguous Morton range of them, and — because Morton order is
//! hierarchical — therefore owns the *complete sub-trees* beneath them: a
//! contiguous cluster range at every level and a contiguous pixel range.
//! Aggregation and disaggregation need no communication; only translations
//! and near-field interactions cross rank boundaries.

use ffw_geometry::{morton_decode, morton_encode};
use ffw_mlfma::MlfmaPlan;
use std::ops::Range;

/// Maximum useful sub-tree ranks: the 16 top-level clusters
/// ("partitioning beyond 16 processes would require splitting aggregation",
/// paper Section IV-A).
pub const MAX_SUBTREE_RANKS: usize = 16;

/// A rank's ownership in the sub-tree decomposition.
#[derive(Clone, Debug)]
pub struct SubtreePartition {
    /// Number of ranks sharing the tree.
    pub n_ranks: usize,
    /// This rank.
    pub rank: usize,
    /// Owned cluster range per computed level (same index order as
    /// `MlfmaPlan::levels`).
    pub cluster_ranges: Vec<Range<usize>>,
    /// Owned pixel range (tree order).
    pub pixel_range: Range<usize>,
}

impl SubtreePartition {
    /// Builds the partition for `rank` of `n_ranks`. `n_ranks` must divide 16
    /// (1, 2, 4, 8 or 16).
    pub fn new(plan: &MlfmaPlan, n_ranks: usize, rank: usize) -> Self {
        assert!(
            n_ranks >= 1 && MAX_SUBTREE_RANKS.is_multiple_of(n_ranks),
            "sub-tree ranks must divide {MAX_SUBTREE_RANKS}, got {n_ranks}"
        );
        assert!(rank < n_ranks);
        let cluster_ranges = plan
            .levels
            .iter()
            .map(|lp| {
                let n = lp.n_side * lp.n_side;
                let per = n / n_ranks;
                rank * per..(rank + 1) * per
            })
            .collect::<Vec<_>>();
        let n_px = plan.n_pixels();
        let per = n_px / n_ranks;
        SubtreePartition {
            n_ranks,
            rank,
            cluster_ranges,
            pixel_range: rank * per..(rank + 1) * per,
        }
    }

    /// Owner rank of cluster `morton` at level index `li` (levels as in the
    /// plan), for `n_ranks` ranks.
    pub fn owner_of(plan: &MlfmaPlan, n_ranks: usize, li: usize, morton: usize) -> usize {
        let lp = &plan.levels[li];
        let n = lp.n_side * lp.n_side;
        morton / (n / n_ranks)
    }

    /// Number of owned pixels.
    pub fn n_local_pixels(&self) -> usize {
        self.pixel_range.len()
    }

    /// Owned leaf-cluster range.
    pub fn leaf_range(&self) -> Range<usize> {
        self.cluster_ranges.last().expect("non-empty").clone()
    }
}

/// Communication schedule for one rank: which local clusters must be sent to
/// which peers, and which remote clusters will be received, per level; plus
/// the near-field leaf halo.
#[derive(Clone, Debug, Default)]
pub struct ExchangePlan {
    /// `send[peer][li]` = local cluster Mortons whose patterns peer needs.
    pub send: Vec<Vec<Vec<usize>>>,
    /// `recv[peer][li]` = remote cluster Mortons we will receive from peer.
    pub recv: Vec<Vec<Vec<usize>>>,
    /// `halo_send[peer]` = local leaf Mortons whose pixel blocks peer needs.
    pub halo_send: Vec<Vec<usize>>,
    /// `halo_recv[peer]` = remote leaf Mortons we need from peer.
    pub halo_recv: Vec<Vec<usize>>,
}

impl ExchangePlan {
    /// Builds the symmetric exchange schedule for `rank` of `n_ranks`.
    pub fn new(plan: &MlfmaPlan, n_ranks: usize, rank: usize) -> Self {
        let part = SubtreePartition::new(plan, n_ranks, rank);
        let n_levels = plan.levels.len();
        let mut send = vec![vec![Vec::new(); n_levels]; n_ranks];
        let mut recv = vec![vec![Vec::new(); n_levels]; n_ranks];
        for (li, lp) in plan.levels.iter().enumerate() {
            let range = &part.cluster_ranges[li];
            // For each of my clusters, walk its interaction list; remote
            // sources are received; by symmetry of the lists (offset <-> -offset)
            // the same pairs drive what I must send.
            let mut send_sets: Vec<std::collections::BTreeSet<usize>> =
                vec![Default::default(); n_ranks];
            let mut recv_sets: Vec<std::collections::BTreeSet<usize>> =
                vec![Default::default(); n_ranks];
            for c in range.clone() {
                let (ix, iy) = morton_decode(c as u32);
                for (sx, sy, _off) in plan
                    .tree
                    .interaction_list(lp.level, ix as usize, iy as usize)
                {
                    let s = morton_encode(sx as u32, sy as u32) as usize;
                    let owner = SubtreePartition::owner_of(plan, n_ranks, li, s);
                    if owner != rank {
                        recv_sets[owner].insert(s);
                        // symmetric: they need my cluster c
                        send_sets[owner].insert(c);
                    }
                }
            }
            for peer in 0..n_ranks {
                send[peer][li] = send_sets[peer].iter().copied().collect();
                recv[peer][li] = recv_sets[peer].iter().copied().collect();
            }
        }
        // near-field leaf halo
        let leaf_li = n_levels - 1;
        let leaf_range = &part.cluster_ranges[leaf_li];
        let mut halo_send_sets: Vec<std::collections::BTreeSet<usize>> =
            vec![Default::default(); n_ranks];
        let mut halo_recv_sets: Vec<std::collections::BTreeSet<usize>> =
            vec![Default::default(); n_ranks];
        for c in leaf_range.clone() {
            let (ix, iy) = morton_decode(c as u32);
            for (sx, sy, _off) in plan.tree.near_list(ix as usize, iy as usize) {
                let s = morton_encode(sx as u32, sy as u32) as usize;
                let owner = SubtreePartition::owner_of(plan, n_ranks, leaf_li, s);
                if owner != rank {
                    halo_recv_sets[owner].insert(s);
                    halo_send_sets[owner].insert(c);
                }
            }
        }
        ExchangePlan {
            send,
            recv,
            halo_send: halo_send_sets
                .into_iter()
                .map(|s| s.into_iter().collect())
                .collect(),
            halo_recv: halo_recv_sets
                .into_iter()
                .map(|s| s.into_iter().collect())
                .collect(),
        }
    }

    /// Total near-field halo words sent (leaf pixel blocks).
    pub fn total_halo_words(&self) -> usize {
        self.halo_send.iter().map(|l| l.len() * 64).sum()
    }

    /// Number of peers this rank exchanges with (far-field or halo).
    pub fn n_peers(&self) -> usize {
        (0..self.send.len())
            .filter(|&p| {
                self.send[p].iter().any(|v| !v.is_empty()) || !self.halo_send[p].is_empty()
            })
            .count()
    }

    /// Total pattern entries sent (all peers, all levels), for a given plan —
    /// the communication-volume statistic used by the performance model.
    pub fn total_send_words(&self, plan: &MlfmaPlan) -> usize {
        let mut words = 0;
        for peer in &self.send {
            for (li, clusters) in peer.iter().enumerate() {
                words += clusters.len() * plan.levels[li].q;
            }
        }
        words
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ffw_geometry::Domain;
    use ffw_mlfma::Accuracy;

    fn plan() -> MlfmaPlan {
        MlfmaPlan::new(&Domain::new(64, 1.0), Accuracy::low())
    }

    #[test]
    fn partitions_tile_everything() {
        let p = plan();
        for n_ranks in [1usize, 2, 4, 8, 16] {
            let mut pixel_cover = 0;
            for r in 0..n_ranks {
                let part = SubtreePartition::new(&p, n_ranks, r);
                pixel_cover += part.n_local_pixels();
                for (li, range) in part.cluster_ranges.iter().enumerate() {
                    let n = p.levels[li].n_side.pow(2);
                    assert_eq!(range.len(), n / n_ranks);
                }
            }
            assert_eq!(pixel_cover, p.n_pixels());
        }
    }

    #[test]
    #[should_panic(expected = "divide")]
    fn rejects_non_divisor_ranks() {
        SubtreePartition::new(&plan(), 3, 0);
    }

    #[test]
    fn exchange_is_symmetric_across_ranks() {
        let p = plan();
        let n_ranks = 4;
        let plans: Vec<ExchangePlan> = (0..n_ranks)
            .map(|r| ExchangePlan::new(&p, n_ranks, r))
            .collect();
        for a in 0..n_ranks {
            for b in 0..n_ranks {
                if a == b {
                    continue;
                }
                for li in 0..p.levels.len() {
                    assert_eq!(
                        plans[a].send[b][li], plans[b].recv[a][li],
                        "a={a} b={b} li={li}"
                    );
                }
                assert_eq!(plans[a].halo_send[b], plans[b].halo_recv[a]);
            }
        }
    }

    #[test]
    fn single_rank_has_no_exchange() {
        let p = plan();
        let e = ExchangePlan::new(&p, 1, 0);
        assert_eq!(e.total_send_words(&p), 0);
        assert!(e.halo_send[0].is_empty());
    }

    #[test]
    fn owned_clusters_are_whole_subtrees() {
        // Children of owned clusters are owned by the same rank.
        let p = plan();
        let n_ranks = 8;
        for r in 0..n_ranks {
            let part = SubtreePartition::new(&p, n_ranks, r);
            for li in 0..p.levels.len() - 1 {
                for c in part.cluster_ranges[li].clone() {
                    for pos in 0..4 {
                        let child = 4 * c + pos;
                        assert!(
                            part.cluster_ranges[li + 1].contains(&child),
                            "rank {r}: child {child} of {c} not owned"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn more_ranks_more_communication() {
        let p = plan();
        let w2: usize = (0..2)
            .map(|r| ExchangePlan::new(&p, 2, r).total_send_words(&p))
            .sum();
        let w8: usize = (0..8)
            .map(|r| ExchangePlan::new(&p, 8, r).total_send_words(&p))
            .sum();
        assert!(w8 > w2, "8-way partition communicates more: {w2} vs {w8}");
    }
}
