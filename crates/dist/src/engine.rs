//! Distributed-memory MLFMA: one tree partitioned over `ffw-mpi` ranks by
//! sub-trees (paper Section IV-A), with boundary-cluster pattern exchange for
//! translations, a leaf-pixel halo for the near field, buffer aggregation
//! (Section IV-B) and communication/computation overlap (Fig. 8).
//!
//! The matvec operates on *local* vector slices: rank `r` holds pixels
//! `[r N/P, (r+1) N/P)` in tree order. Aggregation and disaggregation stay
//! rank-local because owned clusters form whole sub-trees.

use crate::partition::{ExchangePlan, SubtreePartition};
use ffw_geometry::{morton_decode, morton_encode, LEAF_PIXELS};
use ffw_mlfma::{offset_index, MlfmaPlan};
use ffw_mpi::{Comm, ComputeFault, FaultError, FaultEvent, Payload};
use ffw_numerics::{c64, C64};
use ffw_solver::flip_panel_bit_detectable;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Message tags used by one matvec. Sequencing guarantees of the mailbox
/// (FIFO per source/tag) make reuse across matvecs safe.
const TAG_HALO: u32 = 0x100;
const TAG_FARFIELD: u32 = 0x101;
const TAG_FARFIELD_LEVEL_BASE: u32 = 0x110;

/// Distributed MLFMA engine bound to one rank of a sub-tree communicator.
pub struct DistMlfma<'c> {
    comm: &'c Comm,
    plan: Arc<MlfmaPlan>,
    part: SubtreePartition,
    exch: ExchangePlan,
    /// Aggregate all levels into one message per peer (paper Section IV-B).
    /// When false, one message per level per peer (the ablation baseline).
    aggregate_buffers: bool,
    /// Members of this sub-tree communicator (global rank ids), index = slot.
    members: Vec<usize>,
    /// Opt-in ABFT compute-integrity state ([`DistMlfma::with_verify`]).
    verify: Option<DistVerify>,
}

/// Per-rank state of the opt-in ABFT compute-integrity mode: every panel
/// apply carries a ride-along checksum column (the elementwise sum of the
/// data columns), so `G0(sum x) = sum(G0 x)` is checked locally after the
/// apply. The checksum column partitions exactly like the data columns —
/// each rank's slice of the global checksum input is the sum of its local
/// input slices — so verification needs no extra communication.
struct DistVerify {
    /// Elementwise relative tolerance (calibrated from the MLFMA accuracy).
    rel_tol: f64,
    /// Absolute floor added to the elementwise scale.
    abs_floor: f64,
    /// 1-based count of verified panel applies on this rank.
    panel: AtomicU64,
    /// Injected fault deferred past panels whose local output is all zero
    /// (a flip there creates an undetectable — and harmless — denormal).
    deferred: Mutex<Option<ComputeFault>>,
}

fn pack(data: &[C64]) -> Vec<(f64, f64)> {
    data.iter().map(|v| (v.re, v.im)).collect()
}

fn unpack_into(src: &[(f64, f64)], dst: &mut [C64]) {
    for (d, s) in dst.iter_mut().zip(src) {
        *d = c64(s.0, s.1);
    }
}

impl<'c> DistMlfma<'c> {
    /// Creates the engine for this rank's slot within `members` (the global
    /// rank ids of the sub-tree communicator, in slot order). For a solver
    /// that uses the whole communicator, pass `(0..comm.size()).collect()`.
    pub fn new(
        comm: &'c Comm,
        plan: Arc<MlfmaPlan>,
        members: Vec<usize>,
        aggregate_buffers: bool,
    ) -> Self {
        let slot = members
            .iter()
            .position(|&m| m == comm.rank())
            .expect("this rank must be a member");
        let n_ranks = members.len();
        let part = SubtreePartition::new(&plan, n_ranks, slot);
        let exch = ExchangePlan::new(&plan, n_ranks, slot);
        DistMlfma {
            comm,
            plan,
            part,
            exch,
            aggregate_buffers,
            members,
            verify: None,
        }
    }

    /// Enables ABFT compute-integrity verification of every panel apply:
    /// a checksum column (the elementwise sum of the data columns) rides
    /// along in the fused panel and the identity `G0(sum x) = sum(G0 x)` is
    /// checked elementwise on this rank's output slice after the apply.
    ///
    /// Detection is purely local; recomputation is not (the halo and
    /// far-field exchanges are consumed by the apply), so a mismatch
    /// escalates immediately as [`FaultError::ComputeCorruption`] — the
    /// fault-tolerant driver treats the detecting rank as compromised and
    /// recovers through checkpoint-restart. Opt-in because the extra column
    /// costs one lane of compute and bandwidth per panel.
    pub fn with_verify(mut self, rel_tol: f64, abs_floor: f64) -> Self {
        self.verify = Some(DistVerify {
            rel_tol,
            abs_floor,
            panel: AtomicU64::new(0),
            deferred: Mutex::new(None),
        });
        self
    }

    /// This rank's slot in the sub-tree communicator.
    pub fn slot(&self) -> usize {
        self.part.rank
    }

    /// Number of sub-tree ranks.
    pub fn n_slots(&self) -> usize {
        self.part.n_ranks
    }

    /// The partition of this rank.
    pub fn partition(&self) -> &SubtreePartition {
        &self.part
    }

    /// Local pixel count.
    pub fn n_local(&self) -> usize {
        self.part.n_local_pixels()
    }

    /// The underlying plan.
    pub fn plan(&self) -> &MlfmaPlan {
        &self.plan
    }

    /// Distributed `y_local = (G0 x)_local`.
    ///
    /// Schedule (paper Fig. 8): send the near-field halo first, aggregate the
    /// local sub-trees while it is in flight, send far-field patterns, compute
    /// the near field while *they* are in flight, then receive and translate.
    ///
    /// Communication failures panic; fault-tolerant drivers should call
    /// [`DistMlfma::try_apply`] instead.
    pub fn apply(&self, x_local: &[C64], y_local: &mut [C64]) {
        if let Err(e) = self.try_apply(x_local, y_local) {
            panic!("ffw-dist: {e}");
        }
    }

    /// Checked block (multi-RHS) matvec: `ys_local[b] = (G0 xs[b])_local`
    /// for a panel of `B` right-hand sides, with the halo and far-field
    /// traffic of all columns *fused into one message per peer* — the
    /// paper's buffer aggregation (Section IV-B) extended along the
    /// illumination dimension. Per-column arithmetic is identical to
    /// [`DistMlfma::try_apply`], so each column's output is bit-identical
    /// to a single-RHS apply.
    ///
    /// Fusion piggybacks on buffer aggregation; with `aggregate_buffers`
    /// off (the ablation baseline) columns are applied one at a time.
    pub fn try_apply_block(
        &self,
        xs_local: &[&[C64]],
        ys_local: &mut [Vec<C64>],
    ) -> Result<(), FaultError> {
        match &self.verify {
            Some(v) => self.apply_block_verified(v, xs_local, ys_local),
            None => self.apply_block_inner(xs_local, ys_local),
        }
    }

    /// Verified panel apply: widen the panel with the checksum column, run
    /// the unverified apply, inject any scheduled compute fault into the
    /// data columns, then check the checksum identity on the local slice.
    fn apply_block_verified(
        &self,
        v: &DistVerify,
        xs_local: &[&[C64]],
        ys_local: &mut [Vec<C64>],
    ) -> Result<(), FaultError> {
        let width = xs_local.len();
        assert_eq!(ys_local.len(), width, "block width mismatch");
        let n_local = self.n_local();
        let panel = v.panel.fetch_add(1, Ordering::SeqCst) + 1;

        // Local slice of the global checksum column: the elementwise sum of
        // this rank's input slices (summation order = column order, fixed).
        let mut x_cs = vec![C64::ZERO; n_local];
        for x in xs_local {
            for (a, b) in x_cs.iter_mut().zip(*x) {
                *a += *b;
            }
        }
        let mut xs2: Vec<&[C64]> = xs_local.to_vec();
        xs2.push(&x_cs);
        // Widen the output panel without copying the caller's columns.
        let mut ys2: Vec<Vec<C64>> = ys_local.iter_mut().map(std::mem::take).collect();
        ys2.push(vec![C64::ZERO; n_local]);
        let applied = self.apply_block_inner(&xs2, &mut ys2);
        let y_cs = ys2.pop().expect("checksum column");
        for (y, y2) in ys_local.iter_mut().zip(ys2) {
            *y = y2;
        }
        applied?;

        // Deterministic fault injection (test harness): flips land in the
        // data columns only, after the apply — modelling silent corruption
        // of this rank's local disaggregation/near-field arithmetic.
        if let Some(f) = {
            let deferred = v.deferred.lock().expect("injector mutex").take();
            deferred.or_else(|| self.comm.compute_fault())
        } {
            if !flip_panel_bit_detectable(ys_local, f.slot, f.bit) {
                *v.deferred.lock().expect("injector mutex") = Some(f);
            }
        }

        // Elementwise check of this rank's output slice. Non-finite
        // residuals fail explicitly (`NaN > tol` is false).
        for i in 0..n_local {
            let mut sum = C64::ZERO;
            let mut abs = 0.0f64;
            for y in ys_local.iter() {
                sum += y[i];
                abs += y[i].re.abs() + y[i].im.abs();
            }
            let d = (y_cs[i] - sum).abs();
            let scale = v.abs_floor + y_cs[i].re.abs() + y_cs[i].im.abs() + abs;
            if !d.is_finite() || d > v.rel_tol * scale {
                let rank = self.comm.rank();
                ffw_obs::counter("sdc.detected").inc();
                ffw_obs::counter("sdc.escalated").inc();
                ffw_obs::event(
                    "sdc.detected",
                    &format!(
                        "dist.apply_block: rank {rank} panel #{panel} element {i} \
                         residual {d:.3e} exceeds tol"
                    ),
                );
                self.comm
                    .trace_fault(FaultEvent::ComputeCorrupt { panel, attempt: 1 });
                self.comm
                    .trace_fault(FaultEvent::ComputeRetriesExhausted { panel, attempts: 1 });
                return Err(FaultError::ComputeCorruption {
                    rank,
                    stage: "dist.apply_block".into(),
                    panel,
                    attempts: 1,
                });
            }
        }
        Ok(())
    }

    fn apply_block_inner(
        &self,
        xs_local: &[&[C64]],
        ys_local: &mut [Vec<C64>],
    ) -> Result<(), FaultError> {
        let width = xs_local.len();
        assert_eq!(ys_local.len(), width, "block width mismatch");
        if width <= 1 || !self.aggregate_buffers {
            for (x, y) in xs_local.iter().zip(ys_local.iter_mut()) {
                self.apply_inner(x, y)?;
            }
            return Ok(());
        }
        let n_local = self.n_local();
        for (x, y) in xs_local.iter().zip(ys_local.iter()) {
            assert_eq!(x.len(), n_local);
            assert_eq!(y.len(), n_local);
        }
        let plan = &self.plan;
        let n_levels = plan.levels.len();
        let q_leaf = plan.leaf_plan().q;
        let slot = self.slot();
        let px_start = self.part.pixel_range.start;

        // --- 1. post fused near-field halo sends (all columns, one message
        // per peer, column-major: col 0's leaf blocks, then col 1's, ...) ---
        for (peer_slot, leaves) in self.exch.halo_send.iter().enumerate() {
            if leaves.is_empty() {
                continue;
            }
            let mut buf = Vec::with_capacity(width * leaves.len() * LEAF_PIXELS);
            for x_local in xs_local {
                for &leaf in leaves {
                    let off = leaf * LEAF_PIXELS - px_start;
                    buf.extend_from_slice(&x_local[off..off + LEAF_PIXELS]);
                }
            }
            self.comm
                .send_checked(self.members[peer_slot], TAG_HALO, Payload::C64(pack(&buf)))?;
        }

        // --- 2. aggregation, column by column (identical per-column math) ---
        let mut outgoing_cols: Vec<Vec<Vec<C64>>> = Vec::with_capacity(width);
        for x_local in xs_local {
            let mut outgoing: Vec<Vec<C64>> = plan
                .levels
                .iter()
                .map(|lp| vec![C64::ZERO; lp.n_side * lp.n_side * lp.q])
                .collect();
            let leaf_range = self.part.leaf_range();
            let e = &plan.expansion;
            for c in leaf_range.clone() {
                let off = c * LEAF_PIXELS - px_start;
                e.matvec(
                    &x_local[off..off + LEAF_PIXELS],
                    &mut outgoing[n_levels - 1][c * q_leaf..(c + 1) * q_leaf],
                );
            }
            for li in (0..n_levels - 1).rev() {
                let (up, down) = outgoing.split_at_mut(li + 1);
                let parents = &mut up[li];
                let children = &down[0];
                let lp = &plan.levels[li];
                let q_parent = lp.q;
                let q_child = plan.levels[li + 1].q;
                let interp = lp.interp.as_ref().expect("non-leaf");
                let mut tmp = vec![C64::ZERO; q_parent];
                for p in self.part.cluster_ranges[li].clone() {
                    let out = &mut parents[p * q_parent..(p + 1) * q_parent];
                    for pos in 0..4usize {
                        let ch = 4 * p + pos;
                        interp.up(&children[ch * q_child..(ch + 1) * q_child], &mut tmp);
                        let shift = &lp.shift_out[pos];
                        for ((o, t), s) in out.iter_mut().zip(&tmp).zip(shift) {
                            *o = t.mul_add(*s, *o);
                        }
                    }
                }
            }
            outgoing_cols.push(outgoing);
        }

        // --- 3. post fused far-field pattern sends ---
        for peer_slot in 0..self.n_slots() {
            if peer_slot == slot {
                continue;
            }
            let mut buf = Vec::new();
            for outgoing in &outgoing_cols {
                for (li, out_l) in outgoing.iter().enumerate() {
                    let q = plan.levels[li].q;
                    for &cl in &self.exch.send[peer_slot][li] {
                        buf.extend_from_slice(&out_l[cl * q..(cl + 1) * q]);
                    }
                }
            }
            if !buf.is_empty() {
                self.comm.send_checked(
                    self.members[peer_slot],
                    TAG_FARFIELD,
                    Payload::C64(pack(&buf)),
                )?;
            }
        }

        // --- 4. receive fused halo, then near field per column ---
        // x_halos[col] mirrors the scalar path's x_halo for that column.
        let mut x_halos: Vec<Vec<(usize, Vec<C64>)>> = vec![Vec::new(); width];
        for (peer_slot, leaves) in self.exch.halo_recv.iter().enumerate() {
            if leaves.is_empty() {
                continue;
            }
            let data = self
                .comm
                .recv_checked(self.members[peer_slot], TAG_HALO)?
                .into_c64();
            assert_eq!(data.len(), width * leaves.len() * LEAF_PIXELS);
            for (col, halo) in x_halos.iter_mut().enumerate() {
                let base = col * leaves.len() * LEAF_PIXELS;
                for (i, &leaf) in leaves.iter().enumerate() {
                    let mut block = vec![C64::ZERO; LEAF_PIXELS];
                    let lo = base + i * LEAF_PIXELS;
                    unpack_into(&data[lo..lo + LEAF_PIXELS], &mut block);
                    halo.push((leaf, block));
                }
            }
        }
        for halo in &mut x_halos {
            halo.sort_by_key(|(leaf, _)| *leaf);
        }
        for (col, (x_local, y_local)) in xs_local.iter().zip(ys_local.iter_mut()).enumerate() {
            let x_halo = &x_halos[col];
            let leaf_block = |leaf: usize| -> Option<&[C64]> {
                let range = &self.part.pixel_range;
                let off = leaf * LEAF_PIXELS;
                if off >= range.start && off < range.end {
                    Some(&x_local[off - range.start..off - range.start + LEAF_PIXELS])
                } else {
                    x_halo
                        .binary_search_by_key(&leaf, |(l, _)| *l)
                        .ok()
                        .map(|i| x_halo[i].1.as_slice())
                }
            };
            let leaf_range = self.part.leaf_range();
            for c in leaf_range.clone() {
                let (ix, iy) = morton_decode(c as u32);
                let out =
                    &mut y_local[c * LEAF_PIXELS - px_start..(c + 1) * LEAF_PIXELS - px_start];
                out.iter_mut().for_each(|v| *v = C64::ZERO);
                for (sx, sy, off) in plan.tree.near_list(ix as usize, iy as usize) {
                    let s = morton_encode(sx as u32, sy as u32) as usize;
                    let block = leaf_block(s).expect("halo covers all near leaves");
                    let oi = ((off.1 + 1) as usize) * 3 + (off.0 + 1) as usize;
                    plan.near[oi].matvec_acc(block, out);
                }
            }
        }

        // --- 5. receive fused far-field patterns ---
        for peer_slot in 0..self.n_slots() {
            if peer_slot == slot {
                continue;
            }
            let expect_col: usize = (0..n_levels)
                .map(|li| self.exch.recv[peer_slot][li].len() * plan.levels[li].q)
                .sum();
            if expect_col == 0 {
                continue;
            }
            let data = self
                .comm
                .recv_checked(self.members[peer_slot], TAG_FARFIELD)?
                .into_c64();
            assert_eq!(data.len(), width * expect_col);
            let mut cursor = 0usize;
            for outgoing in &mut outgoing_cols {
                for (li, out_l) in outgoing.iter_mut().enumerate() {
                    let q = plan.levels[li].q;
                    for &cl in &self.exch.recv[peer_slot][li] {
                        unpack_into(&data[cursor..cursor + q], &mut out_l[cl * q..(cl + 1) * q]);
                        cursor += q;
                    }
                }
            }
        }

        // --- 6–8. translate, downward pass and leaf receive per column ---
        for (col, y_local) in ys_local.iter_mut().enumerate() {
            let outgoing = &outgoing_cols[col];
            let mut incoming: Vec<Vec<C64>> = plan
                .levels
                .iter()
                .map(|lp| vec![C64::ZERO; lp.n_side * lp.n_side * lp.q])
                .collect();
            for (li, lp) in plan.levels.iter().enumerate() {
                let q = lp.q;
                for obs in self.part.cluster_ranges[li].clone() {
                    let (ix, iy) = morton_decode(obs as u32);
                    let (head, tail) = incoming[li].split_at_mut(obs * q);
                    let _ = head;
                    let out = &mut tail[..q];
                    for (sx, sy, off) in
                        plan.tree
                            .interaction_list(lp.level, ix as usize, iy as usize)
                    {
                        let s = morton_encode(sx as u32, sy as u32) as usize;
                        let t = lp.translations[offset_index(off)].as_ref().expect("t");
                        let src = &outgoing[li][s * q..(s + 1) * q];
                        for qi in 0..q {
                            out[qi] = t[qi].mul_add(src[qi], out[qi]);
                        }
                    }
                }
            }
            for li in 0..n_levels - 1 {
                let (up, down) = incoming.split_at_mut(li + 1);
                let parents = &up[li];
                let children = &mut down[0];
                let lp = &plan.levels[li];
                let q_parent = lp.q;
                let q_child = plan.levels[li + 1].q;
                let interp = lp.interp.as_ref().expect("non-leaf");
                let mut tmp = vec![C64::ZERO; q_parent];
                for p in self.part.cluster_ranges[li].clone() {
                    let parent = &parents[p * q_parent..(p + 1) * q_parent];
                    for pos in 0..4usize {
                        let shift = &lp.shift_in[pos];
                        for ((t, g), s) in tmp.iter_mut().zip(parent).zip(shift) {
                            *t = *g * *s;
                        }
                        let ch = 4 * p + pos;
                        interp.down_add(
                            &tmp,
                            lp.anterp_scale,
                            &mut children[ch * q_child..(ch + 1) * q_child],
                        );
                    }
                }
            }
            let lp = plan.leaf_plan();
            let q = lp.q;
            let coupling = plan.kernel.coupling;
            let w = coupling * (1.0 / q as f64);
            let e = &plan.expansion;
            let leaf_pat = incoming.last().expect("non-empty");
            let mut far = vec![C64::ZERO; LEAF_PIXELS];
            for c in self.part.leaf_range() {
                far.iter_mut().for_each(|v| *v = C64::ZERO);
                e.matvec_adjoint_acc(&leaf_pat[c * q..(c + 1) * q], &mut far);
                let out =
                    &mut y_local[c * LEAF_PIXELS - px_start..(c + 1) * LEAF_PIXELS - px_start];
                for (o, f) in out.iter_mut().zip(&far) {
                    *o += *f * w;
                }
            }
        }
        Ok(())
    }

    /// Checked variant of [`DistMlfma::apply`]: a dead peer or a message
    /// lost beyond the retry budget surfaces as a typed [`FaultError`]
    /// instead of a panic, letting the rank unwind cleanly. With
    /// verification enabled ([`DistMlfma::with_verify`]) the apply routes
    /// through the checksum-carrying panel path as a width-1 panel.
    pub fn try_apply(&self, x_local: &[C64], y_local: &mut [C64]) -> Result<(), FaultError> {
        match &self.verify {
            Some(v) => {
                let mut ys = vec![y_local.to_vec()];
                let r = self.apply_block_verified(v, &[x_local], &mut ys);
                y_local.copy_from_slice(&ys[0]);
                r
            }
            None => self.apply_inner(x_local, y_local),
        }
    }

    fn apply_inner(&self, x_local: &[C64], y_local: &mut [C64]) -> Result<(), FaultError> {
        let n_local = self.n_local();
        assert_eq!(x_local.len(), n_local);
        assert_eq!(y_local.len(), n_local);
        let plan = &self.plan;
        let n_levels = plan.levels.len();
        let q_leaf = plan.leaf_plan().q;
        let slot = self.slot();
        let px_start = self.part.pixel_range.start;

        // --- 1. post near-field halo sends (leaf pixel blocks) ---
        for (peer_slot, leaves) in self.exch.halo_send.iter().enumerate() {
            if leaves.is_empty() {
                continue;
            }
            let mut buf = Vec::with_capacity(leaves.len() * LEAF_PIXELS);
            for &leaf in leaves {
                let off = leaf * LEAF_PIXELS - px_start;
                buf.extend_from_slice(&x_local[off..off + LEAF_PIXELS]);
            }
            self.comm
                .send_checked(self.members[peer_slot], TAG_HALO, Payload::C64(pack(&buf)))?;
        }

        // --- 2. aggregation over local sub-trees (overlaps halo transit) ---
        let mut outgoing: Vec<Vec<C64>> = plan
            .levels
            .iter()
            .map(|lp| vec![C64::ZERO; lp.n_side * lp.n_side * lp.q])
            .collect();
        {
            // leaf expansions over the local leaf range
            let leaf_range = self.part.leaf_range();
            let e = &plan.expansion;
            for c in leaf_range.clone() {
                let off = c * LEAF_PIXELS - px_start;
                e.matvec(
                    &x_local[off..off + LEAF_PIXELS],
                    &mut outgoing[n_levels - 1][c * q_leaf..(c + 1) * q_leaf],
                );
            }
            // upward
            for li in (0..n_levels - 1).rev() {
                let (up, down) = outgoing.split_at_mut(li + 1);
                let parents = &mut up[li];
                let children = &down[0];
                let lp = &plan.levels[li];
                let q_parent = lp.q;
                let q_child = plan.levels[li + 1].q;
                let interp = lp.interp.as_ref().expect("non-leaf");
                let mut tmp = vec![C64::ZERO; q_parent];
                for p in self.part.cluster_ranges[li].clone() {
                    let out = &mut parents[p * q_parent..(p + 1) * q_parent];
                    for pos in 0..4usize {
                        let ch = 4 * p + pos;
                        interp.up(&children[ch * q_child..(ch + 1) * q_child], &mut tmp);
                        let shift = &lp.shift_out[pos];
                        for ((o, t), s) in out.iter_mut().zip(&tmp).zip(shift) {
                            *o = t.mul_add(*s, *o);
                        }
                    }
                }
            }
        }

        // --- 3. post far-field pattern sends ---
        for peer_slot in 0..self.n_slots() {
            if peer_slot == slot {
                continue;
            }
            if self.aggregate_buffers {
                let mut buf = Vec::new();
                for (li, out_l) in outgoing.iter().enumerate() {
                    let q = plan.levels[li].q;
                    for &cl in &self.exch.send[peer_slot][li] {
                        buf.extend_from_slice(&out_l[cl * q..(cl + 1) * q]);
                    }
                }
                if !buf.is_empty() {
                    self.comm.send_checked(
                        self.members[peer_slot],
                        TAG_FARFIELD,
                        Payload::C64(pack(&buf)),
                    )?;
                }
            } else {
                for (li, out_l) in outgoing.iter().enumerate() {
                    let q = plan.levels[li].q;
                    for &cl in &self.exch.send[peer_slot][li] {
                        self.comm.send_checked(
                            self.members[peer_slot],
                            TAG_FARFIELD_LEVEL_BASE + li as u32,
                            Payload::C64(pack(&out_l[cl * q..(cl + 1) * q])),
                        )?;
                    }
                }
            }
        }

        // --- 4. receive halo, then compute the near field into y ---
        let mut x_halo: Vec<(usize, Vec<C64>)> = Vec::new();
        for (peer_slot, leaves) in self.exch.halo_recv.iter().enumerate() {
            if leaves.is_empty() {
                continue;
            }
            let data = self
                .comm
                .recv_checked(self.members[peer_slot], TAG_HALO)?
                .into_c64();
            assert_eq!(data.len(), leaves.len() * LEAF_PIXELS);
            for (i, &leaf) in leaves.iter().enumerate() {
                let mut block = vec![C64::ZERO; LEAF_PIXELS];
                unpack_into(&data[i * LEAF_PIXELS..(i + 1) * LEAF_PIXELS], &mut block);
                x_halo.push((leaf, block));
            }
        }
        x_halo.sort_by_key(|(leaf, _)| *leaf);
        let leaf_block = |leaf: usize| -> Option<&[C64]> {
            let range = &self.part.pixel_range;
            let off = leaf * LEAF_PIXELS;
            if off >= range.start && off < range.end {
                Some(&x_local[off - range.start..off - range.start + LEAF_PIXELS])
            } else {
                x_halo
                    .binary_search_by_key(&leaf, |(l, _)| *l)
                    .ok()
                    .map(|i| x_halo[i].1.as_slice())
            }
        };
        {
            let leaf_range = self.part.leaf_range();
            for c in leaf_range.clone() {
                let (ix, iy) = morton_decode(c as u32);
                let out =
                    &mut y_local[c * LEAF_PIXELS - px_start..(c + 1) * LEAF_PIXELS - px_start];
                out.iter_mut().for_each(|v| *v = C64::ZERO);
                for (sx, sy, off) in plan.tree.near_list(ix as usize, iy as usize) {
                    let s = morton_encode(sx as u32, sy as u32) as usize;
                    let block = leaf_block(s).expect("halo covers all near leaves");
                    let oi = ((off.1 + 1) as usize) * 3 + (off.0 + 1) as usize;
                    plan.near[oi].matvec_acc(block, out);
                }
            }
        }

        // --- 5. receive far-field patterns ---
        for peer_slot in 0..self.n_slots() {
            if peer_slot == slot {
                continue;
            }
            let expect: usize = (0..n_levels)
                .map(|li| self.exch.recv[peer_slot][li].len() * plan.levels[li].q)
                .sum();
            if expect == 0 {
                continue;
            }
            if self.aggregate_buffers {
                let data = self
                    .comm
                    .recv_checked(self.members[peer_slot], TAG_FARFIELD)?
                    .into_c64();
                assert_eq!(data.len(), expect);
                let mut cursor = 0usize;
                for (li, out_l) in outgoing.iter_mut().enumerate() {
                    let q = plan.levels[li].q;
                    for &cl in &self.exch.recv[peer_slot][li] {
                        unpack_into(&data[cursor..cursor + q], &mut out_l[cl * q..(cl + 1) * q]);
                        cursor += q;
                    }
                }
            } else {
                for (li, out_l) in outgoing.iter_mut().enumerate() {
                    let q = plan.levels[li].q;
                    for &cl in &self.exch.recv[peer_slot][li] {
                        let data = self
                            .comm
                            .recv_checked(
                                self.members[peer_slot],
                                TAG_FARFIELD_LEVEL_BASE + li as u32,
                            )?
                            .into_c64();
                        unpack_into(&data, &mut out_l[cl * q..(cl + 1) * q]);
                    }
                }
            }
        }

        // --- 6. translations over local observation clusters ---
        let mut incoming: Vec<Vec<C64>> = plan
            .levels
            .iter()
            .map(|lp| vec![C64::ZERO; lp.n_side * lp.n_side * lp.q])
            .collect();
        for (li, lp) in plan.levels.iter().enumerate() {
            let q = lp.q;
            for obs in self.part.cluster_ranges[li].clone() {
                let (ix, iy) = morton_decode(obs as u32);
                let (head, tail) = incoming[li].split_at_mut(obs * q);
                let _ = head;
                let out = &mut tail[..q];
                for (sx, sy, off) in plan
                    .tree
                    .interaction_list(lp.level, ix as usize, iy as usize)
                {
                    let s = morton_encode(sx as u32, sy as u32) as usize;
                    let t = lp.translations[offset_index(off)].as_ref().expect("t");
                    let src = &outgoing[li][s * q..(s + 1) * q];
                    for qi in 0..q {
                        out[qi] = t[qi].mul_add(src[qi], out[qi]);
                    }
                }
            }
        }

        // --- 7. downward pass over local sub-trees ---
        for li in 0..n_levels - 1 {
            let (up, down) = incoming.split_at_mut(li + 1);
            let parents = &up[li];
            let children = &mut down[0];
            let lp = &plan.levels[li];
            let q_parent = lp.q;
            let q_child = plan.levels[li + 1].q;
            let interp = lp.interp.as_ref().expect("non-leaf");
            let mut tmp = vec![C64::ZERO; q_parent];
            for p in self.part.cluster_ranges[li].clone() {
                let parent = &parents[p * q_parent..(p + 1) * q_parent];
                for pos in 0..4usize {
                    let shift = &lp.shift_in[pos];
                    for ((t, g), s) in tmp.iter_mut().zip(parent).zip(shift) {
                        *t = *g * *s;
                    }
                    let ch = 4 * p + pos;
                    interp.down_add(
                        &tmp,
                        lp.anterp_scale,
                        &mut children[ch * q_child..(ch + 1) * q_child],
                    );
                }
            }
        }

        // --- 8. leaf receive: add the far field into y ---
        {
            let lp = plan.leaf_plan();
            let q = lp.q;
            let coupling = plan.kernel.coupling;
            let w = coupling * (1.0 / q as f64);
            let e = &plan.expansion;
            let leaf_pat = incoming.last().expect("non-empty");
            let mut far = vec![C64::ZERO; LEAF_PIXELS];
            for c in self.part.leaf_range() {
                far.iter_mut().for_each(|v| *v = C64::ZERO);
                e.matvec_adjoint_acc(&leaf_pat[c * q..(c + 1) * q], &mut far);
                let out =
                    &mut y_local[c * LEAF_PIXELS - px_start..(c + 1) * LEAF_PIXELS - px_start];
                for (o, f) in out.iter_mut().zip(&far) {
                    *o += *f * w;
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ffw_geometry::Domain;
    use ffw_mlfma::{Accuracy, MlfmaEngine};
    use ffw_numerics::vecops::rel_diff;
    use ffw_par::Pool;

    fn random_x(n: usize, seed: u64) -> Vec<C64> {
        let mut s = seed;
        (0..n)
            .map(|_| {
                s = s
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let a = ((s >> 11) as f64 / (1u64 << 53) as f64) - 0.5;
                s = s
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let b = ((s >> 11) as f64 / (1u64 << 53) as f64) - 0.5;
                c64(a, b)
            })
            .collect()
    }

    fn serial_reference(plan: &Arc<MlfmaPlan>, x: &[C64]) -> Vec<C64> {
        let eng = MlfmaEngine::new(Arc::clone(plan), Arc::new(Pool::new(1)));
        let mut y = vec![C64::ZERO; x.len()];
        eng.apply(x, &mut y);
        y
    }

    fn dist_apply(plan: &Arc<MlfmaPlan>, x: &[C64], n_ranks: usize, aggregate: bool) -> Vec<C64> {
        let n = x.len();
        let per = n / n_ranks;
        let (slices, _) = ffw_mpi::run(n_ranks, |comm| {
            let members: Vec<usize> = (0..comm.size()).collect();
            let rank = comm.rank();
            let eng = DistMlfma::new(&comm, Arc::clone(plan), members, aggregate);
            let mut y_local = vec![C64::ZERO; per];
            eng.apply(&x[rank * per..(rank + 1) * per], &mut y_local);
            y_local
        });
        slices.into_iter().flatten().collect()
    }

    /// The paper's consistency check (Section V-E: serial-vs-parallel output
    /// differs by ~1e-13): our distributed matvec must match the serial
    /// engine to near machine precision.
    #[test]
    fn distributed_matches_serial_all_rank_counts() {
        let domain = Domain::new(64, 1.0);
        let plan = Arc::new(MlfmaPlan::new(&domain, Accuracy::low()));
        let x = random_x(plan.n_pixels(), 99);
        let y_ref = serial_reference(&plan, &x);
        for n_ranks in [1usize, 2, 4, 8, 16] {
            let y = dist_apply(&plan, &x, n_ranks, true);
            let err = rel_diff(&y, &y_ref);
            assert!(err < 1e-12, "ranks={n_ranks}: err={err:e}");
        }
    }

    /// The distributed block path must match per-column scalar applies
    /// bit-for-bit (compute is per-column identical; only messages fuse),
    /// while sending ~B x fewer messages.
    #[test]
    fn block_apply_is_bit_identical_and_fuses_messages() {
        let domain = Domain::new(64, 1.0);
        let plan = Arc::new(MlfmaPlan::new(&domain, Accuracy::low()));
        let n = plan.n_pixels();
        let width = 3usize;
        let xs: Vec<Vec<C64>> = (0..width).map(|b| random_x(n, 60 + b as u64)).collect();
        let n_ranks = 4;
        let per = n / n_ranks;
        let mut messages = Vec::new();
        let mut results: Vec<Vec<Vec<C64>>> = Vec::new();
        for fused in [true, false] {
            let plan2 = Arc::clone(&plan);
            let xs2 = xs.clone();
            let (slices, handle) = ffw_mpi::run(n_ranks, move |comm| {
                let members: Vec<usize> = (0..comm.size()).collect();
                let rank = comm.rank();
                let eng = DistMlfma::new(&comm, Arc::clone(&plan2), members, true);
                let lo = rank * per;
                let mut ys = vec![vec![C64::ZERO; per]; width];
                if fused {
                    let refs: Vec<&[C64]> = xs2.iter().map(|x| &x[lo..lo + per]).collect();
                    eng.try_apply_block(&refs, &mut ys).unwrap();
                } else {
                    for (x, y) in xs2.iter().zip(ys.iter_mut()) {
                        eng.apply(&x[lo..lo + per], y);
                    }
                }
                ys
            });
            // reassemble per-column full vectors
            let mut cols = vec![Vec::new(); width];
            for rank_ys in slices {
                for (c, y) in rank_ys.into_iter().enumerate() {
                    cols[c].extend(y);
                }
            }
            results.push(cols);
            messages.push(handle.stats().total_messages());
        }
        for (c, (a, b)) in results[0].iter().zip(&results[1]).enumerate() {
            assert_eq!(a, b, "column {c} differs between fused and scalar");
        }
        assert!(
            messages[0] < messages[1],
            "fused panel must reduce handshakes: {} vs {}",
            messages[0],
            messages[1]
        );
    }

    #[test]
    fn buffer_aggregation_does_not_change_result_but_reduces_messages() {
        let domain = Domain::new(64, 1.0);
        let plan = Arc::new(MlfmaPlan::new(&domain, Accuracy::low()));
        let x = random_x(plan.n_pixels(), 5);
        let n_ranks = 4;
        let per = plan.n_pixels() / n_ranks;
        let mut results = Vec::new();
        let mut messages = Vec::new();
        for aggregate in [true, false] {
            let plan2 = Arc::clone(&plan);
            let x2 = x.clone();
            let (slices, handle) = ffw_mpi::run(n_ranks, move |comm| {
                let members: Vec<usize> = (0..comm.size()).collect();
                let rank = comm.rank();
                let eng = DistMlfma::new(&comm, Arc::clone(&plan2), members, aggregate);
                let mut y_local = vec![C64::ZERO; per];
                eng.apply(&x2[rank * per..(rank + 1) * per], &mut y_local);
                y_local
            });
            results.push(slices.into_iter().flatten().collect::<Vec<C64>>());
            messages.push(handle.stats().total_messages());
        }
        assert!(rel_diff(&results[1], &results[0]) < 1e-13);
        assert!(
            messages[0] < messages[1],
            "aggregation reduces handshakes: {} vs {}",
            messages[0],
            messages[1]
        );
    }
}
