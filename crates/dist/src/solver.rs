//! Distributed forward/adjoint solves over sub-tree-partitioned vectors.
//!
//! Vectors are split across the sub-tree communicator members exactly like
//! the MLFMA pixel ranges; BiCGStab runs with *local* vector arithmetic and
//! communicator-wide inner products.

use crate::engine::DistMlfma;
use ffw_mpi::{Comm, FaultError};
use ffw_numerics::vecops::{norm2_sqr, zdotc};
use ffw_numerics::{c64, C64};
use ffw_solver::{IterConfig, SolveStats};

/// Sum-allreduce of complex scalars among an explicit member list (global
/// rank ids; `members[0]` acts as the root).
///
/// Misuse is diagnosed rather than hung: the member list is validated up
/// front (every caller must appear in its own list, members must be valid
/// and distinct), and if the member lists *across* ranks disagree — so some
/// rank waits for a contribution that never comes — the `ffw-mpi` deadlock
/// watchdog reconstructs the wait-for graph and fails the run with a report
/// naming the stuck ranks.
pub fn allreduce_scalars(comm: &Comm, members: &[usize], vals: &mut [C64]) {
    if let Err(e) = try_allreduce_scalars(comm, members, vals) {
        panic!("ffw-dist: {e}");
    }
}

/// Checked variant of [`allreduce_scalars`]: a dead or unreachable peer
/// surfaces as a typed [`FaultError`] instead of a panic, so fault-tolerant
/// drivers can unwind the rank cleanly and relaunch.
pub fn try_allreduce_scalars(
    comm: &Comm,
    members: &[usize],
    vals: &mut [C64],
) -> Result<(), FaultError> {
    if members.len() <= 1 {
        return Ok(());
    }
    let me = comm.rank();
    assert!(
        members.contains(&me),
        "allreduce_scalars: rank {me} called with member list {members:?} that \
         does not include itself"
    );
    for (i, &m) in members.iter().enumerate() {
        assert!(
            m < comm.size(),
            "allreduce_scalars: member {m} out of range (communicator has {} ranks)",
            comm.size()
        );
        assert!(
            !members[..i].contains(&m),
            "allreduce_scalars: member {m} listed twice in {members:?}"
        );
    }
    let mut packed: Vec<(f64, f64)> = vals.iter().map(|v| (v.re, v.im)).collect();
    const TAG_UP: u32 = 0x200;
    const TAG_DOWN: u32 = 0x201;
    // Every hop carries an ABFT checksum lane (the element sum) next to the
    // data. The per-message CRC already rejects in-flight bit flips; the
    // lane additionally lets the *result* of the reduction be verified: the
    // root folds the contribution lanes into the lane of the reduced vector,
    // so a receiver of the DOWN broadcast re-derives the sum and catches
    // corruption inside the reduction arithmetic itself.
    if me == members[0] {
        let mut lane = ffw_fault::abft_lane_c64(&packed);
        for &peer in &members[1..] {
            let (part, part_lane) = comm.recv_checked_laned(peer, TAG_UP)?;
            let part = part.into_c64();
            if let Some((lr, li)) = part_lane {
                lane.0 += lr;
                lane.1 += li;
            }
            for (p, q) in packed.iter_mut().zip(part) {
                p.0 += q.0;
                p.1 += q.1;
            }
        }
        for &peer in &members[1..] {
            comm.send_checked_laned(peer, TAG_DOWN, ffw_mpi::Payload::C64(packed.clone()), lane)?;
        }
    } else {
        let lane = ffw_fault::abft_lane_c64(&packed);
        comm.send_checked_laned(
            members[0],
            TAG_UP,
            ffw_mpi::Payload::C64(packed.clone()),
            lane,
        )?;
        let (down, _lane) = comm.recv_checked_laned(members[0], TAG_DOWN)?;
        packed = down.into_c64();
    }
    for (v, p) in vals.iter_mut().zip(packed) {
        *v = c64(p.0, p.1);
    }
    Ok(())
}

/// A distributed operator: applies to local slices, communicating internally.
pub trait DistOp {
    /// Local slice length.
    fn n_local(&self) -> usize;
    /// `y_local = (A x)_local`.
    fn apply_local(&self, x_local: &[C64], y_local: &mut [C64]);
    /// Checked apply: communication failure surfaces as a typed error.
    /// Operators without internal communication may keep the default, which
    /// delegates to [`DistOp::apply_local`].
    fn try_apply_local(&self, x_local: &[C64], y_local: &mut [C64]) -> Result<(), FaultError> {
        self.apply_local(x_local, y_local);
        Ok(())
    }
}

/// Distributed `A = I - G0 diag(O)` over a [`DistMlfma`].
pub struct DistScatteringOp<'a, 'c> {
    /// The distributed Green's operator.
    pub g0: &'a DistMlfma<'c>,
    /// Local slice of the object vector.
    pub object_local: &'a [C64],
}

impl DistOp for DistScatteringOp<'_, '_> {
    fn n_local(&self) -> usize {
        self.object_local.len()
    }
    fn apply_local(&self, x_local: &[C64], y_local: &mut [C64]) {
        self.try_apply_local(x_local, y_local)
            .unwrap_or_else(|e| panic!("ffw-dist: {e}"));
    }
    fn try_apply_local(&self, x_local: &[C64], y_local: &mut [C64]) -> Result<(), FaultError> {
        let ox: Vec<C64> = self
            .object_local
            .iter()
            .zip(x_local)
            .map(|(o, x)| *o * *x)
            .collect();
        self.g0.try_apply(&ox, y_local)?;
        for (y, x) in y_local.iter_mut().zip(x_local) {
            *y = *x - *y;
        }
        Ok(())
    }
}

/// Distributed adjoint `A^H = I - diag(conj O) G0^H` (conjugation trick).
pub struct DistAdjointScatteringOp<'a, 'c> {
    /// The distributed Green's operator.
    pub g0: &'a DistMlfma<'c>,
    /// Local slice of the object vector.
    pub object_local: &'a [C64],
}

impl DistOp for DistAdjointScatteringOp<'_, '_> {
    fn n_local(&self) -> usize {
        self.object_local.len()
    }
    fn apply_local(&self, x_local: &[C64], y_local: &mut [C64]) {
        self.try_apply_local(x_local, y_local)
            .unwrap_or_else(|e| panic!("ffw-dist: {e}"));
    }
    fn try_apply_local(&self, x_local: &[C64], y_local: &mut [C64]) -> Result<(), FaultError> {
        let xc: Vec<C64> = x_local.iter().map(|v| v.conj()).collect();
        self.g0.try_apply(&xc, y_local)?;
        for ((y, x), o) in y_local.iter_mut().zip(x_local).zip(self.object_local) {
            *y = *x - o.conj() * y.conj();
        }
        Ok(())
    }
}

/// Raw distributed `G0` as a [`DistOp`].
pub struct DistG0Op<'a, 'c>(pub &'a DistMlfma<'c>);

impl DistOp for DistG0Op<'_, '_> {
    fn n_local(&self) -> usize {
        self.0.n_local()
    }
    fn apply_local(&self, x_local: &[C64], y_local: &mut [C64]) {
        self.0.apply(x_local, y_local);
    }
    fn try_apply_local(&self, x_local: &[C64], y_local: &mut [C64]) -> Result<(), FaultError> {
        self.0.try_apply(x_local, y_local)
    }
}

fn finite_c(v: C64) -> bool {
    v.re.is_finite() && v.im.is_finite()
}

/// How one distributed BiCGStab cycle ended. Breakdown decisions are made
/// from *reduced* scalars, which are bit-identical on every member rank, so
/// all ranks of the communicator take the same branch and stay in lockstep.
enum DistCycleEnd {
    Converged(f64),
    MaxIters(f64),
    Breakdown { res: f64, detail: String },
}

#[allow(clippy::too_many_arguments)]
fn dist_bicgstab_cycle<A: DistOp>(
    a: &A,
    comm: &Comm,
    members: &[usize],
    b: &[C64],
    x: &mut [C64],
    cfg: IterConfig,
    b_norm: f64,
    iters: &mut usize,
    matvecs: &mut usize,
) -> Result<DistCycleEnd, FaultError> {
    let n = b.len();
    let reduce1 = |v: f64| -> Result<f64, FaultError> {
        let mut s = [c64(v, 0.0)];
        try_allreduce_scalars(comm, members, &mut s)?;
        Ok(s[0].re)
    };
    let mut r = vec![C64::ZERO; n];
    a.try_apply_local(x, &mut r)?;
    *matvecs += 1;
    for (ri, bi) in r.iter_mut().zip(b) {
        *ri = *bi - *ri; // r = b - A x
    }
    let r_hat = r.clone();
    let mut rho = C64::ONE;
    let mut alpha = C64::ONE;
    let mut omega = C64::ONE;
    let mut v = vec![C64::ZERO; n];
    let mut p = vec![C64::ZERO; n];
    let mut s = vec![C64::ZERO; n];
    let mut t = vec![C64::ZERO; n];
    let mut x_prev = vec![C64::ZERO; n];

    let mut res = reduce1(norm2_sqr(&r))?.sqrt() / b_norm;
    if !res.is_finite() {
        return Ok(DistCycleEnd::Breakdown {
            res: f64::NAN,
            detail: "initial residual is not finite".into(),
        });
    }
    if res < cfg.tol {
        return Ok(DistCycleEnd::Converged(res));
    }
    loop {
        if *iters >= cfg.max_iters {
            return Ok(DistCycleEnd::MaxIters(res));
        }
        let mut dots = [zdotc(&r_hat, &r)];
        try_allreduce_scalars(comm, members, &mut dots)?;
        let rho_new = dots[0];
        if !finite_c(rho_new) {
            return Ok(DistCycleEnd::Breakdown {
                res,
                detail: "rho inner product is not finite".into(),
            });
        }
        if rho_new.abs() < 1e-300 {
            return Ok(DistCycleEnd::Breakdown {
                res,
                detail: "rho underflow".into(),
            });
        }
        *iters += 1;
        let beta = (rho_new / rho) * (alpha / omega);
        for i in 0..n {
            p[i] = r[i] + beta * (p[i] - omega * v[i]);
        }
        a.try_apply_local(&p, &mut v)?;
        *matvecs += 1;
        let mut dots = [zdotc(&r_hat, &v)];
        try_allreduce_scalars(comm, members, &mut dots)?;
        alpha = rho_new / dots[0];
        for i in 0..n {
            s[i] = r[i] - alpha * v[i];
        }
        let s_norm = reduce1(norm2_sqr(&s))?.sqrt() / b_norm;
        if s_norm < cfg.tol {
            for i in 0..n {
                x[i] += alpha * p[i];
            }
            return Ok(DistCycleEnd::Converged(s_norm));
        }
        a.try_apply_local(&s, &mut t)?;
        *matvecs += 1;
        let mut dots = [zdotc(&t, &s), zdotc(&t, &t)];
        try_allreduce_scalars(comm, members, &mut dots)?;
        omega = dots[0] / dots[1];
        // Snapshot x so a non-finite update can be rolled back instead of
        // poisoning the iterate (NaN fails every `<` comparison, so the old
        // loop silently ran to max_iters with a NaN x).
        x_prev.copy_from_slice(x);
        for i in 0..n {
            x[i] += alpha * p[i] + omega * s[i];
            r[i] = s[i] - omega * t[i];
        }
        let res_new = reduce1(norm2_sqr(&r))?.sqrt() / b_norm;
        if !res_new.is_finite() {
            x.copy_from_slice(&x_prev);
            return Ok(DistCycleEnd::Breakdown {
                res,
                detail: "residual became non-finite".into(),
            });
        }
        res = res_new;
        if res < cfg.tol {
            return Ok(DistCycleEnd::Converged(res));
        }
        rho = rho_new;
    }
}

/// Distributed BiCGStab over local slices, with inner products reduced among
/// `members`. The algorithm is numerically identical to the serial
/// `ffw_solver::bicgstab` — enabling the paper's serial-vs-parallel
/// consistency check.
///
/// Communication failures panic (use [`try_dist_bicgstab`] for typed
/// errors); a breakdown returns honest unconverged stats with `x` at the
/// last finite iterate.
pub fn dist_bicgstab<A: DistOp>(
    a: &A,
    comm: &Comm,
    members: &[usize],
    b: &[C64],
    x: &mut [C64],
    cfg: IterConfig,
) -> SolveStats {
    match dist_bicgstab_impl(a, comm, members, b, x, cfg, 0) {
        Ok(stats) => stats,
        Err(DistSolveFailure::Breakdown {
            iterations,
            matvecs,
            rel_residual,
            ..
        }) => SolveStats {
            iterations,
            matvecs,
            rel_residual,
            converged: false,
        },
        Err(DistSolveFailure::Comm(e)) => panic!("ffw-dist: {e}"),
    }
}

/// Checked distributed BiCGStab: a dead peer or lost message surfaces as the
/// originating [`FaultError`]; a Krylov breakdown retries once from the last
/// finite iterate (all member ranks take the same decision, since it is made
/// from reduced scalars) and then surfaces
/// [`FaultError::KrylovBreakdown`].
pub fn try_dist_bicgstab<A: DistOp>(
    a: &A,
    comm: &Comm,
    members: &[usize],
    b: &[C64],
    x: &mut [C64],
    cfg: IterConfig,
) -> Result<SolveStats, FaultError> {
    match dist_bicgstab_impl(a, comm, members, b, x, cfg, 1) {
        Ok(stats) => Ok(stats),
        Err(DistSolveFailure::Comm(e)) => Err(e),
        Err(DistSolveFailure::Breakdown {
            iterations,
            rel_residual,
            detail,
            ..
        }) => Err(FaultError::KrylovBreakdown {
            rank: comm.rank(),
            iterations,
            rel_residual,
            detail,
        }),
    }
}

/// Internal failure of the distributed solve core.
enum DistSolveFailure {
    /// A peer died or a message was lost mid-solve.
    Comm(FaultError),
    /// The Krylov recurrence broke down and the restart budget is spent.
    Breakdown {
        iterations: usize,
        matvecs: usize,
        rel_residual: f64,
        detail: String,
    },
}

impl From<FaultError> for DistSolveFailure {
    fn from(e: FaultError) -> Self {
        DistSolveFailure::Comm(e)
    }
}

#[allow(clippy::too_many_arguments)]
fn dist_bicgstab_impl<A: DistOp>(
    a: &A,
    comm: &Comm,
    members: &[usize],
    b: &[C64],
    x: &mut [C64],
    cfg: IterConfig,
    max_restarts: u32,
) -> Result<SolveStats, DistSolveFailure> {
    let n = b.len();
    assert_eq!(x.len(), n);
    let mut b_sqr = [c64(norm2_sqr(b), 0.0)];
    try_allreduce_scalars(comm, members, &mut b_sqr)?;
    let b_norm = b_sqr[0].re.sqrt();
    if b_norm == 0.0 {
        x.iter_mut().for_each(|v| *v = C64::ZERO);
        return Ok(SolveStats {
            iterations: 0,
            matvecs: 0,
            rel_residual: 0.0,
            converged: true,
        });
    }
    let mut iters = 0usize;
    let mut matvecs = 0usize;
    let mut restarts = 0u32;
    loop {
        match dist_bicgstab_cycle(
            a,
            comm,
            members,
            b,
            x,
            cfg,
            b_norm,
            &mut iters,
            &mut matvecs,
        )? {
            DistCycleEnd::Converged(res) => {
                return Ok(SolveStats {
                    iterations: iters,
                    matvecs,
                    rel_residual: res,
                    converged: true,
                })
            }
            DistCycleEnd::MaxIters(res) => {
                return Ok(SolveStats {
                    iterations: iters,
                    matvecs,
                    rel_residual: res,
                    converged: false,
                })
            }
            DistCycleEnd::Breakdown { res, detail } => {
                let x_finite = x.iter().all(|v| finite_c(*v));
                if restarts < max_restarts && iters < cfg.max_iters && x_finite {
                    restarts += 1;
                    continue;
                }
                return Err(DistSolveFailure::Breakdown {
                    iterations: iters,
                    matvecs,
                    rel_residual: res,
                    detail: format!("{detail} ({restarts} restart(s) attempted)"),
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::DistMlfma;
    use ffw_geometry::Domain;
    use ffw_mlfma::{Accuracy, MlfmaPlan};
    use ffw_numerics::vecops::rel_diff;
    use std::sync::Arc;

    fn random_x(n: usize, seed: u64) -> Vec<C64> {
        let mut s = seed;
        (0..n)
            .map(|_| {
                s = s
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let a = ((s >> 11) as f64 / (1u64 << 53) as f64) - 0.5;
                s = s
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let b = ((s >> 11) as f64 / (1u64 << 53) as f64) - 0.5;
                c64(a, b)
            })
            .collect()
    }

    #[test]
    fn allreduce_scalars_sums_across_members() {
        let (results, _) = ffw_mpi::run(4, |comm| {
            let members: Vec<usize> = (0..comm.size()).collect();
            let mut vals = [
                c64(comm.rank() as f64, 1.0),
                c64(2.0, -(comm.rank() as f64)),
            ];
            allreduce_scalars(&comm, &members, &mut vals);
            vals
        });
        for r in results {
            assert_eq!(r[0], c64(6.0, 4.0));
            assert_eq!(r[1], c64(8.0, -6.0));
        }
    }

    #[test]
    fn allreduce_scalars_subset_only_touches_members() {
        // ranks {0, 2} reduce; ranks {1, 3} reduce; results independent
        let (results, _) = ffw_mpi::run(4, |comm| {
            let group = comm.rank() % 2;
            let members: Vec<usize> = vec![group, group + 2];
            let mut v = [c64((comm.rank() + 1) as f64, 0.0)];
            allreduce_scalars(&comm, &members, &mut v);
            v[0].re
        });
        assert_eq!(results, vec![4.0, 6.0, 4.0, 6.0]); // 1+3, 2+4
    }

    #[test]
    fn allreduce_scalars_rejects_nonmember_caller() {
        // A rank reducing over a member list it is not part of is a protocol
        // bug that previously manifested as a hang; it must now fail fast
        // with a diagnostic (the rank's own assert, propagated by ffw-mpi).
        let result = std::panic::catch_unwind(|| {
            let _ = ffw_mpi::run_with_timeout(3, std::time::Duration::from_millis(80), |comm| {
                // Ranks 0 and 1 reduce correctly; rank 2 passes a member list
                // it does not belong to.
                let members = vec![0, 1];
                let mut v = [c64(1.0, 0.0)];
                allreduce_scalars(&comm, &members, &mut v);
            });
        });
        let msg = result
            .expect_err("must panic")
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert!(msg.contains("does not include itself"), "got: {msg}");
    }

    #[test]
    fn dist_bicgstab_solves_distributed_scattering_system() {
        let domain = Domain::new(32, 1.0);
        let plan = Arc::new(MlfmaPlan::new(&domain, Accuracy::low()));
        let n = plan.n_pixels();
        let object: Vec<C64> = random_x(n, 3).iter().map(|v| v.scale(5.0)).collect();
        let b = random_x(n, 5);
        let n_ranks = 4;
        let per = n / n_ranks;
        let plan2 = Arc::clone(&plan);
        let (obj_ref, b_ref) = (&object, &b);
        let (slices, _) = ffw_mpi::run(n_ranks, move |comm| {
            let members: Vec<usize> = (0..comm.size()).collect();
            let r = comm.rank();
            let g0 = DistMlfma::new(&comm, Arc::clone(&plan2), members.clone(), true);
            let a = DistScatteringOp {
                g0: &g0,
                object_local: &obj_ref[r * per..(r + 1) * per],
            };
            let mut x = vec![C64::ZERO; per];
            let stats = dist_bicgstab(
                &a,
                &comm,
                &members,
                &b_ref[r * per..(r + 1) * per],
                &mut x,
                ffw_solver::IterConfig {
                    tol: 1e-9,
                    max_iters: 500,
                },
            );
            assert!(stats.converged, "{stats:?}");
            x
        });
        let x: Vec<C64> = slices.into_iter().flatten().collect();
        // verify the residual with an independent single-rank apply
        let plan3 = Arc::clone(&plan);
        let x_ref = &x;
        let (ys, _) = ffw_mpi::run(1, move |comm| {
            let g0 = DistMlfma::new(&comm, Arc::clone(&plan3), vec![0], true);
            let a = DistScatteringOp {
                g0: &g0,
                object_local: obj_ref,
            };
            let mut y = vec![C64::ZERO; x_ref.len()];
            a.apply_local(x_ref, &mut y);
            y
        });
        assert!(rel_diff(&ys[0], &b) < 1e-7, "{}", rel_diff(&ys[0], &b));
    }

    #[test]
    fn adjoint_op_consistent_with_forward() {
        // <A x, y> == <x, A^H y> on distributed slices (2 ranks)
        let domain = Domain::new(32, 1.0);
        let plan = Arc::new(MlfmaPlan::new(&domain, Accuracy::low()));
        let n = plan.n_pixels();
        let object = random_x(n, 9);
        let x = random_x(n, 11);
        let y = random_x(n, 13);
        let per = n / 2;
        let plan2 = Arc::clone(&plan);
        let (o_ref, x_ref, y_ref) = (&object, &x, &y);
        let (dots, _) = ffw_mpi::run(2, move |comm| {
            let members: Vec<usize> = vec![0, 1];
            let r = comm.rank();
            let g0 = DistMlfma::new(&comm, Arc::clone(&plan2), members.clone(), true);
            let ol = &o_ref[r * per..(r + 1) * per];
            let a = DistScatteringOp {
                g0: &g0,
                object_local: ol,
            };
            let ah = DistAdjointScatteringOp {
                g0: &g0,
                object_local: ol,
            };
            let mut ax = vec![C64::ZERO; per];
            a.apply_local(&x_ref[r * per..(r + 1) * per], &mut ax);
            let mut ahy = vec![C64::ZERO; per];
            ah.apply_local(&y_ref[r * per..(r + 1) * per], &mut ahy);
            let mut d = [
                zdotc(&ax, &y_ref[r * per..(r + 1) * per]),
                zdotc(&x_ref[r * per..(r + 1) * per], &ahy),
            ];
            allreduce_scalars(&comm, &members, &mut d);
            d
        });
        let (lhs, rhs) = (dots[0][0], dots[0][1]);
        // The adjoint reuses G0^T = G0, which the MLFMA *approximation*
        // satisfies only to its own accuracy (~1e-3 at Accuracy::low); the
        // identity must hold at that level, not machine precision.
        assert!(
            (lhs - rhs).abs() < 1e-2 * lhs.abs().max(1.0),
            "{lhs:?} vs {rhs:?}"
        );
    }
}
