//! Distributed forward/adjoint solves over sub-tree-partitioned vectors.
//!
//! Vectors are split across the sub-tree communicator members exactly like
//! the MLFMA pixel ranges; BiCGStab runs with *local* vector arithmetic and
//! communicator-wide inner products.

use crate::engine::DistMlfma;
use ffw_mpi::{Comm, FaultError};
use ffw_numerics::vecops::{norm2_sqr, zdotc};
use ffw_numerics::{c64, C64};
use ffw_solver::{IterConfig, SolveStats};

/// Sum-allreduce of complex scalars among an explicit member list (global
/// rank ids; `members[0]` acts as the root).
///
/// Misuse is diagnosed rather than hung: the member list is validated up
/// front (every caller must appear in its own list, members must be valid
/// and distinct), and if the member lists *across* ranks disagree — so some
/// rank waits for a contribution that never comes — the `ffw-mpi` deadlock
/// watchdog reconstructs the wait-for graph and fails the run with a report
/// naming the stuck ranks.
pub fn allreduce_scalars(comm: &Comm, members: &[usize], vals: &mut [C64]) {
    if let Err(e) = try_allreduce_scalars(comm, members, vals) {
        panic!("ffw-dist: {e}");
    }
}

/// Checked variant of [`allreduce_scalars`]: a dead or unreachable peer
/// surfaces as a typed [`FaultError`] instead of a panic, so fault-tolerant
/// drivers can unwind the rank cleanly and relaunch.
pub fn try_allreduce_scalars(
    comm: &Comm,
    members: &[usize],
    vals: &mut [C64],
) -> Result<(), FaultError> {
    if members.len() <= 1 {
        return Ok(());
    }
    let me = comm.rank();
    assert!(
        members.contains(&me),
        "allreduce_scalars: rank {me} called with member list {members:?} that \
         does not include itself"
    );
    for (i, &m) in members.iter().enumerate() {
        assert!(
            m < comm.size(),
            "allreduce_scalars: member {m} out of range (communicator has {} ranks)",
            comm.size()
        );
        assert!(
            !members[..i].contains(&m),
            "allreduce_scalars: member {m} listed twice in {members:?}"
        );
    }
    let mut packed: Vec<(f64, f64)> = vals.iter().map(|v| (v.re, v.im)).collect();
    const TAG_UP: u32 = 0x200;
    const TAG_DOWN: u32 = 0x201;
    // Every hop carries an ABFT checksum lane (the element sum) next to the
    // data. The per-message CRC already rejects in-flight bit flips; the
    // lane additionally lets the *result* of the reduction be verified: the
    // root folds the contribution lanes into the lane of the reduced vector,
    // so a receiver of the DOWN broadcast re-derives the sum and catches
    // corruption inside the reduction arithmetic itself.
    if me == members[0] {
        let mut lane = ffw_fault::abft_lane_c64(&packed);
        for &peer in &members[1..] {
            let (part, part_lane) = comm.recv_checked_laned(peer, TAG_UP)?;
            let part = part.into_c64();
            if let Some((lr, li)) = part_lane {
                lane.0 += lr;
                lane.1 += li;
            }
            for (p, q) in packed.iter_mut().zip(part) {
                p.0 += q.0;
                p.1 += q.1;
            }
        }
        for &peer in &members[1..] {
            comm.send_checked_laned(peer, TAG_DOWN, ffw_mpi::Payload::C64(packed.clone()), lane)?;
        }
    } else {
        let lane = ffw_fault::abft_lane_c64(&packed);
        comm.send_checked_laned(
            members[0],
            TAG_UP,
            ffw_mpi::Payload::C64(packed.clone()),
            lane,
        )?;
        let (down, _lane) = comm.recv_checked_laned(members[0], TAG_DOWN)?;
        packed = down.into_c64();
    }
    for (v, p) in vals.iter_mut().zip(packed) {
        *v = c64(p.0, p.1);
    }
    Ok(())
}

/// A distributed operator: applies to local slices, communicating internally.
pub trait DistOp {
    /// Local slice length.
    fn n_local(&self) -> usize;
    /// `y_local = (A x)_local`.
    fn apply_local(&self, x_local: &[C64], y_local: &mut [C64]);
    /// Checked apply: communication failure surfaces as a typed error.
    /// Operators without internal communication may keep the default, which
    /// delegates to [`DistOp::apply_local`].
    fn try_apply_local(&self, x_local: &[C64], y_local: &mut [C64]) -> Result<(), FaultError> {
        self.apply_local(x_local, y_local);
        Ok(())
    }
    /// Checked block apply: `ys[b] = (A xs[b])_local` for a panel of `B`
    /// columns. The default loops the scalar path (trivially bit-identical
    /// per column); operators over a [`DistMlfma`] override it to fuse the
    /// panel's communication into one message per peer.
    fn try_apply_block_local(
        &self,
        xs_local: &[&[C64]],
        ys_local: &mut [Vec<C64>],
    ) -> Result<(), FaultError> {
        assert_eq!(xs_local.len(), ys_local.len(), "block width mismatch");
        for (x, y) in xs_local.iter().zip(ys_local.iter_mut()) {
            self.try_apply_local(x, y)?;
        }
        Ok(())
    }
}

/// Distributed `A = I - G0 diag(O)` over a [`DistMlfma`].
pub struct DistScatteringOp<'a, 'c> {
    /// The distributed Green's operator.
    pub g0: &'a DistMlfma<'c>,
    /// Local slice of the object vector.
    pub object_local: &'a [C64],
}

impl DistOp for DistScatteringOp<'_, '_> {
    fn n_local(&self) -> usize {
        self.object_local.len()
    }
    fn apply_local(&self, x_local: &[C64], y_local: &mut [C64]) {
        self.try_apply_local(x_local, y_local)
            .unwrap_or_else(|e| panic!("ffw-dist: {e}"));
    }
    fn try_apply_local(&self, x_local: &[C64], y_local: &mut [C64]) -> Result<(), FaultError> {
        let ox: Vec<C64> = self
            .object_local
            .iter()
            .zip(x_local)
            .map(|(o, x)| *o * *x)
            .collect();
        self.g0.try_apply(&ox, y_local)?; // lint:single-rhs-ok the op's scalar building block
        for (y, x) in y_local.iter_mut().zip(x_local) {
            *y = *x - *y;
        }
        Ok(())
    }
    fn try_apply_block_local(
        &self,
        xs_local: &[&[C64]],
        ys_local: &mut [Vec<C64>],
    ) -> Result<(), FaultError> {
        assert_eq!(xs_local.len(), ys_local.len(), "block width mismatch");
        // Per-column scaling (same op order as the scalar path), one fused
        // G0 traversal for the whole panel.
        let oxs: Vec<Vec<C64>> = xs_local
            .iter()
            .map(|x| {
                self.object_local
                    .iter()
                    .zip(*x)
                    .map(|(o, xi)| *o * *xi)
                    .collect()
            })
            .collect();
        let ox_refs: Vec<&[C64]> = oxs.iter().map(|v| v.as_slice()).collect();
        self.g0.try_apply_block(&ox_refs, ys_local)?;
        for (y, x) in ys_local.iter_mut().zip(xs_local) {
            for (yi, xi) in y.iter_mut().zip(*x) {
                *yi = *xi - *yi;
            }
        }
        Ok(())
    }
}

/// Distributed adjoint `A^H = I - diag(conj O) G0^H` (conjugation trick).
pub struct DistAdjointScatteringOp<'a, 'c> {
    /// The distributed Green's operator.
    pub g0: &'a DistMlfma<'c>,
    /// Local slice of the object vector.
    pub object_local: &'a [C64],
}

impl DistOp for DistAdjointScatteringOp<'_, '_> {
    fn n_local(&self) -> usize {
        self.object_local.len()
    }
    fn apply_local(&self, x_local: &[C64], y_local: &mut [C64]) {
        self.try_apply_local(x_local, y_local)
            .unwrap_or_else(|e| panic!("ffw-dist: {e}"));
    }
    fn try_apply_local(&self, x_local: &[C64], y_local: &mut [C64]) -> Result<(), FaultError> {
        let xc: Vec<C64> = x_local.iter().map(|v| v.conj()).collect();
        self.g0.try_apply(&xc, y_local)?; // lint:single-rhs-ok the op's scalar building block
        for ((y, x), o) in y_local.iter_mut().zip(x_local).zip(self.object_local) {
            *y = *x - o.conj() * y.conj();
        }
        Ok(())
    }
    fn try_apply_block_local(
        &self,
        xs_local: &[&[C64]],
        ys_local: &mut [Vec<C64>],
    ) -> Result<(), FaultError> {
        assert_eq!(xs_local.len(), ys_local.len(), "block width mismatch");
        let xcs: Vec<Vec<C64>> = xs_local
            .iter()
            .map(|x| x.iter().map(|v| v.conj()).collect())
            .collect();
        let xc_refs: Vec<&[C64]> = xcs.iter().map(|v| v.as_slice()).collect();
        self.g0.try_apply_block(&xc_refs, ys_local)?;
        for (y, x) in ys_local.iter_mut().zip(xs_local) {
            for ((yi, xi), o) in y.iter_mut().zip(*x).zip(self.object_local) {
                *yi = *xi - o.conj() * yi.conj();
            }
        }
        Ok(())
    }
}

/// Raw distributed `G0` as a [`DistOp`].
pub struct DistG0Op<'a, 'c>(pub &'a DistMlfma<'c>);

impl DistOp for DistG0Op<'_, '_> {
    fn n_local(&self) -> usize {
        self.0.n_local()
    }
    fn apply_local(&self, x_local: &[C64], y_local: &mut [C64]) {
        self.0.apply(x_local, y_local);
    }
    fn try_apply_local(&self, x_local: &[C64], y_local: &mut [C64]) -> Result<(), FaultError> {
        self.0.try_apply(x_local, y_local)
    }
    fn try_apply_block_local(
        &self,
        xs_local: &[&[C64]],
        ys_local: &mut [Vec<C64>],
    ) -> Result<(), FaultError> {
        self.0.try_apply_block(xs_local, ys_local)
    }
}

fn finite_c(v: C64) -> bool {
    v.re.is_finite() && v.im.is_finite()
}

/// How one distributed BiCGStab cycle ended. Breakdown decisions are made
/// from *reduced* scalars, which are bit-identical on every member rank, so
/// all ranks of the communicator take the same branch and stay in lockstep.
enum DistCycleEnd {
    Converged(f64),
    MaxIters(f64),
    Breakdown { res: f64, detail: String },
}

#[allow(clippy::too_many_arguments)]
fn dist_bicgstab_cycle<A: DistOp + ?Sized>(
    a: &A,
    comm: &Comm,
    members: &[usize],
    b: &[C64],
    x: &mut [C64],
    cfg: IterConfig,
    b_norm: f64,
    iters: &mut usize,
    matvecs: &mut usize,
) -> Result<DistCycleEnd, FaultError> {
    let n = b.len();
    let reduce1 = |v: f64| -> Result<f64, FaultError> {
        let mut s = [c64(v, 0.0)];
        try_allreduce_scalars(comm, members, &mut s)?;
        Ok(s[0].re)
    };
    let mut r = vec![C64::ZERO; n];
    a.try_apply_local(x, &mut r)?;
    *matvecs += 1;
    for (ri, bi) in r.iter_mut().zip(b) {
        *ri = *bi - *ri; // r = b - A x
    }
    let r_hat = r.clone();
    let mut rho = C64::ONE;
    let mut alpha = C64::ONE;
    let mut omega = C64::ONE;
    let mut v = vec![C64::ZERO; n];
    let mut p = vec![C64::ZERO; n];
    let mut s = vec![C64::ZERO; n];
    let mut t = vec![C64::ZERO; n];
    let mut x_prev = vec![C64::ZERO; n];

    let mut res = reduce1(norm2_sqr(&r))?.sqrt() / b_norm;
    if !res.is_finite() {
        return Ok(DistCycleEnd::Breakdown {
            res: f64::NAN,
            detail: "initial residual is not finite".into(),
        });
    }
    if res < cfg.tol {
        return Ok(DistCycleEnd::Converged(res));
    }
    loop {
        if *iters >= cfg.max_iters {
            return Ok(DistCycleEnd::MaxIters(res));
        }
        let mut dots = [zdotc(&r_hat, &r)];
        try_allreduce_scalars(comm, members, &mut dots)?;
        let rho_new = dots[0];
        if !finite_c(rho_new) {
            return Ok(DistCycleEnd::Breakdown {
                res,
                detail: "rho inner product is not finite".into(),
            });
        }
        if rho_new.abs() < 1e-300 {
            return Ok(DistCycleEnd::Breakdown {
                res,
                detail: "rho underflow".into(),
            });
        }
        *iters += 1;
        let beta = (rho_new / rho) * (alpha / omega);
        for i in 0..n {
            p[i] = r[i] + beta * (p[i] - omega * v[i]);
        }
        a.try_apply_local(&p, &mut v)?;
        *matvecs += 1;
        let mut dots = [zdotc(&r_hat, &v)];
        try_allreduce_scalars(comm, members, &mut dots)?;
        alpha = rho_new / dots[0];
        for i in 0..n {
            s[i] = r[i] - alpha * v[i];
        }
        let s_norm = reduce1(norm2_sqr(&s))?.sqrt() / b_norm;
        if s_norm < cfg.tol {
            for i in 0..n {
                x[i] += alpha * p[i];
            }
            return Ok(DistCycleEnd::Converged(s_norm));
        }
        a.try_apply_local(&s, &mut t)?;
        *matvecs += 1;
        let mut dots = [zdotc(&t, &s), zdotc(&t, &t)];
        try_allreduce_scalars(comm, members, &mut dots)?;
        omega = dots[0] / dots[1];
        // Snapshot x so a non-finite update can be rolled back instead of
        // poisoning the iterate (NaN fails every `<` comparison, so the old
        // loop silently ran to max_iters with a NaN x).
        x_prev.copy_from_slice(x);
        for i in 0..n {
            x[i] += alpha * p[i] + omega * s[i];
            r[i] = s[i] - omega * t[i];
        }
        let res_new = reduce1(norm2_sqr(&r))?.sqrt() / b_norm;
        if !res_new.is_finite() {
            // Rolled-back step is not counted: `iterations` means update
            // steps reflected in the returned iterate (SolveStats contract).
            x.copy_from_slice(&x_prev);
            *iters -= 1;
            return Ok(DistCycleEnd::Breakdown {
                res,
                detail: "residual became non-finite".into(),
            });
        }
        res = res_new;
        if res < cfg.tol {
            return Ok(DistCycleEnd::Converged(res));
        }
        rho = rho_new;
    }
}

/// Distributed BiCGStab over local slices, with inner products reduced among
/// `members`. The algorithm is numerically identical to the serial
/// `ffw_solver::bicgstab` — enabling the paper's serial-vs-parallel
/// consistency check.
///
/// Communication failures panic (use [`try_dist_bicgstab`] for typed
/// errors); a breakdown returns honest unconverged stats with `x` at the
/// last finite iterate.
pub fn dist_bicgstab<A: DistOp>(
    a: &A,
    comm: &Comm,
    members: &[usize],
    b: &[C64],
    x: &mut [C64],
    cfg: IterConfig,
) -> SolveStats {
    // lint:backend-ok the distributed Krylov entry points wrap their own impl
    match dist_bicgstab_impl(a, comm, members, b, x, cfg, 0) {
        Ok(stats) => stats,
        Err(DistSolveFailure::Breakdown {
            iterations,
            matvecs,
            rel_residual,
            ..
        }) => SolveStats {
            verify_matvecs: 0,
            rolled_back: 0,
            iterations,
            matvecs,
            rel_residual,
            converged: false,
        },
        Err(DistSolveFailure::Comm(e)) => panic!("ffw-dist: {e}"),
    }
}

/// Checked distributed BiCGStab: a dead peer or lost message surfaces as the
/// originating [`FaultError`]; a Krylov breakdown retries once from the last
/// finite iterate (all member ranks take the same decision, since it is made
/// from reduced scalars) and then surfaces
/// [`FaultError::KrylovBreakdown`].
pub fn try_dist_bicgstab<A: DistOp>(
    a: &A,
    comm: &Comm,
    members: &[usize],
    b: &[C64],
    x: &mut [C64],
    cfg: IterConfig,
) -> Result<SolveStats, FaultError> {
    // lint:backend-ok the distributed Krylov entry points wrap their own impl
    match dist_bicgstab_impl(a, comm, members, b, x, cfg, 1) {
        Ok(stats) => Ok(stats),
        Err(DistSolveFailure::Comm(e)) => Err(e),
        Err(DistSolveFailure::Breakdown {
            iterations,
            rel_residual,
            detail,
            ..
        }) => Err(FaultError::KrylovBreakdown {
            rank: comm.rank(),
            iterations,
            rel_residual,
            detail,
        }),
    }
}

/// Fused `dst[c] = A src[c]` over the active columns of a panel, counting
/// one matvec per column.
fn block_apply_active<A: DistOp + ?Sized>(
    a: &A,
    active: &[usize],
    src: &[Vec<C64>],
    dst: &mut [Vec<C64>],
    matvecs: &mut [usize],
) -> Result<(), FaultError> {
    let refs: Vec<&[C64]> = active.iter().map(|&c| src[c].as_slice()).collect();
    let mut outs: Vec<Vec<C64>> = active
        .iter()
        .map(|&c| std::mem::take(&mut dst[c]))
        .collect();
    let result = a.try_apply_block_local(&refs, &mut outs);
    for (k, &c) in active.iter().enumerate() {
        dst[c] = std::mem::take(&mut outs[k]);
        matvecs[c] += 1;
    }
    result
}

/// Batched distributed BiCGStab: iterates `B` right-hand sides in lockstep,
/// so every matvec is a fused [`DistOp::try_apply_block_local`] over the
/// still-active columns and every inner product for the panel rides in ONE
/// allreduce instead of `B` — this is the paper's message-fusion idea
/// extended along the illumination dimension.
///
/// Per-column arithmetic follows [`try_dist_bicgstab`]'s exact op order and
/// never mixes columns, so each column's trajectory (iterates, residuals,
/// stats) is bit-identical to a scalar solve of that column alone. Converged
/// or broken-down columns are frozen out of subsequent fused applies; every
/// freeze decision is made from *reduced* scalars, which are bit-identical on
/// all member ranks, so ranks narrow the active set identically and stay in
/// lockstep. Columns that break down are retried once from their last finite
/// iterate after the lockstep sweep (matching [`try_dist_bicgstab`]'s
/// `max_restarts = 1`); an exhausted column surfaces
/// [`FaultError::KrylovBreakdown`], a communication failure aborts the whole
/// batch with the originating error.
pub fn try_dist_bicgstab_block<A: DistOp + ?Sized>(
    a: &A,
    comm: &Comm,
    members: &[usize],
    bs: &[&[C64]],
    xs: &mut [Vec<C64>],
    cfg: IterConfig,
) -> Result<Vec<SolveStats>, FaultError> {
    let width = bs.len();
    assert_eq!(xs.len(), width, "bs/xs width mismatch");
    if width == 0 {
        return Ok(Vec::new());
    }
    let n = bs[0].len();
    for (b, x) in bs.iter().zip(xs.iter()) {
        assert_eq!(b.len(), n, "ragged right-hand sides");
        assert_eq!(x.len(), n, "ragged initial guesses");
    }

    // One fused reduction for all B norms (the scalar path pays B messages).
    let mut b_sqr: Vec<C64> = bs.iter().map(|b| c64(norm2_sqr(b), 0.0)).collect();
    try_allreduce_scalars(comm, members, &mut b_sqr)?;
    let b_norm: Vec<f64> = b_sqr.iter().map(|v| v.re.sqrt()).collect();

    let mut stats: Vec<SolveStats> = vec![
        SolveStats {
            verify_matvecs: 0,
            rolled_back: 0,
            iterations: 0,
            matvecs: 0,
            rel_residual: 0.0,
            converged: true,
        };
        width
    ];
    let mut iters = vec![0usize; width];
    let mut matvecs = vec![0usize; width];
    let mut res = vec![0f64; width];
    // Columns that broke down in the lockstep sweep, retried afterwards.
    let mut broken: Vec<(usize, String)> = Vec::new();

    let mut active: Vec<usize> = Vec::new();
    for c in 0..width {
        if b_norm[c] == 0.0 {
            // zero RHS short-circuits exactly like the scalar path
            xs[c].iter_mut().for_each(|v| *v = C64::ZERO);
        } else {
            active.push(c);
        }
    }

    let mut r = vec![vec![C64::ZERO; n]; width];
    let mut r_hat = vec![Vec::new(); width];
    let mut v = vec![vec![C64::ZERO; n]; width];
    let mut p = vec![vec![C64::ZERO; n]; width];
    let mut s = vec![vec![C64::ZERO; n]; width];
    let mut t = vec![vec![C64::ZERO; n]; width];
    let mut x_prev = vec![vec![C64::ZERO; n]; width];
    let mut rho = vec![C64::ONE; width];
    let mut rho_next = vec![C64::ONE; width];
    let mut alpha = vec![C64::ONE; width];
    let mut omega = vec![C64::ONE; width];

    if !active.is_empty() {
        // r = b - A x, one fused traversal for the panel
        block_apply_active(a, &active, &*xs, &mut r, &mut matvecs)?;
        for &c in &active {
            for (ri, bi) in r[c].iter_mut().zip(bs[c]) {
                *ri = *bi - *ri;
            }
            r_hat[c] = r[c].clone();
        }
        let mut rn: Vec<C64> = active.iter().map(|&c| c64(norm2_sqr(&r[c]), 0.0)).collect();
        try_allreduce_scalars(comm, members, &mut rn)?;
        let mut survivors = Vec::with_capacity(active.len());
        for (k, &c) in active.iter().enumerate() {
            res[c] = rn[k].re.sqrt() / b_norm[c];
            if !res[c].is_finite() {
                res[c] = f64::NAN;
                broken.push((c, "initial residual is not finite".into()));
            } else if res[c] < cfg.tol {
                stats[c] = SolveStats {
                    verify_matvecs: 0,
                    rolled_back: 0,
                    iterations: 0,
                    matvecs: matvecs[c],
                    rel_residual: res[c],
                    converged: true,
                };
            } else {
                survivors.push(c);
            }
        }
        active = survivors;
    }

    while !active.is_empty() {
        // budget check (iters is deterministic and identical on every rank)
        active.retain(|&c| {
            if iters[c] >= cfg.max_iters {
                stats[c] = SolveStats {
                    verify_matvecs: 0,
                    rolled_back: 0,
                    iterations: iters[c],
                    matvecs: matvecs[c],
                    rel_residual: res[c],
                    converged: false,
                };
                false
            } else {
                true
            }
        });
        if active.is_empty() {
            break;
        }

        // phase 1: rho = <r_hat, r>, one fused reduction for the panel
        let mut dots: Vec<C64> = active.iter().map(|&c| zdotc(&r_hat[c], &r[c])).collect();
        try_allreduce_scalars(comm, members, &mut dots)?;
        let mut survivors = Vec::with_capacity(active.len());
        for (k, &c) in active.iter().enumerate() {
            let rho_new = dots[k];
            if !finite_c(rho_new) {
                broken.push((c, "rho inner product is not finite".into()));
                continue;
            }
            if rho_new.abs() < 1e-300 {
                broken.push((c, "rho underflow".into()));
                continue;
            }
            iters[c] += 1;
            let beta = (rho_new / rho[c]) * (alpha[c] / omega[c]);
            for i in 0..n {
                p[c][i] = r[c][i] + beta * (p[c][i] - omega[c] * v[c][i]);
            }
            rho_next[c] = rho_new;
            survivors.push(c);
        }
        active = survivors;
        if active.is_empty() {
            break;
        }

        block_apply_active(a, &active, &p, &mut v, &mut matvecs)?;
        // phase 2: alpha and the early s-norm exit
        let mut dots: Vec<C64> = active.iter().map(|&c| zdotc(&r_hat[c], &v[c])).collect();
        try_allreduce_scalars(comm, members, &mut dots)?;
        for (k, &c) in active.iter().enumerate() {
            alpha[c] = rho_next[c] / dots[k];
            for i in 0..n {
                s[c][i] = r[c][i] - alpha[c] * v[c][i];
            }
        }
        let mut sn: Vec<C64> = active.iter().map(|&c| c64(norm2_sqr(&s[c]), 0.0)).collect();
        try_allreduce_scalars(comm, members, &mut sn)?;
        let mut survivors = Vec::with_capacity(active.len());
        for (k, &c) in active.iter().enumerate() {
            let s_norm = sn[k].re.sqrt() / b_norm[c];
            if s_norm < cfg.tol {
                for i in 0..n {
                    xs[c][i] += alpha[c] * p[c][i];
                }
                stats[c] = SolveStats {
                    verify_matvecs: 0,
                    rolled_back: 0,
                    iterations: iters[c],
                    matvecs: matvecs[c],
                    rel_residual: s_norm,
                    converged: true,
                };
            } else {
                survivors.push(c);
            }
        }
        active = survivors;
        if active.is_empty() {
            break;
        }

        block_apply_active(a, &active, &s, &mut t, &mut matvecs)?;
        // phase 3: omega, the x/r update and the residual check — the two
        // omega dots for every column ride in one reduction
        let mut dots: Vec<C64> = Vec::with_capacity(2 * active.len());
        for &c in &active {
            dots.push(zdotc(&t[c], &s[c]));
            dots.push(zdotc(&t[c], &t[c]));
        }
        try_allreduce_scalars(comm, members, &mut dots)?;
        for (k, &c) in active.iter().enumerate() {
            omega[c] = dots[2 * k] / dots[2 * k + 1];
            x_prev[c].copy_from_slice(&xs[c]);
            for i in 0..n {
                xs[c][i] += alpha[c] * p[c][i] + omega[c] * s[c][i];
                r[c][i] = s[c][i] - omega[c] * t[c][i];
            }
        }
        let mut rn: Vec<C64> = active.iter().map(|&c| c64(norm2_sqr(&r[c]), 0.0)).collect();
        try_allreduce_scalars(comm, members, &mut rn)?;
        let mut survivors = Vec::with_capacity(active.len());
        for (k, &c) in active.iter().enumerate() {
            let res_new = rn[k].re.sqrt() / b_norm[c];
            if !res_new.is_finite() {
                // Roll back to the last finite iterate, keep the old res.
                // The uncounted step follows the SolveStats contract:
                // iterations = update steps reflected in the iterate.
                xs[c].copy_from_slice(&x_prev[c]);
                iters[c] -= 1;
                broken.push((c, "residual became non-finite".into()));
                continue;
            }
            res[c] = res_new;
            if res_new < cfg.tol {
                stats[c] = SolveStats {
                    verify_matvecs: 0,
                    rolled_back: 0,
                    iterations: iters[c],
                    matvecs: matvecs[c],
                    rel_residual: res_new,
                    converged: true,
                };
            } else {
                rho[c] = rho_next[c];
                survivors.push(c);
            }
        }
        active = survivors;
    }

    // Broken columns retry once from the last finite iterate, exactly like
    // try_dist_bicgstab (max_restarts = 1). Every rank derived `broken` from
    // the same reduced scalars, so the per-column cycles below stay
    // collective across the communicator.
    broken.sort_by_key(|a| a.0);
    for (c, mut detail) in broken {
        let mut restarts = 0u32;
        loop {
            let x_finite = xs[c].iter().all(|v| finite_c(*v));
            if !(restarts < 1 && iters[c] < cfg.max_iters && x_finite) {
                return Err(FaultError::KrylovBreakdown {
                    rank: comm.rank(),
                    iterations: iters[c],
                    rel_residual: res[c],
                    detail: format!("{detail} ({restarts} restart(s) attempted)"),
                });
            }
            restarts += 1;
            // lint:backend-ok restart loop inside the distributed Krylov implementation
            match dist_bicgstab_cycle(
                a,
                comm,
                members,
                bs[c],
                &mut xs[c],
                cfg,
                b_norm[c],
                &mut iters[c],
                &mut matvecs[c],
            )? {
                DistCycleEnd::Converged(r2) => {
                    stats[c] = SolveStats {
                        verify_matvecs: 0,
                        rolled_back: 0,
                        iterations: iters[c],
                        matvecs: matvecs[c],
                        rel_residual: r2,
                        converged: true,
                    };
                    break;
                }
                DistCycleEnd::MaxIters(r2) => {
                    stats[c] = SolveStats {
                        verify_matvecs: 0,
                        rolled_back: 0,
                        iterations: iters[c],
                        matvecs: matvecs[c],
                        rel_residual: r2,
                        converged: false,
                    };
                    break;
                }
                DistCycleEnd::Breakdown {
                    res: r2,
                    detail: d2,
                } => {
                    res[c] = r2;
                    detail = d2;
                }
            }
        }
    }
    Ok(stats)
}

/// Internal failure of the distributed solve core.
enum DistSolveFailure {
    /// A peer died or a message was lost mid-solve.
    Comm(FaultError),
    /// The Krylov recurrence broke down and the restart budget is spent.
    Breakdown {
        iterations: usize,
        matvecs: usize,
        rel_residual: f64,
        detail: String,
    },
}

impl From<FaultError> for DistSolveFailure {
    fn from(e: FaultError) -> Self {
        DistSolveFailure::Comm(e)
    }
}

#[allow(clippy::too_many_arguments)]
fn dist_bicgstab_impl<A: DistOp>(
    a: &A,
    comm: &Comm,
    members: &[usize],
    b: &[C64],
    x: &mut [C64],
    cfg: IterConfig,
    max_restarts: u32,
) -> Result<SolveStats, DistSolveFailure> {
    let n = b.len();
    assert_eq!(x.len(), n);
    let mut b_sqr = [c64(norm2_sqr(b), 0.0)];
    try_allreduce_scalars(comm, members, &mut b_sqr)?;
    let b_norm = b_sqr[0].re.sqrt();
    if b_norm == 0.0 {
        x.iter_mut().for_each(|v| *v = C64::ZERO);
        return Ok(SolveStats {
            verify_matvecs: 0,
            rolled_back: 0,
            iterations: 0,
            matvecs: 0,
            rel_residual: 0.0,
            converged: true,
        });
    }
    let mut iters = 0usize;
    let mut matvecs = 0usize;
    let mut restarts = 0u32;
    loop {
        // lint:backend-ok restart loop inside the distributed Krylov implementation
        match dist_bicgstab_cycle(
            a,
            comm,
            members,
            b,
            x,
            cfg,
            b_norm,
            &mut iters,
            &mut matvecs,
        )? {
            DistCycleEnd::Converged(res) => {
                return Ok(SolveStats {
                    verify_matvecs: 0,
                    rolled_back: 0,
                    iterations: iters,
                    matvecs,
                    rel_residual: res,
                    converged: true,
                })
            }
            DistCycleEnd::MaxIters(res) => {
                return Ok(SolveStats {
                    verify_matvecs: 0,
                    rolled_back: 0,
                    iterations: iters,
                    matvecs,
                    rel_residual: res,
                    converged: false,
                })
            }
            DistCycleEnd::Breakdown { res, detail } => {
                let x_finite = x.iter().all(|v| finite_c(*v));
                if restarts < max_restarts && iters < cfg.max_iters && x_finite {
                    restarts += 1;
                    continue;
                }
                return Err(DistSolveFailure::Breakdown {
                    iterations: iters,
                    matvecs,
                    rel_residual: res,
                    detail: format!("{detail} ({restarts} restart(s) attempted)"),
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::DistMlfma;
    use ffw_geometry::Domain;
    use ffw_mlfma::{Accuracy, MlfmaPlan};
    use ffw_numerics::vecops::rel_diff;
    use std::sync::Arc;

    fn random_x(n: usize, seed: u64) -> Vec<C64> {
        let mut s = seed;
        (0..n)
            .map(|_| {
                s = s
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let a = ((s >> 11) as f64 / (1u64 << 53) as f64) - 0.5;
                s = s
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let b = ((s >> 11) as f64 / (1u64 << 53) as f64) - 0.5;
                c64(a, b)
            })
            .collect()
    }

    #[test]
    fn allreduce_scalars_sums_across_members() {
        let (results, _) = ffw_mpi::run(4, |comm| {
            let members: Vec<usize> = (0..comm.size()).collect();
            let mut vals = [
                c64(comm.rank() as f64, 1.0),
                c64(2.0, -(comm.rank() as f64)),
            ];
            allreduce_scalars(&comm, &members, &mut vals);
            vals
        });
        for r in results {
            assert_eq!(r[0], c64(6.0, 4.0));
            assert_eq!(r[1], c64(8.0, -6.0));
        }
    }

    #[test]
    fn allreduce_scalars_subset_only_touches_members() {
        // ranks {0, 2} reduce; ranks {1, 3} reduce; results independent
        let (results, _) = ffw_mpi::run(4, |comm| {
            let group = comm.rank() % 2;
            let members: Vec<usize> = vec![group, group + 2];
            let mut v = [c64((comm.rank() + 1) as f64, 0.0)];
            allreduce_scalars(&comm, &members, &mut v);
            v[0].re
        });
        assert_eq!(results, vec![4.0, 6.0, 4.0, 6.0]); // 1+3, 2+4
    }

    #[test]
    fn allreduce_scalars_rejects_nonmember_caller() {
        // A rank reducing over a member list it is not part of is a protocol
        // bug that previously manifested as a hang; it must now fail fast
        // with a diagnostic (the rank's own assert, propagated by ffw-mpi).
        let result = std::panic::catch_unwind(|| {
            let _ = ffw_mpi::run_with_timeout(3, std::time::Duration::from_millis(80), |comm| {
                // Ranks 0 and 1 reduce correctly; rank 2 passes a member list
                // it does not belong to.
                let members = vec![0, 1];
                let mut v = [c64(1.0, 0.0)];
                allreduce_scalars(&comm, &members, &mut v);
            });
        });
        let msg = result
            .expect_err("must panic")
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert!(msg.contains("does not include itself"), "got: {msg}");
    }

    #[test]
    fn dist_bicgstab_solves_distributed_scattering_system() {
        let domain = Domain::new(32, 1.0);
        let plan = Arc::new(MlfmaPlan::new(&domain, Accuracy::low()));
        let n = plan.n_pixels();
        let object: Vec<C64> = random_x(n, 3).iter().map(|v| v.scale(5.0)).collect();
        let b = random_x(n, 5);
        let n_ranks = 4;
        let per = n / n_ranks;
        let plan2 = Arc::clone(&plan);
        let (obj_ref, b_ref) = (&object, &b);
        let (slices, _) = ffw_mpi::run(n_ranks, move |comm| {
            let members: Vec<usize> = (0..comm.size()).collect();
            let r = comm.rank();
            let g0 = DistMlfma::new(&comm, Arc::clone(&plan2), members.clone(), true);
            let a = DistScatteringOp {
                g0: &g0,
                object_local: &obj_ref[r * per..(r + 1) * per],
            };
            let mut x = vec![C64::ZERO; per];
            let stats = dist_bicgstab(
                &a,
                &comm,
                &members,
                &b_ref[r * per..(r + 1) * per],
                &mut x,
                ffw_solver::IterConfig {
                    tol: 1e-9,
                    max_iters: 500,
                },
            );
            assert!(stats.converged, "{stats:?}");
            x
        });
        let x: Vec<C64> = slices.into_iter().flatten().collect();
        // verify the residual with an independent single-rank apply
        let plan3 = Arc::clone(&plan);
        let x_ref = &x;
        let (ys, _) = ffw_mpi::run(1, move |comm| {
            let g0 = DistMlfma::new(&comm, Arc::clone(&plan3), vec![0], true);
            let a = DistScatteringOp {
                g0: &g0,
                object_local: obj_ref,
            };
            let mut y = vec![C64::ZERO; x_ref.len()];
            a.apply_local(x_ref, &mut y);
            y
        });
        assert!(rel_diff(&ys[0], &b) < 1e-7, "{}", rel_diff(&ys[0], &b));
    }

    /// The batched distributed solver must reproduce the scalar distributed
    /// solver bit-for-bit per column — iterates AND stats — at width 1 and
    /// at a width that exercises real lockstep narrowing, including a zero
    /// right-hand side column riding along.
    #[test]
    fn block_solver_bit_identical_to_scalar_per_column() {
        let domain = Domain::new(32, 1.0);
        let plan = Arc::new(MlfmaPlan::new(&domain, Accuracy::low()));
        let n = plan.n_pixels();
        let object: Vec<C64> = random_x(n, 21).iter().map(|v| v.scale(3.0)).collect();
        let cfg = ffw_solver::IterConfig {
            tol: 1e-8,
            max_iters: 400,
        };
        for width in [1usize, 3] {
            let bs_full: Vec<Vec<C64>> = (0..width)
                .map(|c| {
                    if width > 1 && c == 1 {
                        vec![C64::ZERO; n] // zero column must short-circuit
                    } else {
                        random_x(n, 60 + c as u64)
                    }
                })
                .collect();
            let n_ranks = 2;
            let per = n / n_ranks;
            let plan2 = Arc::clone(&plan);
            let (obj_ref, bs_ref) = (&object, &bs_full);
            let (results, _) = ffw_mpi::run(n_ranks, move |comm| {
                let members: Vec<usize> = (0..comm.size()).collect();
                let r = comm.rank();
                let g0 = DistMlfma::new(&comm, Arc::clone(&plan2), members.clone(), true);
                let a = DistScatteringOp {
                    g0: &g0,
                    object_local: &obj_ref[r * per..(r + 1) * per],
                };
                let b_locals: Vec<&[C64]> =
                    bs_ref.iter().map(|b| &b[r * per..(r + 1) * per]).collect();
                // batched solve
                let mut xs = vec![vec![C64::ZERO; per]; width];
                let stats = try_dist_bicgstab_block(&a, &comm, &members, &b_locals, &mut xs, cfg)
                    .expect("block solve");
                // scalar reference, one column at a time
                for (c, b_local) in b_locals.iter().enumerate() {
                    let mut x1 = vec![C64::ZERO; per];
                    let s1 = try_dist_bicgstab(&a, &comm, &members, b_local, &mut x1, cfg)
                        .expect("scalar solve");
                    assert_eq!(xs[c], x1, "column {c} of width {width} drifted");
                    assert_eq!(
                        (stats[c].iterations, stats[c].matvecs, stats[c].converged),
                        (s1.iterations, s1.matvecs, s1.converged),
                        "column {c} stats mismatch"
                    );
                    assert_eq!(
                        stats[c].rel_residual.to_bits(),
                        s1.rel_residual.to_bits(),
                        "column {c} residual not bit-identical"
                    );
                }
                stats.iter().map(|s| s.converged).collect::<Vec<_>>()
            });
            for per_rank in results {
                assert!(per_rank.iter().all(|&ok| ok), "width {width} not converged");
            }
        }
    }

    #[test]
    fn adjoint_op_consistent_with_forward() {
        // <A x, y> == <x, A^H y> on distributed slices (2 ranks)
        let domain = Domain::new(32, 1.0);
        let plan = Arc::new(MlfmaPlan::new(&domain, Accuracy::low()));
        let n = plan.n_pixels();
        let object = random_x(n, 9);
        let x = random_x(n, 11);
        let y = random_x(n, 13);
        let per = n / 2;
        let plan2 = Arc::clone(&plan);
        let (o_ref, x_ref, y_ref) = (&object, &x, &y);
        let (dots, _) = ffw_mpi::run(2, move |comm| {
            let members: Vec<usize> = vec![0, 1];
            let r = comm.rank();
            let g0 = DistMlfma::new(&comm, Arc::clone(&plan2), members.clone(), true);
            let ol = &o_ref[r * per..(r + 1) * per];
            let a = DistScatteringOp {
                g0: &g0,
                object_local: ol,
            };
            let ah = DistAdjointScatteringOp {
                g0: &g0,
                object_local: ol,
            };
            let mut ax = vec![C64::ZERO; per];
            a.apply_local(&x_ref[r * per..(r + 1) * per], &mut ax);
            let mut ahy = vec![C64::ZERO; per];
            ah.apply_local(&y_ref[r * per..(r + 1) * per], &mut ahy);
            let mut d = [
                zdotc(&ax, &y_ref[r * per..(r + 1) * per]),
                zdotc(&x_ref[r * per..(r + 1) * per], &ahy),
            ];
            allreduce_scalars(&comm, &members, &mut d);
            d
        });
        let (lhs, rhs) = (dots[0][0], dots[0][1]);
        // The adjoint reuses G0^T = G0, which the MLFMA *approximation*
        // satisfies only to its own accuracy (~1e-3 at Accuracy::low); the
        // identity must hold at that level, not machine precision.
        assert!(
            (lhs - rhs).abs() < 1e-2 * lhs.abs().max(1.0),
            "{lhs:?} vs {rhs:?}"
        );
    }
}
