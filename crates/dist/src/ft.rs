//! Fault-tolerant distributed DBIM: checkpoint/restart plus zero-data-loss
//! elastic recovery on rank death.
//!
//! The driver [`run_dbim_ft`] runs the same two-dimensional parallel DBIM as
//! [`crate::dist_dbim`], but every rank uses the *checked* communication and
//! solver paths, so a dead peer, a message lost beyond the retry budget, a
//! payload that fails integrity verification, or a Krylov breakdown unwinds
//! the rank with a typed [`FaultError`] instead of a panic or a hang.
//! Recovery happens at launch granularity:
//!
//! 1. After every completed outer iteration the full reconstruction state
//!    (contrast vector, conjugate-direction state, warm-start fields,
//!    residual history) is gathered to rank 0 and written to an atomic,
//!    checksummed checkpoint ([`ffw_fault::Checkpoint`]).
//! 2. When a rank dies, its peers detect the death (heartbeat suspicion,
//!    watchdog, or retry exhaustion), unwind, and the launch collapses into
//!    per-rank [`ffw_mpi::RankOutcome`]s. The driver attributes the death
//!    (heartbeat evidence and crashes are primary; watchdog `PeerDead`
//!    reports are symptoms), then **redistributes** the dead groups'
//!    transmitters across the surviving illumination groups — a
//!    deterministic round-robin over a stable ordering, so a resumed run
//!    stays bit-identical — reloads the last checkpoint, and relaunches.
//!    No illumination is lost as long as at least
//!    [`FtConfig::min_groups`] groups survive; warm-start fields for the
//!    adopted transmitters are restored from the checkpoint (keyed by
//!    transmitter id) or re-solved from zero.
//! 3. Only when the survivors fall *below* `min_groups` does the driver
//!    fall back to the legacy degraded mode: dropping every group that
//!    contained a dead rank and reporting the dropped transmitters in
//!    [`FtDbimResult::lost_txs`] (the residual assembly reweights
//!    automatically because the measured norm is recomputed over the
//!    surviving transmitters only).
//!
//! A `--resume` style restart (pass `resume: true` with the same scene and
//! config) restarts bit-identically from the last completed outer iteration:
//! the checkpoint carries everything the iteration boundary depends on, and
//! a config fingerprint guards against resuming someone else's state.

use crate::control::{IterProgress, JobControl};
use crate::engine::DistMlfma;
use crate::solver::{
    try_allreduce_scalars, try_dist_bicgstab_block, DistAdjointScatteringOp, DistScatteringOp,
};
use ffw_fault::{Checkpoint, Fingerprint};
use ffw_inverse::{BackendChoice, DbimConfig, ImagingSetup};
use ffw_mlfma::MlfmaPlan;
use ffw_mpi::{Comm, FaultError, FaultPlan, Payload, RankOutcome, Runtime};
use ffw_numerics::vecops::{norm2_sqr, zdotc};
use ffw_numerics::{c64, C64};
use std::collections::BTreeSet;
use std::ops::Range;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

/// Tag for the per-iteration checkpoint state gather (distinct from the
/// engine's 0x100–0x1xx matvec tags and the 0x200–0x201 reduction tags).
const TAG_CKPT: u32 = 0x300;

/// Configuration of a fault-tolerant distributed reconstruction.
#[derive(Clone, Debug)]
pub struct FtConfig {
    /// The DBIM iteration settings (shared with the serial solver).
    pub dbim: DbimConfig,
    /// Illumination groups (must divide the transmitter count).
    pub groups: usize,
    /// Sub-tree ranks per group (must divide 16).
    pub subtree_ranks: usize,
    /// Checkpoint file path; `None` disables checkpointing (a crash then
    /// degrades to a from-scratch relaunch on the surviving ranks).
    pub checkpoint: Option<PathBuf>,
    /// Resume from `checkpoint` instead of starting fresh. The checkpoint's
    /// config fingerprint must match this run.
    pub resume: bool,
    /// How many times the driver may relaunch after losing ranks before
    /// giving up with [`FaultError::Unrecoverable`].
    pub max_restarts: u32,
    /// Minimum number of surviving illumination groups required for elastic
    /// redistribution. While at least this many groups survive a rank
    /// death, the dead groups' transmitters are redistributed across the
    /// survivors and nothing is lost; below it the driver falls back to the
    /// legacy degraded mode that drops the dead groups' illuminations.
    /// Must be at least 1; the default is 1 (always redistribute while any
    /// group survives).
    pub min_groups: usize,
    /// External control: cooperative cancel/pause plus per-iteration
    /// progress streaming. When the stop intent is raised (directly or via
    /// the process-wide shutdown flag), every rank agrees collectively at
    /// the next outer-iteration boundary — *after* that iteration's
    /// checkpoint is written — and the driver returns with
    /// [`FtDbimResult::interrupted`] set. Resuming from the checkpoint
    /// continues bit-identically with an uninterrupted run.
    pub control: Option<JobControl>,
    /// Seeded fault plan injected into the *first* launch (test harness
    /// hook); relaunches after a failure run fault-free.
    pub fault_plan: Option<FaultPlan>,
    /// Programmatic deadlock-watchdog timeout for the underlying runtime
    /// (the `FFW_DEADLOCK_TIMEOUT_MS` environment variable still wins).
    pub deadlock_timeout: Option<Duration>,
}

impl FtConfig {
    /// Fault-tolerant run over a `groups x subtree_ranks` grid with default
    /// DBIM settings, no checkpointing and no injected faults.
    pub fn new(groups: usize, subtree_ranks: usize) -> Self {
        FtConfig {
            dbim: DbimConfig::default(),
            groups,
            subtree_ranks,
            checkpoint: None,
            resume: false,
            max_restarts: 1,
            min_groups: 1,
            control: None,
            fault_plan: None,
            deadlock_timeout: None,
        }
    }
}

/// Result of a fault-tolerant distributed reconstruction.
#[derive(Clone, Debug)]
pub struct FtDbimResult {
    /// Reconstructed object over the full domain (tree order).
    pub object: Vec<C64>,
    /// Relative residual after each completed outer iteration. Residuals are
    /// always measured against the *surviving* transmitters of the launch
    /// that produced them.
    pub residual_history: Vec<f64>,
    /// Final relative residual over the surviving transmitters.
    pub final_residual: f64,
    /// Transmitter indices lost to dead ranks. Empty on a clean run *and*
    /// on any faulty run where at least [`FtConfig::min_groups`] groups
    /// survived — their illuminations are redistributed, not dropped.
    /// Non-empty only after the below-minimum fallback dropped groups.
    pub lost_txs: Vec<usize>,
    /// How many times the driver relaunched after losing ranks.
    pub restarts: u32,
    /// `Some(next_iter)` when the run was stopped early by its
    /// [`FtConfig::control`] (cancel, pause, or process shutdown): outer
    /// iterations `0..next_iter` are complete and checkpointed; resuming
    /// the same config continues bit-identically. `None` on a run that
    /// finished all its iterations.
    pub interrupted: Option<u32>,
}

/// In-memory reconstruction state restored from a checkpoint.
struct FtState {
    next_iter: usize,
    object: Vec<C64>,
    grad_prev: Vec<C64>,
    dir: Vec<C64>,
    fields: Vec<(usize, Vec<C64>)>,
    residual_history: Vec<f64>,
}

fn unpack(v: &[(f64, f64)]) -> Vec<C64> {
    v.iter().map(|&(re, im)| c64(re, im)).collect()
}

fn pack(v: &[C64]) -> Vec<(f64, f64)> {
    v.iter().map(|c| (c.re, c.im)).collect()
}

impl FtState {
    fn from_checkpoint(c: &Checkpoint) -> Self {
        FtState {
            next_iter: c.next_iter as usize,
            object: unpack(&c.object),
            grad_prev: unpack(&c.grad_prev),
            dir: unpack(&c.dir),
            fields: c
                .fields
                .iter()
                .map(|(tx, f)| (*tx as usize, unpack(f)))
                .collect(),
            residual_history: c.residual_history.clone(),
        }
    }

    fn field_for(&self, tx: usize) -> Option<&[C64]> {
        self.fields
            .iter()
            .find(|(t, _)| *t == tx)
            .map(|(_, f)| f.as_slice())
    }
}

/// Fingerprint of everything the checkpointed state depends on: scene
/// dimensions, rank grid, iteration settings and the measured data itself.
fn run_fingerprint(
    setup: &ImagingSetup,
    plan: &MlfmaPlan,
    cfg: &DbimConfig,
    groups: usize,
    subtree_ranks: usize,
    measured: &[Vec<C64>],
) -> u64 {
    let mut fp = Fingerprint::new()
        .u64(plan.n_pixels() as u64)
        .u64(setup.n_tx() as u64)
        .u64(setup.n_rx() as u64)
        .u64(groups as u64)
        .u64(subtree_ranks as u64)
        .u64(cfg.iterations as u64)
        .f64(cfg.forward.tol)
        .u64(cfg.forward.max_iters as u64)
        .flag(cfg.real_object)
        .flag(cfg.warm_start)
        .flag(cfg.conjugate)
        .u64(cfg.backend as u64);
    for m in measured {
        for v in m {
            fp = fp.f64(v.re).f64(v.im);
        }
    }
    fp.finish()
}

fn lost_of(alive: &[Vec<usize>], n_tx: usize) -> Vec<usize> {
    let kept: BTreeSet<usize> = alive.iter().flatten().copied().collect();
    (0..n_tx).filter(|t| !kept.contains(t)).collect()
}

/// Runs the fault-tolerant distributed DBIM reconstruction.
///
/// On a clean run this computes the same iteration as [`crate::dist_dbim`]
/// (and hence matches the serial `ffw_inverse::dbim` to near machine
/// precision). Under faults it recovers per the module docs, and returns
/// [`FaultError`] only when no recovery is possible: the restart budget is
/// spent, every group is lost, the checkpoint is unusable, or a non-fault
/// typed error (e.g. a Krylov breakdown that survived its restart) occurred.
pub fn run_dbim_ft(
    setup: &ImagingSetup,
    plan: Arc<MlfmaPlan>,
    measured: &[Vec<C64>],
    cfg: &FtConfig,
) -> Result<FtDbimResult, FaultError> {
    let groups = cfg.groups;
    let p = cfg.subtree_ranks;
    let n_tx = setup.n_tx();
    assert_eq!(measured.len(), n_tx);
    assert_eq!(n_tx % groups, 0, "transmitters must divide among groups");
    assert!(cfg.min_groups >= 1, "min_groups must be at least 1");
    if cfg.dbim.backend != BackendChoice::Bicgstab {
        // The fault-tolerant pipeline pins BiCGStab (see the lint:backend-ok
        // waivers below); admission layers reject other backends before this
        // point, so reaching here means a config was constructed by hand.
        return Err(FaultError::Unrecoverable {
            detail: format!(
                "backend {} is not supported by the distributed driver",
                cfg.dbim.backend
            ),
        });
    }
    let tx_per_group = n_tx / groups;
    let fingerprint = run_fingerprint(setup, &plan, &cfg.dbim, groups, p, measured);

    // Transmitter sets per surviving group. Initially one contiguous block
    // per group; as ranks die the dead groups' transmitters are
    // redistributed across the survivors (or, below min_groups, dropped),
    // so entries may grow beyond their original block.
    let mut alive: Vec<Vec<usize>> = (0..groups)
        .map(|g| (g * tx_per_group..(g + 1) * tx_per_group).collect())
        .collect();
    let mut state: Option<FtState> = None;

    if cfg.resume {
        let path = cfg
            .checkpoint
            .as_deref()
            .ok_or_else(|| FaultError::Unrecoverable {
                detail: "resume requested but no checkpoint path configured".into(),
            })?;
        let ckpt = Checkpoint::load(path, fingerprint)?;
        ffw_obs::event(
            "dist.checkpoint.load",
            &format!("resume from iter {} ({})", ckpt.next_iter, path.display()),
        );
        let lost: BTreeSet<usize> = ckpt.lost_txs.iter().map(|&t| t as usize).collect();
        alive.retain(|txs| !txs.iter().any(|t| lost.contains(t)));
        state = Some(FtState::from_checkpoint(&ckpt));
    }

    let mut fault_plan = cfg.fault_plan.clone();
    let mut restarts = 0u32;
    loop {
        if alive.is_empty() {
            return Err(FaultError::Unrecoverable {
                detail: "every illumination group has been lost".into(),
            });
        }
        let n_ranks = alive.len() * p;
        let mut rt = Runtime::new(n_ranks);
        if let Some(t) = cfg.deadlock_timeout {
            rt = rt.deadlock_timeout(t);
        }
        if let Some(fp) = fault_plan.take() {
            rt = rt.fault_plan(fp);
        }
        let lost_txs = lost_of(&alive, n_tx);
        let (alive_ref, state_ref, lost_ref) = (&alive, state.as_ref(), &lost_txs);
        let control_ref = cfg.control.as_ref();
        let plan2 = Arc::clone(&plan);
        let ckpt_path = cfg.checkpoint.as_deref();
        let launch_span = ffw_obs::span("dist.launch");
        let launch = rt.launch(move |comm| {
            ft_rank(
                &comm,
                setup,
                Arc::clone(&plan2),
                measured,
                alive_ref,
                p,
                &cfg.dbim,
                ckpt_path,
                state_ref,
                fingerprint,
                lost_ref,
                control_ref,
            )
        });
        drop(launch_span);
        launch.stats.stats().record_obs();

        // Which ranks of this launch are gone? Crashes, exhausted-retry
        // send losses, exhausted-retransmit corruption and heartbeat
        // suspicions are primary evidence (the heartbeat monitor only ever
        // suspects ranks whose closure has actually exited). Watchdog
        // `PeerDead` reports are only symptoms — a rank blocked on an
        // alive-but-itself-blocked peer misattributes the death — so they
        // are trusted only when no primary evidence exists (a pure-timeout
        // stall).
        let mut primary: BTreeSet<usize> = BTreeSet::new();
        let mut secondary: BTreeSet<usize> = BTreeSet::new();
        for (peer, _phi) in launch.stats.heartbeat_suspects() {
            primary.insert(peer);
        }
        for (r, out) in launch.outcomes.iter().enumerate() {
            match out {
                RankOutcome::Crashed(_) => {
                    primary.insert(r);
                }
                RankOutcome::Done(Err(FaultError::SendLost { dst, .. })) => {
                    primary.insert(*dst);
                }
                RankOutcome::Done(Err(FaultError::Corruption { src, .. })) => {
                    // A peer whose messages can no longer be delivered
                    // intact is as lost as a crashed one.
                    primary.insert(*src);
                }
                RankOutcome::Done(Err(FaultError::ComputeCorruption { rank, .. })) => {
                    // The detecting rank is the corrupted one: its local
                    // panel output failed the ABFT checksum, and the halo
                    // data needed to recompute it is already consumed. The
                    // rank's exit is the death; the typed error is the
                    // primary evidence attributing it.
                    primary.insert(*rank);
                }
                RankOutcome::Done(Err(FaultError::PeerDead { peer, .. })) => {
                    secondary.insert(*peer);
                }
                RankOutcome::Done(_) => {}
            }
        }
        let dead = if primary.is_empty() {
            secondary
        } else {
            primary
        };

        if dead.is_empty() {
            // No rank died: either full success, or a typed non-fault error
            // (Krylov breakdown, checkpoint I/O) that recovery cannot fix.
            let mut outs: Vec<Option<FtRankOut>> = Vec::with_capacity(n_ranks);
            let mut first_err: Option<FaultError> = None;
            for out in launch.outcomes {
                match out {
                    RankOutcome::Done(Ok(o)) => outs.push(Some(o)),
                    RankOutcome::Done(Err(e)) => {
                        if first_err.is_none() {
                            first_err = Some(e);
                        }
                        outs.push(None);
                    }
                    RankOutcome::Crashed(e) => {
                        if first_err.is_none() {
                            first_err = Some(e);
                        }
                        outs.push(None);
                    }
                }
            }
            if let Some(e) = first_err {
                return Err(e);
            }
            // Assemble the object from group 0 (slots 0..p own contiguous
            // pixel ranges covering the whole domain, in slot order).
            let mut object = Vec::with_capacity(plan.n_pixels());
            let mut residual_history = Vec::new();
            let mut final_residual = 0.0;
            let mut interrupted = None;
            for (s, slot_out) in outs.into_iter().take(p).enumerate() {
                let o = slot_out.expect("checked above: every rank returned Ok");
                if s == 0 {
                    residual_history = o.residual_history;
                    final_residual = o.final_residual;
                    interrupted = o.stopped;
                }
                object.extend_from_slice(&o.object_local);
            }
            if let Some(next) = interrupted {
                ffw_obs::event(
                    "dist.stop",
                    &format!("run stopped at outer-iteration boundary {next}"),
                );
            }
            for &r in &residual_history {
                ffw_obs::series_push("dbim.residual", r);
            }
            ffw_obs::series_push("dbim.residual", final_residual);
            if ffw_obs::enabled() {
                ffw_obs::gauge("dbim.final_residual").set(final_residual);
                ffw_obs::counter("dist.restarts").add(restarts as u64);
            }
            return Ok(FtDbimResult {
                object,
                residual_history,
                final_residual,
                lost_txs,
                restarts,
                interrupted,
            });
        }

        // Elastic recovery: redistribute the dead groups' transmitters
        // across the survivors, restore the last checkpointed state, and
        // relaunch. Only below min_groups does the driver fall back to
        // dropping the dead groups' illuminations.
        if restarts >= cfg.max_restarts {
            return Err(FaultError::Unrecoverable {
                detail: format!(
                    "rank(s) {dead:?} died and the restart budget ({}) is exhausted",
                    cfg.max_restarts
                ),
            });
        }
        restarts += 1;
        ffw_obs::event(
            "dist.relaunch",
            &format!("rank(s) {dead:?} dead; relaunch {restarts} on surviving groups"),
        );
        let dead_groups: BTreeSet<usize> = dead.iter().map(|r| r / p).collect();
        // Orphaned transmitters in a stable (sorted) order, collected
        // before the dead groups are removed.
        let mut orphaned: Vec<usize> = dead_groups
            .iter()
            .filter_map(|&g| alive.get(g))
            .flatten()
            .copied()
            .collect();
        orphaned.sort_unstable();
        let mut gi = 0usize;
        alive.retain(|_| {
            let keep = !dead_groups.contains(&gi);
            gi += 1;
            keep
        });
        if alive.len() >= cfg.min_groups && !alive.is_empty() {
            // Deterministic round-robin over the surviving groups in their
            // stable order: the same deaths always produce the same
            // assignment, so a resumed run stays bit-identical.
            let n_alive = alive.len();
            for (i, &tx) in orphaned.iter().enumerate() {
                alive[i % n_alive].push(tx);
            }
            for txs in &mut alive {
                txs.sort_unstable();
            }
            ffw_obs::event(
                "ft.redistribute",
                &format!(
                    "{} orphaned tx(s) {:?} round-robined over {} surviving group(s)",
                    orphaned.len(),
                    orphaned,
                    alive.len()
                ),
            );
            if ffw_obs::enabled() {
                ffw_obs::counter("ft.redistributed_txs").add(orphaned.len() as u64);
            }
        } else if !orphaned.is_empty() {
            ffw_obs::event(
                "ft.drop_groups",
                &format!(
                    "{} surviving group(s) below min_groups {}; dropping tx(s) {:?}",
                    alive.len(),
                    cfg.min_groups,
                    orphaned
                ),
            );
        }
        state = match cfg.checkpoint.as_deref() {
            Some(path) if path.exists() => {
                let ckpt = Checkpoint::load(path, fingerprint)?;
                ffw_obs::event(
                    "dist.checkpoint.load",
                    &format!("recovery from iter {} ({})", ckpt.next_iter, path.display()),
                );
                Some(FtState::from_checkpoint(&ckpt))
            }
            _ => None, // no checkpoint yet: relaunch from scratch
        };
    }
}

/// One rank's slice of a completed fault-tolerant run.
struct FtRankOut {
    object_local: Vec<C64>,
    residual_history: Vec<f64>,
    final_residual: f64,
    /// `Some(next_iter)` when the collective stop protocol ended the run
    /// early; identical across ranks because the decision is an allreduce.
    stopped: Option<u32>,
}

/// The per-rank body: the same iteration as `dist_dbim`, on the checked
/// communication paths, with an optional state gather + checkpoint write at
/// the end of every outer iteration.
#[allow(clippy::too_many_arguments)]
fn ft_rank(
    comm: &Comm,
    setup: &ImagingSetup,
    plan: Arc<MlfmaPlan>,
    measured: &[Vec<C64>],
    group_txs: &[Vec<usize>],
    subtree_ranks: usize,
    cfg: &DbimConfig,
    ckpt_path: Option<&Path>,
    init: Option<&FtState>,
    fingerprint: u64,
    lost_txs: &[usize],
    control: Option<&JobControl>,
) -> Result<FtRankOut, FaultError> {
    let groups = group_txs.len();
    assert_eq!(comm.size(), groups * subtree_ranks, "rank grid mismatch");
    let rank = comm.rank();
    let group = rank / subtree_ranks;
    let slot = rank % subtree_ranks;
    let group_members: Vec<usize> = (0..subtree_ranks)
        .map(|s| group * subtree_ranks + s)
        .collect();
    let slot_siblings: Vec<usize> = (0..groups).map(|g| g * subtree_ranks + slot).collect();
    let all_members: Vec<usize> = (0..comm.size()).collect();
    let my_txs = &group_txs[group];

    let mut g0 = DistMlfma::new(comm, Arc::clone(&plan), group_members.clone(), true);
    if let Some(vc) = &cfg.verify {
        g0 = g0.with_verify(vc.rel_tol, vc.abs_floor);
    }
    let cols = g0.partition().pixel_range.clone();
    let n_local = cols.len();

    let (mut object, mut grad_prev, mut dir, mut fields, mut residual_history, start_iter) =
        match init {
            Some(st) => {
                assert_eq!(st.object.len(), plan.n_pixels(), "checkpoint dimension");
                let fields: Vec<Vec<C64>> = my_txs
                    .iter()
                    .map(|&t| match st.field_for(t) {
                        Some(f) => f[cols.clone()].to_vec(),
                        None => vec![C64::ZERO; n_local],
                    })
                    .collect();
                (
                    st.object[cols.clone()].to_vec(),
                    st.grad_prev[cols.clone()].to_vec(),
                    st.dir[cols.clone()].to_vec(),
                    fields,
                    st.residual_history.clone(),
                    st.next_iter,
                )
            }
            None => (
                vec![C64::ZERO; n_local],
                vec![C64::ZERO; n_local],
                vec![C64::ZERO; n_local],
                vec![vec![C64::ZERO; n_local]; my_txs.len()],
                Vec::new(),
                0,
            ),
        };

    // Measured norm over the *surviving* transmitters only: losing a group
    // reweights the residual to what is actually still being fit.
    let measured_norm_sqr: f64 = group_txs
        .iter()
        .flatten()
        .map(|&t| norm2_sqr(&measured[t]))
        .sum();

    // Each group batches its local transmitters: every chunk of `batch`
    // systems shares one lockstep multi-RHS solve (fused matvec traversals,
    // fused reductions) and one fused receiver-data allreduce. Per-column
    // arithmetic order is unchanged, so the reconstruction is bit-identical
    // at every batch width.
    let batch = cfg.batch.unwrap_or_else(|| my_txs.len().min(8)).max(1);
    let n_rx = setup.n_rx();

    let compute_residuals = |object: &[C64],
                             fields: &mut [Vec<C64>]|
     -> Result<(Vec<Vec<C64>>, f64), FaultError> {
        let mut residuals = Vec::with_capacity(my_txs.len());
        let mut cost_local = 0.0f64;
        let a = DistScatteringOp {
            g0: &g0,
            object_local: object,
        };
        for (chunk_idx, chunk) in my_txs.chunks(batch).enumerate() {
            let lo = chunk_idx * batch;
            let fields_chunk = &mut fields[lo..lo + chunk.len()];
            if !cfg.warm_start {
                for f in fields_chunk.iter_mut() {
                    f.iter_mut().for_each(|v| *v = C64::ZERO);
                }
            }
            let incs: Vec<&[C64]> = chunk
                .iter()
                .map(|&t| &setup.incident(t)[cols.clone()])
                .collect();
            // lint:backend-ok distributed mode is Krylov-only; admission rejects other backends
            try_dist_bicgstab_block(&a, comm, &group_members, &incs, fields_chunk, cfg.forward)?;
            // the whole chunk's receiver data rides in one allreduce
            let mut rs = vec![C64::ZERO; chunk.len() * n_rx];
            for (k, f) in fields_chunk.iter().enumerate() {
                let w: Vec<C64> = object.iter().zip(f).map(|(o, p)| *o * *p).collect();
                setup.gr_apply_cols(cols.clone(), &w, &mut rs[k * n_rx..(k + 1) * n_rx]);
            }
            try_allreduce_scalars(comm, &group_members, &mut rs)?;
            for (k, &t) in chunk.iter().enumerate() {
                let mut r = rs[k * n_rx..(k + 1) * n_rx].to_vec();
                for (ri, mi) in r.iter_mut().zip(&measured[t]) {
                    *ri -= *mi;
                }
                if slot == 0 {
                    cost_local += norm2_sqr(&r);
                }
                residuals.push(r);
            }
        }
        let mut c = [c64(cost_local, 0.0)];
        try_allreduce_scalars(comm, &all_members, &mut c)?;
        Ok((residuals, c[0].re))
    };

    for it in start_iter..cfg.iterations {
        // --- pass 1: fields + residuals ---
        let (residuals, cost) = compute_residuals(&object, &mut fields)?;
        residual_history.push((cost / measured_norm_sqr).sqrt());

        // --- pass 2: gradient (adjoint solves batched per chunk) ---
        let mut grad = vec![C64::ZERO; n_local];
        for (chunk_idx, chunk) in my_txs.chunks(batch).enumerate() {
            let lo = chunk_idx * batch;
            let mut ys: Vec<Vec<C64>> = Vec::with_capacity(chunk.len());
            let mut rhss: Vec<Vec<C64>> = Vec::with_capacity(chunk.len());
            for k in 0..chunk.len() {
                let mut y = vec![C64::ZERO; n_local];
                setup.gr_adjoint_apply_cols(cols.clone(), &residuals[lo + k], &mut y);
                rhss.push(
                    object
                        .iter()
                        .zip(&y)
                        .map(|(o, yi)| o.conj() * *yi)
                        .collect(),
                );
                ys.push(y);
            }
            let rhs_refs: Vec<&[C64]> = rhss.iter().map(|v| v.as_slice()).collect();
            let mut zs = vec![vec![C64::ZERO; n_local]; chunk.len()];
            let ah = DistAdjointScatteringOp {
                g0: &g0,
                object_local: &object,
            };
            // lint:backend-ok distributed mode is Krylov-only; admission rejects other backends
            try_dist_bicgstab_block(&ah, comm, &group_members, &rhs_refs, &mut zs, cfg.forward)?;
            let zcs: Vec<Vec<C64>> = zs
                .iter()
                .map(|z| z.iter().map(|v| v.conj()).collect())
                .collect();
            let zc_refs: Vec<&[C64]> = zcs.iter().map(|v| v.as_slice()).collect();
            let mut g0hzs = vec![vec![C64::ZERO; n_local]; chunk.len()];
            g0.try_apply_block(&zc_refs, &mut g0hzs)?;
            for k in 0..chunk.len() {
                let i = lo + k;
                for j in 0..n_local {
                    grad[j] += fields[i][j].conj() * (ys[k][j] + g0hzs[k][j].conj());
                }
            }
        }
        try_allreduce_scalars(comm, &slot_siblings, &mut grad)?;
        if cfg.real_object {
            grad.iter_mut().for_each(|v| v.im = 0.0);
        }

        // --- conjugate direction ---
        let mut dots = [
            c64(norm2_sqr(&grad), 0.0),
            zdotc(
                &grad,
                &grad_prev
                    .iter()
                    .zip(&grad)
                    .map(|(gp, g)| *g - *gp)
                    .collect::<Vec<_>>(),
            ),
            c64(norm2_sqr(&grad_prev), 0.0),
        ];
        try_allreduce_scalars(comm, &group_members, &mut dots)?;
        let g_norm_sqr = dots[0].re;
        if g_norm_sqr == 0.0 {
            break;
        }
        let beta = if cfg.conjugate && it > 0 && dots[2].re > 0.0 {
            (dots[1].re / dots[2].re).max(0.0)
        } else {
            0.0
        };
        for j in 0..n_local {
            dir[j] = -grad[j] + beta * dir[j];
        }
        grad_prev.copy_from_slice(&grad);

        // --- pass 3: step size (forward solves batched per chunk) ---
        let mut num_local = 0.0f64;
        let mut den_local = 0.0f64;
        for (chunk_idx, chunk) in my_txs.chunks(batch).enumerate() {
            let lo = chunk_idx * batch;
            let ws: Vec<Vec<C64>> = (0..chunk.len())
                .map(|k| (0..n_local).map(|j| fields[lo + k][j] * dir[j]).collect())
                .collect();
            let w_refs: Vec<&[C64]> = ws.iter().map(|v| v.as_slice()).collect();
            let mut g0ws = vec![vec![C64::ZERO; n_local]; chunk.len()];
            g0.try_apply_block(&w_refs, &mut g0ws)?;
            let g0w_refs: Vec<&[C64]> = g0ws.iter().map(|v| v.as_slice()).collect();
            let mut us = vec![vec![C64::ZERO; n_local]; chunk.len()];
            let a = DistScatteringOp {
                g0: &g0,
                object_local: &object,
            };
            // lint:backend-ok distributed mode is Krylov-only; admission rejects other backends
            try_dist_bicgstab_block(&a, comm, &group_members, &g0w_refs, &mut us, cfg.forward)?;
            // fused receiver-data allreduce for the whole chunk
            let mut fds = vec![C64::ZERO; chunk.len() * n_rx];
            for k in 0..chunk.len() {
                let src: Vec<C64> = ws[k]
                    .iter()
                    .zip(&us[k])
                    .zip(&object)
                    .map(|((wi, ui), oi)| *wi + *oi * *ui)
                    .collect();
                setup.gr_apply_cols(cols.clone(), &src, &mut fds[k * n_rx..(k + 1) * n_rx]);
            }
            try_allreduce_scalars(comm, &group_members, &mut fds)?;
            if slot == 0 {
                for k in 0..chunk.len() {
                    let fd = &fds[k * n_rx..(k + 1) * n_rx];
                    num_local -= zdotc(fd, &residuals[lo + k]).re;
                    den_local += norm2_sqr(fd);
                }
            }
        }
        let mut nd = [c64(num_local, 0.0), c64(den_local, 0.0)];
        try_allreduce_scalars(comm, &all_members, &mut nd)?;
        let alpha = if nd[1].re > 0.0 {
            nd[0].re / nd[1].re
        } else {
            0.0
        };
        for j in 0..n_local {
            object[j] += alpha * dir[j];
        }
        if cfg.real_object {
            object.iter_mut().for_each(|v| v.im = 0.0);
        }

        // --- checkpoint the completed iteration ---
        if let Some(path) = ckpt_path {
            gather_and_save(
                comm,
                path,
                fingerprint,
                it + 1,
                group_txs,
                subtree_ranks,
                cfg.warm_start,
                &cols,
                plan.n_pixels(),
                &object,
                &grad_prev,
                &dir,
                &fields,
                &residual_history,
                lost_txs,
            )?;
        }

        // --- controlled stop (cancel / pause / shutdown drain) ---
        // The decision must be collective: ranks read the stop intent at
        // different moments, so a raced local read would leave some ranks
        // inside the next iteration's collectives while others returned.
        // One extra allreduce per iteration, only when a control handle is
        // attached — uncontrolled runs keep their comm volume unchanged
        // (the BENCH_pr3 comm gate counts every message).
        if let Some(ctl) = control {
            if rank == 0 {
                ctl.emit(IterProgress {
                    completed: (it + 1) as u32,
                    residual: residual_history.last().copied().unwrap_or(f64::NAN),
                });
            }
            let intent = if ctl.stop_requested() { 1.0 } else { 0.0 };
            let mut flag = [c64(intent, 0.0)];
            try_allreduce_scalars(comm, &all_members, &mut flag)?;
            if flag[0].re > 0.0 {
                // Iterations 0..=it are complete (and checkpointed when a
                // path is configured); report the last measured residual.
                return Ok(FtRankOut {
                    object_local: object,
                    residual_history: residual_history.clone(),
                    final_residual: residual_history.last().copied().unwrap_or(f64::NAN),
                    stopped: Some((it + 1) as u32),
                });
            }
        }
    }

    // --- final residual ---
    let (_, cost) = compute_residuals(&object, &mut fields)?;
    let final_residual = (cost / measured_norm_sqr).sqrt();

    Ok(FtRankOut {
        object_local: object,
        residual_history,
        final_residual,
        stopped: None,
    })
}

/// Gathers the full reconstruction state to rank 0 and writes the
/// checkpoint. The partitioned vectors (`object`, `grad_prev`, `dir`) are
/// identical across groups, so only group 0's slots contribute them; the
/// warm-start fields are per transmitter, so every rank contributes the
/// slices of its own illumination block. All receives happen at rank 0 in a
/// fixed (group, tx, slot) order, so the gather is deterministic.
#[allow(clippy::too_many_arguments)]
fn gather_and_save(
    comm: &Comm,
    path: &Path,
    fingerprint: u64,
    next_iter: usize,
    group_txs: &[Vec<usize>],
    subtree_ranks: usize,
    warm_start: bool,
    cols: &Range<usize>,
    n_pixels: usize,
    object: &[C64],
    grad_prev: &[C64],
    dir: &[C64],
    fields: &[Vec<C64>],
    residual_history: &[f64],
    lost_txs: &[usize],
) -> Result<(), FaultError> {
    let rank = comm.rank();
    let p = subtree_ranks;
    let per = n_pixels / p;

    if rank != 0 {
        if rank < p {
            // Group-0 slot: contribute the shared solver state slices.
            let mut buf = Vec::with_capacity(3 * object.len());
            buf.extend_from_slice(object);
            buf.extend_from_slice(grad_prev);
            buf.extend_from_slice(dir);
            comm.send_checked(0, TAG_CKPT, Payload::C64(pack(&buf)))?;
        }
        if warm_start {
            for (i, _t) in group_txs[rank / p].iter().enumerate() {
                comm.send_checked(0, TAG_CKPT, Payload::C64(pack(&fields[i])))?;
            }
        }
        return Ok(());
    }

    // Rank 0: assemble the full vectors.
    let mut full_object = vec![(0.0, 0.0); n_pixels];
    let mut full_grad = vec![(0.0, 0.0); n_pixels];
    let mut full_dir = vec![(0.0, 0.0); n_pixels];
    full_object[cols.start..cols.end].copy_from_slice(&pack(object));
    full_grad[cols.start..cols.end].copy_from_slice(&pack(grad_prev));
    full_dir[cols.start..cols.end].copy_from_slice(&pack(dir));
    for s in 1..p {
        let data = comm.recv_checked(s, TAG_CKPT)?.into_c64();
        assert_eq!(data.len(), 3 * per, "checkpoint gather slice length");
        let lo = s * per;
        full_object[lo..lo + per].copy_from_slice(&data[..per]);
        full_grad[lo..lo + per].copy_from_slice(&data[per..2 * per]);
        full_dir[lo..lo + per].copy_from_slice(&data[2 * per..]);
    }

    let mut ckpt_fields: Vec<(u32, Vec<(f64, f64)>)> = Vec::new();
    if warm_start {
        for (g, txs) in group_txs.iter().enumerate() {
            for (i, &t) in txs.iter().enumerate() {
                let mut full = vec![(0.0, 0.0); n_pixels];
                for s in 0..p {
                    let sender = g * p + s;
                    let lo = s * per;
                    if sender == 0 {
                        full[lo..lo + per].copy_from_slice(&pack(&fields[i]));
                    } else {
                        let data = comm.recv_checked(sender, TAG_CKPT)?.into_c64();
                        assert_eq!(data.len(), per, "checkpoint field slice length");
                        full[lo..lo + per].copy_from_slice(&data);
                    }
                }
                ckpt_fields.push((t as u32, full));
            }
        }
    }

    let ckpt = Checkpoint {
        fingerprint,
        next_iter: next_iter as u32,
        lost_txs: lost_txs.iter().map(|&t| t as u32).collect(),
        residual_history: residual_history.to_vec(),
        object: full_object,
        grad_prev: full_grad,
        dir: full_dir,
        fields: ckpt_fields,
    };
    ckpt.save(path)?;
    ffw_obs::event(
        "dist.checkpoint.save",
        &format!("iter {next_iter} -> {}", path.display()),
    );
    Ok(())
}
