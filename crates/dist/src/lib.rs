//! # ffw-dist
//!
//! The paper's two-dimensional parallelization (Section IV): illuminations
//! distributed across rank groups, MLFMA sub-trees distributed within each
//! group, communication buffer aggregation, and overlap of communication with
//! computation — all over the `ffw-mpi` message-passing runtime.

#![warn(missing_docs)]

pub mod control;
pub mod dbim_dist;
pub mod engine;
pub mod ft;
pub mod partition;
pub mod solver;

pub use control::{IterProgress, JobControl};
pub use dbim_dist::{dist_dbim, DistDbimResult};
pub use engine::DistMlfma;
pub use ft::{run_dbim_ft, FtConfig, FtDbimResult};
pub use partition::{ExchangePlan, SubtreePartition, MAX_SUBTREE_RANKS};
pub use solver::{
    allreduce_scalars, dist_bicgstab, try_allreduce_scalars, try_dist_bicgstab,
    DistAdjointScatteringOp, DistG0Op, DistOp, DistScatteringOp,
};
