//! The fully two-dimensional parallel DBIM (paper Fig. 6): rank grid
//! `G groups x P sub-tree slots`. Groups split the illuminations; within a
//! group the MLFMA tree (and every solver vector) is partitioned across the
//! `P` slots. Synchronization happens exactly where the paper's Fig. 4 marks
//! it: the gradient combination and the step-size reductions across groups,
//! plus the per-matvec translation/near-field exchanges within a group.

use crate::engine::DistMlfma;
use crate::solver::{allreduce_scalars, dist_bicgstab, DistAdjointScatteringOp, DistScatteringOp};
use ffw_inverse::{DbimConfig, ImagingSetup};
use ffw_mlfma::MlfmaPlan;
use ffw_mpi::Comm;
use ffw_numerics::vecops::{norm2_sqr, zdotc};
use ffw_numerics::{c64, C64};
use std::sync::Arc;

/// Result of a distributed reconstruction on one rank.
#[derive(Clone, Debug)]
pub struct DistDbimResult {
    /// This rank's slice of the reconstructed object (tree order).
    pub object_local: Vec<C64>,
    /// Pixel range of the slice.
    pub pixel_range: std::ops::Range<usize>,
    /// Relative residual per iteration (identical on every rank).
    pub residual_history: Vec<f64>,
    /// Final relative residual.
    pub final_residual: f64,
}

/// Runs DBIM on a `groups x subtree` rank grid. `comm.size()` must equal
/// `groups * subtree_ranks`; transmitters must divide evenly among groups.
///
/// Numerically this performs the *same* iteration as the serial
/// `ffw_inverse::dbim` (same solves, same reductions in exact arithmetic), so
/// the serial-vs-distributed image difference plays the role of the paper's
/// CPU-vs-GPU consistency check (Section V-E, 7.15e-13).
pub fn dist_dbim(
    comm: &Comm,
    setup: &ImagingSetup,
    plan: Arc<MlfmaPlan>,
    measured: &[Vec<C64>],
    groups: usize,
    subtree_ranks: usize,
    cfg: &DbimConfig,
) -> DistDbimResult {
    assert_eq!(comm.size(), groups * subtree_ranks, "rank grid mismatch");
    let n_tx = setup.n_tx();
    assert_eq!(n_tx % groups, 0, "transmitters must divide among groups");
    let tx_per_group = n_tx / groups;
    let rank = comm.rank();
    let group = rank / subtree_ranks;
    let slot = rank % subtree_ranks;
    let group_members: Vec<usize> = (0..subtree_ranks)
        .map(|s| group * subtree_ranks + s)
        .collect();
    let slot_siblings: Vec<usize> = (0..groups).map(|g| g * subtree_ranks + slot).collect();
    let all_members: Vec<usize> = (0..comm.size()).collect();
    let my_txs: Vec<usize> = (group * tx_per_group..(group + 1) * tx_per_group).collect();

    let g0 = DistMlfma::new(comm, Arc::clone(&plan), group_members.clone(), true);
    let cols = g0.partition().pixel_range.clone();
    let n_local = cols.len();

    let mut object = vec![C64::ZERO; n_local];
    let mut fields: Vec<Vec<C64>> = vec![vec![C64::ZERO; n_local]; my_txs.len()];
    let mut grad_prev = vec![C64::ZERO; n_local];
    let mut dir = vec![C64::ZERO; n_local];
    let mut residual_history = Vec::with_capacity(cfg.iterations);

    // measured norm over *all* transmitters (identical on all ranks)
    let measured_norm_sqr: f64 = measured.iter().map(|m| norm2_sqr(m)).sum();

    let compute_residuals = |object: &[C64], fields: &mut [Vec<C64>]| -> (Vec<Vec<C64>>, f64) {
        let mut residuals = Vec::with_capacity(my_txs.len());
        let mut cost_local = 0.0f64;
        for (i, &t) in my_txs.iter().enumerate() {
            if !cfg.warm_start {
                fields[i].iter_mut().for_each(|v| *v = C64::ZERO);
            }
            let a = DistScatteringOp {
                g0: &g0,
                object_local: object,
            };
            let inc = &setup.incident(t)[cols.clone()];
            // lint:backend-ok legacy unbatched reference driver is Krylov-only by design
            dist_bicgstab(&a, comm, &group_members, inc, &mut fields[i], cfg.forward);
            // r_t = GR (O . phi) - m_t, reduced across the group
            let w: Vec<C64> = object
                .iter()
                .zip(&fields[i])
                .map(|(o, p)| *o * *p)
                .collect();
            let mut r = vec![C64::ZERO; setup.n_rx()];
            setup.gr_apply_cols(cols.clone(), &w, &mut r);
            allreduce_scalars(comm, &group_members, &mut r);
            for (ri, mi) in r.iter_mut().zip(&measured[t]) {
                *ri -= *mi;
            }
            if slot == 0 {
                cost_local += norm2_sqr(&r);
            }
            residuals.push(r);
        }
        // global cost: only slot-0 ranks contribute (each tx counted once)
        let mut c = [c64(cost_local, 0.0)];
        allreduce_scalars(comm, &all_members, &mut c);
        (residuals, c[0].re)
    };

    for it in 0..cfg.iterations {
        // --- pass 1: fields + residuals ---
        let (residuals, cost) = compute_residuals(&object, &mut fields);
        residual_history.push((cost / measured_norm_sqr).sqrt());

        // --- pass 2: gradient ---
        let mut grad = vec![C64::ZERO; n_local];
        let mut y = vec![C64::ZERO; n_local];
        let mut g0hz = vec![C64::ZERO; n_local];
        for (i, _t) in my_txs.iter().enumerate() {
            setup.gr_adjoint_apply_cols(cols.clone(), &residuals[i], &mut y);
            let rhs: Vec<C64> = object
                .iter()
                .zip(&y)
                .map(|(o, yi)| o.conj() * *yi)
                .collect();
            let mut z = vec![C64::ZERO; n_local];
            let ah = DistAdjointScatteringOp {
                g0: &g0,
                object_local: &object,
            };
            // lint:backend-ok legacy unbatched reference driver is Krylov-only by design
            dist_bicgstab(&ah, comm, &group_members, &rhs, &mut z, cfg.forward);
            // G0^H z via conjugation
            let zc: Vec<C64> = z.iter().map(|v| v.conj()).collect();
            g0.apply(&zc, &mut g0hz); // lint:single-rhs-ok legacy unbatched reference driver
            for j in 0..n_local {
                grad[j] += fields[i][j].conj() * (y[j] + g0hz[j].conj());
            }
        }
        // combine across illumination groups (slot-wise)
        allreduce_scalars(comm, &slot_siblings, &mut grad);
        if cfg.real_object {
            grad.iter_mut().for_each(|v| v.im = 0.0);
        }

        // --- conjugate direction ---
        let mut dots = [
            c64(norm2_sqr(&grad), 0.0),
            zdotc(
                &grad,
                &grad_prev
                    .iter()
                    .zip(&grad)
                    .map(|(gp, g)| *g - *gp)
                    .collect::<Vec<_>>(),
            ),
            c64(norm2_sqr(&grad_prev), 0.0),
        ];
        // inner products over the pixel dimension: reduce within the group
        allreduce_scalars(comm, &group_members, &mut dots);
        let g_norm_sqr = dots[0].re;
        if g_norm_sqr == 0.0 {
            break;
        }
        let beta = if cfg.conjugate && it > 0 && dots[2].re > 0.0 {
            (dots[1].re / dots[2].re).max(0.0)
        } else {
            0.0
        };
        for j in 0..n_local {
            dir[j] = -grad[j] + beta * dir[j];
        }
        grad_prev.copy_from_slice(&grad);

        // --- pass 3: step size ---
        let mut num_local = 0.0f64;
        let mut den_local = 0.0f64;
        let mut w = vec![C64::ZERO; n_local];
        let mut g0w = vec![C64::ZERO; n_local];
        for (i, _t) in my_txs.iter().enumerate() {
            for j in 0..n_local {
                w[j] = fields[i][j] * dir[j];
            }
            g0.apply(&w, &mut g0w); // lint:single-rhs-ok legacy unbatched reference driver
            let mut u = vec![C64::ZERO; n_local];
            let a = DistScatteringOp {
                g0: &g0,
                object_local: &object,
            };
            // lint:backend-ok legacy unbatched reference driver is Krylov-only by design
            dist_bicgstab(&a, comm, &group_members, &g0w, &mut u, cfg.forward);
            let src: Vec<C64> = w
                .iter()
                .zip(&u)
                .zip(&object)
                .map(|((wi, ui), oi)| *wi + *oi * *ui)
                .collect();
            let mut fd = vec![C64::ZERO; setup.n_rx()];
            setup.gr_apply_cols(cols.clone(), &src, &mut fd);
            allreduce_scalars(comm, &group_members, &mut fd);
            if slot == 0 {
                num_local -= zdotc(&fd, &residuals[i]).re;
                den_local += norm2_sqr(&fd);
            }
        }
        let mut nd = [c64(num_local, 0.0), c64(den_local, 0.0)];
        allreduce_scalars(comm, &all_members, &mut nd);
        let alpha = if nd[1].re > 0.0 {
            nd[0].re / nd[1].re
        } else {
            0.0
        };
        for j in 0..n_local {
            object[j] += alpha * dir[j];
        }
        if cfg.real_object {
            object.iter_mut().for_each(|v| v.im = 0.0);
        }
    }

    // --- final residual ---
    let (_, cost) = compute_residuals(&object, &mut fields);
    let final_residual = (cost / measured_norm_sqr).sqrt();

    DistDbimResult {
        object_local: object,
        pixel_range: cols,
        residual_history,
        final_residual,
    }
}
