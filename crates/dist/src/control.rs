//! External control of a running fault-tolerant reconstruction.
//!
//! A [`JobControl`] is the seam between a long-running [`crate::run_dbim_ft`]
//! solve and whoever supervises it (the `ffw-serve` scheduler, the
//! `ffw-reconstruct` signal handler, a test harness). It carries:
//!
//! * a cooperative **stop flag** — when raised, every rank of the launch
//!   agrees on it collectively at the next outer-iteration boundary (*after*
//!   the checkpoint for that iteration is written), so the run always stops
//!   in a state whose `resume` continues bit-identically; and
//! * an optional **progress channel** — one event per completed outer
//!   iteration, mirroring the `dbim.residual` series that `ffw-obs` records,
//!   which the serve layer streams to clients as JSONL.
//!
//! The stop decision must be *collective*: ranks poll the flag at slightly
//! different times, and a raced read would leave some ranks entering the
//! next iteration's collectives while others have returned — a deadlock.
//! The driver therefore allreduces a stop scalar across all ranks at the
//! boundary; the flag only marks intent.

use crossbeam_channel::Sender;
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// One progress event per completed outer iteration of a controlled run.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct IterProgress {
    /// Outer iterations completed so far (1-based: first event reports 1).
    pub completed: u32,
    /// Relative residual measured at the start of the completed iteration
    /// (the same value the checkpoint's residual history records).
    pub residual: f64,
}

/// Handle for cancelling/pausing a run and observing its progress.
#[derive(Clone, Default)]
pub struct JobControl {
    /// Cooperative stop intent; see module docs for the collective protocol.
    stop: Arc<AtomicBool>,
    /// Also stop when the process-wide shutdown flag
    /// ([`ffw_fault::shutdown_requested`]) is raised by SIGTERM/SIGINT.
    honor_shutdown: bool,
    /// Per-iteration progress events (dropped silently if the receiver is
    /// gone — a disconnected observer must never wedge the solver).
    progress: Option<Sender<IterProgress>>,
}

impl JobControl {
    /// A control handle with no observers: stop only via [`Self::stop`].
    pub fn new() -> Self {
        JobControl::default()
    }

    /// Also treat process-wide shutdown (SIGTERM/SIGINT via
    /// `ffw_fault::install_shutdown_handler`) as a stop request.
    pub fn with_shutdown(mut self) -> Self {
        self.honor_shutdown = true;
        self
    }

    /// Streams one [`IterProgress`] per completed outer iteration.
    pub fn with_progress(mut self, tx: Sender<IterProgress>) -> Self {
        self.progress = Some(tx);
        self
    }

    /// Raises the stop intent. The run stops at the next outer-iteration
    /// boundary, after writing that iteration's checkpoint.
    pub fn stop(&self) {
        self.stop.store(true, Ordering::Release);
    }

    /// Whether stop intent has been raised (locally or, when configured,
    /// process-wide). This is *intent*, not the collective decision.
    pub fn stop_requested(&self) -> bool {
        self.stop.load(Ordering::Acquire)
            || (self.honor_shutdown && ffw_fault::shutdown_requested())
    }

    /// Emits a progress event to the observer (no-op without a channel or
    /// receiver). Public so drivers hosted outside this crate — the serve
    /// layer's serial hop/regularizer path — can stream the same progress
    /// frames the fault-tolerant driver emits.
    pub fn progress(&self, completed: u32, residual: f64) {
        self.emit(IterProgress {
            completed,
            residual,
        });
    }

    /// Emits a progress event (no-op without a channel or receiver).
    pub(crate) fn emit(&self, p: IterProgress) {
        if let Some(tx) = &self.progress {
            // lint:unchecked-ok in-process progress channel, not rank comm; a dropped receiver just mutes progress
            let _ = tx.send(p);
        }
    }
}

impl fmt::Debug for JobControl {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("JobControl")
            .field("stop_requested", &self.stop_requested())
            .field("honor_shutdown", &self.honor_shutdown)
            .field("has_progress", &self.progress.is_some())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stop_flag_roundtrip() {
        let ctl = JobControl::new();
        assert!(!ctl.stop_requested());
        ctl.stop();
        assert!(ctl.stop_requested());
        // Clones share the same flag.
        let other = ctl.clone();
        assert!(other.stop_requested());
    }

    #[test]
    fn progress_without_receiver_is_silent() {
        let (tx, rx) = crossbeam_channel::unbounded();
        let ctl = JobControl::new().with_progress(tx);
        drop(rx);
        ctl.emit(IterProgress {
            completed: 1,
            residual: 0.5,
        });
    }

    #[test]
    fn honor_shutdown_observes_global_flag() {
        ffw_fault::reset_shutdown();
        let ctl = JobControl::new().with_shutdown();
        assert!(!ctl.stop_requested());
        ffw_fault::request_shutdown();
        assert!(ctl.stop_requested());
        ffw_fault::reset_shutdown();
    }
}
