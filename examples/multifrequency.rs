//! Multi-frequency (frequency-hopping) DBIM: reconstruct a strong scatterer
//! by starting at half the frequency — where the cost functional is nearly
//! convex — and refining at the full frequency. A standard extension in the
//! paper's DBIM lineage (its refs. [6], [24]).
//!
//! ```sh
//! cargo run --release --example multifrequency
//! ```

use ffw::geometry::{Domain, Point2, QuadTree, TransducerArray};
use ffw::inverse::{
    multi_frequency_dbim, synthesize_measurements, DbimConfig, FrequencyHop, ImagingSetup, MlfmaG0,
};
use ffw::mlfma::{Accuracy, MlfmaEngine, MlfmaPlan};
use ffw::par::Pool;
use ffw::phantom::{
    contrast_from_object, image_rel_error, object_from_contrast, Cylinder, Phantom,
};
use std::sync::Arc;

fn stage(wavelength: f64, n_side: usize) -> (ImagingSetup, MlfmaG0) {
    // one shared physical grid, sized lambda/10 at the highest frequency (1.0)
    let domain = Domain::with_pixel_size(n_side, wavelength, 0.1);
    let ring = 2.0 * domain.side();
    let setup = ImagingSetup::new(
        domain.clone(),
        TransducerArray::ring(12, ring),
        TransducerArray::ring(24, ring),
    );
    let plan = Arc::new(MlfmaPlan::new(&domain, Accuracy::default()));
    let g0 = MlfmaG0(Arc::new(MlfmaEngine::new(plan, Arc::new(Pool::new(1)))));
    (setup, g0)
}

fn main() {
    let n_side = 64;
    let (setup_hi, g0_hi) = stage(1.0, n_side);
    let (setup_lo, g0_lo) = stage(2.0, n_side);
    let domain = setup_hi.domain.clone();
    let tree = QuadTree::new(&domain);
    let truth = Cylinder {
        center: Point2::ZERO,
        radius: 0.3 * domain.side(),
        contrast: 0.3,
    };
    let truth_raster = truth.rasterize(&domain);
    let obj_hi = object_from_contrast(&domain, &tree, &truth_raster);
    let obj_lo = object_from_contrast(&setup_lo.domain, &tree, &truth_raster);
    let mea_hi = synthesize_measurements(&setup_hi, &g0_hi, &obj_hi, Default::default());
    let mea_lo = synthesize_measurements(&setup_lo, &g0_lo, &obj_lo, Default::default());

    let base = DbimConfig::default();
    let single = multi_frequency_dbim(
        &[FrequencyHop {
            setup: &setup_hi,
            g0: &g0_hi,
            measured: &mea_hi,
            iterations: 12,
        }],
        &base,
    )
    .expect("single-stage dbim");
    let hop = multi_frequency_dbim(
        &[
            FrequencyHop {
                setup: &setup_lo,
                g0: &g0_lo,
                measured: &mea_lo,
                iterations: 6,
            },
            FrequencyHop {
                setup: &setup_hi,
                g0: &g0_hi,
                measured: &mea_hi,
                iterations: 6,
            },
        ],
        &base,
    )
    .expect("hop dbim");
    let err = |obj: &[ffw::numerics::C64]| {
        image_rel_error(&contrast_from_object(&domain, &tree, obj), &truth_raster)
    };
    println!("contrast 0.3 cylinder, {n_side}x{n_side} px, 12 total DBIM iterations:");
    println!(
        "  single frequency:        image error {:.3}",
        err(&single.object)
    );
    println!(
        "  two-frequency hop:       image error {:.3}",
        err(&hop.object)
    );
    println!(
        "  hop stage residuals: low-freq {:.2}% -> high-freq {:.2}%",
        100.0 * hop.stages[0].final_residual,
        100.0 * hop.stages[1].final_residual
    );
}
