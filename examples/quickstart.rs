//! Quickstart: reconstruct a small dielectric cylinder with the full
//! DBIM + MLFMA pipeline and compare against the linear Born baseline.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use ffw::geometry::{Domain, Point2, QuadTree, TransducerArray};
use ffw::inverse::{
    born_inversion, dbim, synthesize_measurements, BornConfig, DbimConfig, ImagingSetup, MlfmaG0,
};
use ffw::mlfma::{Accuracy, MlfmaEngine, MlfmaPlan};
use ffw::par::Pool;
use ffw::phantom::{
    contrast_from_object, image_rel_error, object_from_contrast, Cylinder, Phantom,
};
use ffw_obs::Stopwatch;
use std::sync::Arc;

fn main() {
    // --- the imaging scene (paper Fig. 3, laptop scale) ---
    let domain = Domain::new(64, 1.0); // 6.4 x 6.4 wavelengths, N = 4096 px
    let tree = QuadTree::new(&domain);
    let ring = 2.0 * domain.side();
    let setup = ImagingSetup::new(
        domain.clone(),
        TransducerArray::ring(8, ring),  // T transmitters
        TransducerArray::ring(16, ring), // R receivers
    );
    println!(
        "domain: {:.1}x{:.1} lambda, N = {} px, T = {}, R = {}",
        domain.side_lambda(),
        domain.side_lambda(),
        domain.n_pixels(),
        setup.n_tx(),
        setup.n_rx()
    );

    // --- the unknown object ---
    let truth = Cylinder {
        center: Point2::ZERO,
        radius: 1.5,
        contrast: 0.08,
    };
    let truth_raster = truth.rasterize(&domain);
    let object_true = object_from_contrast(&domain, &tree, &truth_raster);

    // --- MLFMA-accelerated Green's operator ---
    let plan = Arc::new(MlfmaPlan::new(&domain, Accuracy::default()));
    let pool = Arc::new(Pool::new(Pool::global().n_threads()));
    let g0 = MlfmaG0(Arc::new(MlfmaEngine::new(plan, pool)));

    // --- synthesize measurements (the "experiment") ---
    let t0 = Stopwatch::start();
    let measured = synthesize_measurements(&setup, &g0, &object_true, Default::default());
    println!("synthesized {} tx in {:.2?}", setup.n_tx(), t0.elapsed());

    // --- nonlinear (multiple-scattering) DBIM reconstruction ---
    let t0 = Stopwatch::start();
    let cfg = DbimConfig {
        iterations: 10,
        ..Default::default()
    };
    let result = dbim(&setup, &g0, &measured, &cfg).expect("dbim");
    println!(
        "DBIM: {} iterations in {:.2?}; residual {:.3}% -> {:.3}%; {:.1} MLFMA mults/solve",
        cfg.iterations,
        t0.elapsed(),
        100.0 * result.history[0].rel_residual,
        100.0 * result.final_residual,
        result.mlfma_mults_per_solve()
    );
    let dbim_raster = contrast_from_object(&domain, &tree, &result.object);
    let dbim_err = image_rel_error(&dbim_raster, &truth_raster);

    // --- linear (single-scattering) Born baseline ---
    let t0 = Stopwatch::start();
    let born = born_inversion(&setup, &measured, &BornConfig::default());
    let born_raster = contrast_from_object(&domain, &tree, &born.object);
    let born_err = image_rel_error(&born_raster, &truth_raster);
    println!("Born: {:?} in {:.2?}", born.stats, t0.elapsed());

    println!("image relative error: DBIM {dbim_err:.3}, Born {born_err:.3}");
    println!(
        "multiple-scattering reconstruction is {:.1}x more accurate",
        born_err / dbim_err
    );
}
