//! Limited-angle imaging (the paper's Fig. 2 scenario): when transmitters and
//! receivers only see the object from a 90-degree arc, single-scattering
//! energy is lost to the detectors and the linear Born reconstruction
//! collapses; the multiple-scattering DBIM keeps working.
//!
//! ```sh
//! cargo run --release --example limited_angle
//! ```

use ffw::geometry::Point2;
use ffw::inverse::BornConfig;
use ffw::phantom::{image_rel_error, Annulus, Phantom};
use ffw::tomo::{Reconstruction, SceneConfig};

fn main() {
    let (px, n_tx, n_rx, iters) = (64usize, 16, 32, 15);
    for (label, arc) in [
        ("full 360-degree ring", None),
        (
            "limited 180-degree arc",
            Some((-std::f64::consts::FRAC_PI_2, std::f64::consts::PI)),
        ),
    ] {
        let mut scene = SceneConfig::new(px, n_tx, n_rx);
        if let Some((start, span)) = arc {
            scene = scene.with_arc(start, span);
        }
        let recon = Reconstruction::new(&scene);
        let d = recon.domain().side();
        let truth = Annulus {
            center: Point2::ZERO,
            inner: 0.18 * d,
            outer: 0.30 * d,
            contrast: 0.2,
        };
        let truth_raster = truth.rasterize(recon.domain());
        let measured = recon.synthesize(&truth);

        let dbim = recon.run_dbim(&measured, iters).expect("dbim");
        let dbim_err = image_rel_error(&recon.image(&dbim.object), &truth_raster);
        let born = recon.run_born(&measured, &BornConfig::default());
        let born_err = image_rel_error(&recon.image(&born.object), &truth_raster);

        println!("{label}:");
        println!(
            "  DBIM (multiple scattering): image error {dbim_err:.3}, residual {:.2}%",
            100.0 * dbim.final_residual
        );
        println!("  Born (single scattering):   image error {born_err:.3}");
        println!("  nonlinear advantage: {:.1}x\n", born_err / dbim_err);
    }
    println!("expected: the nonlinear reconstruction stays ahead of the linear one at");
    println!("the limited angle — the paper's motivation for capturing multiple");
    println!("scattering (Fig. 2).");
}
