//! Scaled-down version of the paper's Fig. 13 hero run: monochromatic
//! reconstruction of the Shepp-Logan head phantom at 0.02 max contrast,
//! rendered as ASCII art.
//!
//! ```sh
//! cargo run --release --example shepp_logan
//! ```

use ffw::phantom::{image_rel_error, Phantom, SheppLogan};
use ffw::tomo::{Reconstruction, SceneConfig};
use ffw_obs::Stopwatch;

fn ascii_render(raster: &[f64], n: usize, vmax: f64) {
    let shades = [' ', '.', ':', '-', '=', '+', '*', '#', '%', '@'];
    let step = (n / 48).max(1); // downsample to <= 48 columns
    for row in (0..n).step_by(step * 2) {
        let mut line = String::new();
        for col in (0..n).step_by(step) {
            let v = raster[row * n + col].max(0.0) / vmax;
            let idx = ((v * 9.0).round() as usize).min(9);
            line.push(shades[idx]);
        }
        println!("{line}");
    }
}

fn main() {
    let (px, n_tx, n_rx, iters) = (64usize, 16, 32, 12);
    println!(
        "Shepp-Logan, {:.1}x{:.1} lambda ({} px), T={n_tx}, R={n_rx}, {iters} DBIM iterations",
        px as f64 / 10.0,
        px as f64 / 10.0,
        px * px
    );
    let scene = SceneConfig::new(px, n_tx, n_rx);
    let recon = Reconstruction::new(&scene);
    let truth = SheppLogan::for_domain(recon.domain(), 0.02);
    let truth_raster = truth.rasterize(recon.domain());

    let t0 = Stopwatch::start();
    let measured = recon.synthesize(&truth);
    let result = recon.run_dbim(&measured, iters).expect("dbim");
    let image = recon.image(&result.object);
    println!(
        "reconstructed in {:.1?}: residual {:.1}% -> {:.2}%, image error {:.3}, {:.1} MLFMA mults/solve",
        t0.elapsed(),
        100.0 * result.history[0].rel_residual,
        100.0 * result.final_residual,
        image_rel_error(&image, &truth_raster),
        result.mlfma_mults_per_solve()
    );
    println!("\n--- ground truth ---");
    ascii_render(&truth_raster, px, 0.02);
    println!("\n--- reconstruction ---");
    ascii_render(&image, px, 0.02);
}
