//! Runs the fully two-dimensional parallel DBIM (illumination groups x MLFMA
//! sub-trees) on the in-process message-passing runtime and verifies it
//! against the serial solver — the paper's Fig. 6 decomposition end to end.
//!
//! ```sh
//! cargo run --release --example distributed
//! ```

use ffw::dist::dist_dbim;
use ffw::geometry::{Domain, Point2, QuadTree, TransducerArray};
use ffw::inverse::{dbim, synthesize_measurements, DbimConfig, ImagingSetup, MlfmaG0};
use ffw::mlfma::{Accuracy, MlfmaEngine, MlfmaPlan};
use ffw::numerics::vecops::rel_diff;
use ffw::numerics::C64;
use ffw::par::Pool;
use ffw::phantom::{object_from_contrast, Cylinder, Phantom};
use std::sync::Arc;

fn main() {
    let domain = Domain::new(64, 1.0);
    let tree = QuadTree::new(&domain);
    let plan = Arc::new(MlfmaPlan::new(&domain, Accuracy::default()));
    let ring = 2.0 * domain.side();
    let setup = ImagingSetup::new(
        domain.clone(),
        TransducerArray::ring(8, ring),
        TransducerArray::ring(16, ring),
    );
    let truth = Cylinder {
        center: Point2::ZERO,
        radius: 1.6,
        contrast: 0.05,
    };
    let object = object_from_contrast(&domain, &tree, &truth.rasterize(&domain));
    let g0 = MlfmaG0(Arc::new(MlfmaEngine::new(
        Arc::clone(&plan),
        Arc::new(Pool::new(1)),
    )));
    let measured = synthesize_measurements(&setup, &g0, &object, Default::default());

    let cfg = DbimConfig {
        iterations: 5,
        ..Default::default()
    };
    let serial = dbim(&setup, &g0, &measured, &cfg).expect("serial dbim");
    println!(
        "serial DBIM: residual {:.2}% -> {:.2}%",
        100.0 * serial.history[0].rel_residual,
        100.0 * serial.final_residual
    );

    for (groups, subtree) in [(4usize, 2usize), (2, 4)] {
        let plan2 = Arc::clone(&plan);
        let setup_ref = &setup;
        let measured_ref = &measured;
        let cfg_ref = &cfg;
        let (results, handle) = ffw::mpi::run(groups * subtree, move |comm| {
            dist_dbim(
                &comm,
                setup_ref,
                Arc::clone(&plan2),
                measured_ref,
                groups,
                subtree,
                cfg_ref,
            )
        });
        let mut image = vec![C64::ZERO; setup.n_pixels()];
        for r in results.iter().take(subtree) {
            image[r.pixel_range.clone()].copy_from_slice(&r.object_local);
        }
        println!(
            "{groups} illumination groups x {subtree} sub-tree ranks: image diff vs serial {:.2e}, \
             {} messages / {} KiB exchanged",
            rel_diff(&image, &serial.object),
            handle.stats().total_messages(),
            handle.stats().total_bytes() / 1024,
        );
    }
    println!("(the paper's analogous CPU-vs-GPU consistency figure is 7.15e-13)");
}
