//! Runs the Blue Waters performance model end to end: calibrates against the
//! paper's 64-GPU-node baseline and prints all four scaling studies.
//!
//! ```sh
//! cargo run --release --example scaling_model
//! ```

use ffw::perf::{calibrate, fig10, fig11, fig12, fig13_projection, fig9, table4, PlanLib};

fn main() {
    let mut lib = PlanLib::new();
    let scale = calibrate(&mut lib);
    println!("calibrated to the paper's Fig. 9 baseline (1,096 s on 64 GPU nodes)\n");

    println!("strong scaling across illuminations (paper: 86.1% at 16x):");
    for p in fig9(&mut lib, scale) {
        println!(
            "  {:5} nodes  {:7.1} s  {:5.1}% efficient",
            p.nodes,
            p.seconds,
            100.0 * p.efficiency
        );
    }
    println!("\nstrong scaling across MLFMA sub-trees (paper: 46.6% at 16x):");
    for p in fig10(&mut lib, scale) {
        println!(
            "  {:5} nodes  {:7.1} s  {:5.1}% efficient",
            p.nodes,
            p.seconds,
            100.0 * p.efficiency
        );
    }
    println!("\nweak scaling across illuminations (paper: 77.2% real / 89.9% adjusted):");
    for p in fig11(&mut lib, scale) {
        println!(
            "  {:5} nodes  real {:5.1}%  adjusted {:5.1}%",
            p.nodes,
            100.0 * p.efficiency,
            100.0 * p.adjusted_efficiency.unwrap()
        );
    }
    println!("\nweak scaling across sub-trees (paper: 73.3% real / 94.7% adjusted):");
    for p in fig12(&mut lib, scale) {
        println!(
            "  {:5} nodes  real {:5.1}%  adjusted {:5.1}%",
            p.nodes,
            100.0 * p.efficiency,
            100.0 * p.adjusted_efficiency.unwrap()
        );
    }
    println!("\nwhole-application CPU vs GPU (paper: 4.19x -> 3.77x):");
    for r in table4(&mut lib, scale) {
        println!(
            "  {:5} nodes  CPU {:7.1} s  GPU {:6.1} s  speedup {:.2}x",
            r.nodes, r.cpu_seconds, r.gpu_seconds, r.speedup
        );
    }
    let p = fig13_projection(&mut lib, scale);
    println!(
        "\nFig. 13 projection (4M unknowns, 4,096 GPUs): {:.1} s, {} solves, {:.0} MLFMA mults ({:.1}/solve)",
        p.seconds, p.forward_solves, p.mlfma_mults, p.mults_per_solve
    );
    println!("paper: 126.9 s, 153,600 solves, 2,054,312 mults (13.4/solve)");
}
