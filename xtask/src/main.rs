//! Workspace automation. The only subcommand today is `lint`, the
//! concurrency-hygiene gate that CI runs alongside clippy:
//!
//! ```text
//! cargo run -p xtask -- lint
//! ```
//!
//! The lints are deliberately textual — line-oriented heuristics over the
//! source tree, not a rustc plugin — because the properties they enforce are
//! properties of the *source text* (comments, attributes, identifier
//! discipline) that the compiler cannot see:
//!
//! * **R1 — SAFETY comments**: every line introducing `unsafe` code must be
//!   justified by a `SAFETY` comment (walking up through the comment/attribute
//!   block above it, or within the 3 preceding lines for mid-function blocks).
//! * **R2 — `unsafe_op_in_unsafe_fn`**: any crate root whose crate contains
//!   `unsafe` must carry `#![deny(unsafe_op_in_unsafe_fn)]`, so unsafe
//!   operations are always visibly scoped even inside unsafe fns.
//! * **R3 — completion-flag orderings**: `Ordering::Relaxed` must not be used
//!   on the completion/panic-protocol atomics (`chunks_done`, `panicked`) —
//!   those require acquire/release pairing; a waiver comment
//!   `// lint:relaxed-ok` on the same or previous line exempts a justified
//!   use.
//! * **R4 — thread spawning**: `thread::spawn` is allowed only in the two
//!   substrate crates (`ffw-par`, `ffw-mpi`); everything else must go through
//!   them so the checkers (watchdog, trace validation, pool accounting) see
//!   all concurrency. Test code (a `#[cfg(test)]` suffix module or a `tests/`
//!   directory) is exempt, as is `// lint:spawn-ok`.
//! * **R5 — no `unwrap` on the fault-tolerant path**: `.unwrap()` is banned
//!   in `crates/dist/src` and `crates/mpi/src` non-test code. Those crates
//!   implement the distributed hot path whose whole contract is typed
//!   [`FaultError`] propagation — an `unwrap` there turns a recoverable
//!   fault into a rank-killing panic. Use `?` with a typed error, or an
//!   explicit `unwrap_or_else(|e| panic!(...))` / `expect("reason")` where a
//!   failure is genuinely a protocol bug. Waive with `// lint:unwrap-ok`.
//! * **R6 — timing through `ffw-obs`**: `std::time::Instant` is banned in
//!   `crates/` outside `crates/obs/` — all wall-clock timing goes through
//!   `ffw_obs::Stopwatch`/`monotonic_ns` so the observability layer sees it
//!   (and so perf numbers share one clock). Test code is exempt, as is a
//!   justified `// lint:instant-ok` waiver.
//! * **R7 — no unchecked communication in `ffw-dist`**: the raw panicking
//!   primitives `.send(` / `.recv(` are banned in `crates/dist/src` non-test
//!   code. The distributed solver's contract is typed fault propagation with
//!   end-to-end integrity, so every hop must go through `send_checked` /
//!   `recv_checked` (or their `_laned` ABFT variants, or `try_recv` for
//!   polling). Waive a justified use with `// lint:unchecked-ok`.
//! * **R8 — batched applies on the inversion hot path**: single-RHS Green's
//!   operator applies (`g0.apply(` / `g0.try_apply(` / `engine.apply(` /
//!   `eng.apply(`) are banned in `crates/inverse/src` and `crates/dist/src`
//!   non-test code. The per-transmitter loops there must go through the
//!   fused multi-RHS block path (`apply_block` / `try_apply_block` /
//!   `solve_forward_block` / `try_dist_bicgstab_block`), which amortizes one
//!   tree traversal and one message per peer over the whole panel. A scalar
//!   building block (an op's own `try_apply_local`) or a deliberately
//!   unbatched driver is waived with `// lint:single-rhs-ok`.
//!
//! Scope: R1–R3 cover `crates/` and `xtask/`; R4 and R6 cover `crates/` only
//! (`third_party/` holds vendored stand-ins for external dependencies and is
//! linted for unsafe hygiene but not spawn/timing discipline); R5 covers only
//! the two fault-tolerant crates; R7 covers `crates/dist/src` alone; R8
//! covers `crates/inverse/src` and `crates/dist/src`.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => lint(),
        Some(other) => {
            eprintln!("unknown subcommand {other:?}; available: lint");
            ExitCode::FAILURE
        }
        None => {
            eprintln!("usage: cargo run -p xtask -- lint");
            ExitCode::FAILURE
        }
    }
}

fn lint() -> ExitCode {
    let root = workspace_root();
    let mut diagnostics = Vec::new();

    for dir in ["crates", "xtask", "third_party"] {
        for file in rust_files(&root.join(dir)) {
            let text = match std::fs::read_to_string(&file) {
                Ok(t) => t,
                Err(e) => {
                    diagnostics.push(format!("{}: unreadable: {e}", file.display()));
                    continue;
                }
            };
            let rel = file
                .strip_prefix(&root)
                .unwrap_or(&file)
                .display()
                .to_string();
            diagnostics.extend(check_safety_comments(&rel, &text));
            diagnostics.extend(check_unsafe_fn_attr(&rel, &text));
            diagnostics.extend(check_relaxed_orderings(&rel, &text));
            if dir == "crates" {
                diagnostics.extend(check_thread_spawn(&rel, &text));
                diagnostics.extend(check_unwrap_on_fault_path(&rel, &text));
                diagnostics.extend(check_instant_outside_obs(&rel, &text));
                diagnostics.extend(check_unchecked_comm(&rel, &text));
                diagnostics.extend(check_single_rhs_apply(&rel, &text));
            }
        }
    }

    if diagnostics.is_empty() {
        println!("xtask lint: OK");
        ExitCode::SUCCESS
    } else {
        for d in &diagnostics {
            eprintln!("xtask lint: {d}");
        }
        eprintln!("xtask lint: {} violation(s)", diagnostics.len());
        ExitCode::FAILURE
    }
}

fn workspace_root() -> PathBuf {
    // xtask always lives directly under the workspace root.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .expect("xtask has a parent directory")
        .to_path_buf()
}

fn rust_files(dir: &Path) -> Vec<PathBuf> {
    let mut files = Vec::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        let Ok(entries) = std::fs::read_dir(&d) else {
            continue;
        };
        for entry in entries.flatten() {
            let path = entry.path();
            if path.is_dir() {
                if path.file_name().is_some_and(|n| n == "target") {
                    continue;
                }
                stack.push(path);
            } else if path.extension().is_some_and(|e| e == "rs") {
                files.push(path);
            }
        }
    }
    files.sort();
    files
}

/// Replaces string-literal contents with spaces and truncates at a trailing
/// `//` comment, so token matching only sees actual code. (Heuristic: `"`
/// inside char literals would confuse it; the workspace has none.)
fn mask_code(line: &str) -> String {
    let mut out = String::with_capacity(line.len());
    let mut chars = line.chars().peekable();
    let mut in_string = false;
    while let Some(c) = chars.next() {
        if in_string {
            match c {
                '\\' => {
                    out.push(' ');
                    if chars.next().is_some() {
                        out.push(' ');
                    }
                }
                '"' => {
                    in_string = false;
                    out.push('"');
                }
                _ => out.push(' '),
            }
        } else {
            match c {
                '"' => {
                    in_string = true;
                    out.push('"');
                }
                '/' if chars.peek() == Some(&'/') => break,
                _ => out.push(c),
            }
        }
    }
    out
}

/// True if `line` contains `word` bounded by non-identifier characters.
fn contains_word(line: &str, word: &str) -> bool {
    let is_ident = |c: char| c.is_ascii_alphanumeric() || c == '_';
    let mut start = 0;
    while let Some(pos) = line[start..].find(word) {
        let abs = start + pos;
        let before_ok = abs == 0 || !line[..abs].chars().next_back().is_some_and(is_ident);
        let after_ok = !line[abs + word.len()..]
            .chars()
            .next()
            .is_some_and(is_ident);
        if before_ok && after_ok {
            return true;
        }
        start = abs + word.len();
    }
    false
}

fn is_comment_or_attr(line: &str) -> bool {
    let t = line.trim_start();
    t.is_empty() || t.starts_with("//") || t.starts_with("#[") || t.starts_with("#!")
}

/// R1: every `unsafe` introduction is covered by a SAFETY comment.
fn check_safety_comments(file: &str, text: &str) -> Vec<String> {
    let lines: Vec<&str> = text.lines().collect();
    let mut out = Vec::new();
    for (i, line) in lines.iter().enumerate() {
        if !contains_word(&mask_code(line), "unsafe") {
            continue;
        }
        // Walk up through the contiguous comment/attribute block.
        let mut covered = false;
        let mut j = i;
        while j > 0 && is_comment_or_attr(lines[j - 1]) {
            j -= 1;
            if lines[j].contains("SAFETY") {
                covered = true;
                break;
            }
        }
        // Mid-function blocks: accept a SAFETY comment within the 3 preceding
        // lines even if code intervenes (e.g. pointer setup between the
        // comment and the deref it justifies).
        if !covered {
            covered = lines[i.saturating_sub(3)..i]
                .iter()
                .any(|l| l.contains("SAFETY"));
        }
        if !covered {
            out.push(format!(
                "{file}:{}: `unsafe` without a `// SAFETY:` comment above it",
                i + 1
            ));
        }
    }
    out
}

/// R2: crate roots of crates containing `unsafe` must deny
/// `unsafe_op_in_unsafe_fn`.
fn check_unsafe_fn_attr(file: &str, text: &str) -> Vec<String> {
    let is_crate_root = file.ends_with("src/lib.rs") || file.ends_with("src/main.rs");
    if !is_crate_root {
        // Multi-file crates would need crate-level aggregation; every unsafe
        // block in this workspace lives in a single-file crate root today.
        return Vec::new();
    }
    let has_unsafe = text.lines().any(|l| contains_word(&mask_code(l), "unsafe"));
    if has_unsafe && !text.contains("#![deny(unsafe_op_in_unsafe_fn)]") {
        return vec![format!(
            "{file}: crate contains `unsafe` but is missing #![deny(unsafe_op_in_unsafe_fn)]"
        )];
    }
    Vec::new()
}

/// Atomics that implement the completion/panic protocol and therefore must
/// never be accessed with `Ordering::Relaxed`.
const GUARDED_ATOMICS: [&str; 2] = ["chunks_done", "panicked"];

/// R3: no `Ordering::Relaxed` on completion/panic-flag atomics.
fn check_relaxed_orderings(file: &str, text: &str) -> Vec<String> {
    let lines: Vec<&str> = text.lines().collect();
    let mut out = Vec::new();
    for (i, line) in lines.iter().enumerate() {
        let masked = mask_code(line);
        if !masked.contains("Relaxed") {
            continue;
        }
        let guarded = GUARDED_ATOMICS.iter().any(|a| contains_word(&masked, a));
        if !guarded {
            continue;
        }
        let waived =
            line.contains("lint:relaxed-ok") || (i > 0 && lines[i - 1].contains("lint:relaxed-ok"));
        if !waived {
            out.push(format!(
                "{file}:{}: Ordering::Relaxed on a completion/panic-flag atomic \
                 (needs acquire/release; waive with `// lint:relaxed-ok` if justified)",
                i + 1
            ));
        }
    }
    out
}

/// R4: `thread::spawn` only inside the substrate crates.
fn check_thread_spawn(file: &str, text: &str) -> Vec<String> {
    if file.starts_with("crates/par/") || file.starts_with("crates/mpi/") {
        return Vec::new();
    }
    if file.contains("/tests/") || file.contains("/benches/") {
        return Vec::new();
    }
    let mut out = Vec::new();
    let mut in_test_suffix = false;
    for (i, line) in text.lines().enumerate() {
        // Convention in this workspace: the `#[cfg(test)]` module is the tail
        // of the file, so everything after the marker is test code.
        if line.trim_start().starts_with("#[cfg(test)]") {
            in_test_suffix = true;
        }
        if in_test_suffix {
            continue;
        }
        if mask_code(line).contains("thread::spawn") && !line.contains("lint:spawn-ok") {
            out.push(format!(
                "{file}:{}: direct thread::spawn outside ffw-par/ffw-mpi — route \
                 concurrency through the substrate crates so the checkers see it",
                i + 1
            ));
        }
    }
    out
}

/// R5: no `.unwrap()` in the fault-tolerant crates' non-test code.
fn check_unwrap_on_fault_path(file: &str, text: &str) -> Vec<String> {
    if !(file.starts_with("crates/dist/src/") || file.starts_with("crates/mpi/src/")) {
        return Vec::new();
    }
    let mut out = Vec::new();
    let mut in_test_suffix = false;
    for (i, line) in text.lines().enumerate() {
        if line.trim_start().starts_with("#[cfg(test)]") {
            in_test_suffix = true;
        }
        if in_test_suffix {
            continue;
        }
        // `.unwrap(` cannot match `.unwrap_or_else(` / `.unwrap_or(`: the
        // next character there is `_`, not `(`.
        if mask_code(line).contains(".unwrap(") && !line.contains("lint:unwrap-ok") {
            out.push(format!(
                "{file}:{}: `.unwrap()` on the fault-tolerant path — propagate a \
                 typed FaultError (`?`) or make the panic explicit with \
                 `unwrap_or_else`/`expect`; waive with `// lint:unwrap-ok`",
                i + 1
            ));
        }
    }
    out
}

/// R6: `std::time::Instant` only inside `crates/obs/` — everything else
/// times through `ffw_obs::Stopwatch` so the observability layer is the one
/// clock.
fn check_instant_outside_obs(file: &str, text: &str) -> Vec<String> {
    if file.starts_with("crates/obs/") {
        return Vec::new();
    }
    if file.contains("/tests/") || file.contains("/benches/") {
        return Vec::new();
    }
    let mut out = Vec::new();
    let mut in_test_suffix = false;
    for (i, line) in text.lines().enumerate() {
        if line.trim_start().starts_with("#[cfg(test)]") {
            in_test_suffix = true;
        }
        if in_test_suffix {
            continue;
        }
        if contains_word(&mask_code(line), "Instant") && !line.contains("lint:instant-ok") {
            out.push(format!(
                "{file}:{}: `std::time::Instant` outside ffw-obs — use \
                 `ffw_obs::Stopwatch`/`monotonic_ns` so timing goes through the \
                 observability layer; waive with `// lint:instant-ok`",
                i + 1
            ));
        }
    }
    out
}

/// R7: no raw `.send(` / `.recv(` in `crates/dist/src` non-test code — the
/// distributed solver must use the checked (typed-error, integrity-framed)
/// communication paths so a fault can never escalate into a panic or a
/// silently corrupted hop.
fn check_unchecked_comm(file: &str, text: &str) -> Vec<String> {
    if !file.starts_with("crates/dist/src/") {
        return Vec::new();
    }
    let mut out = Vec::new();
    let mut in_test_suffix = false;
    for (i, line) in text.lines().enumerate() {
        if line.trim_start().starts_with("#[cfg(test)]") {
            in_test_suffix = true;
        }
        if in_test_suffix {
            continue;
        }
        let masked = mask_code(line);
        // `.send(` cannot match `.send_checked(` and `.recv(` cannot match
        // `.recv_checked(` or `.try_recv(`: the raw forms are followed
        // immediately by `(`, with a literal `.` before the method name.
        if (masked.contains(".send(") || masked.contains(".recv("))
            && !line.contains("lint:unchecked-ok")
        {
            out.push(format!(
                "{file}:{}: raw `.send(`/`.recv(` in ffw-dist — use \
                 `send_checked`/`recv_checked` (or the `_laned` ABFT variants) \
                 so faults propagate as typed errors; waive with \
                 `// lint:unchecked-ok`",
                i + 1
            ));
        }
    }
    out
}

/// Single-RHS spellings of the Green's operator apply that R8 bans on the
/// inversion hot path (the receiver names are the workspace's conventions
/// for the MLFMA operator).
const SINGLE_RHS_APPLIES: [&str; 4] = ["g0.apply(", "g0.try_apply(", "engine.apply(", "eng.apply("];

/// R8: no single-RHS Green's operator applies in `crates/inverse/src` /
/// `crates/dist/src` non-test code — the per-transmitter loops must use the
/// fused multi-RHS block path so operators are loaded once per panel and
/// messages are fused per peer. Waive scalar building blocks with
/// `// lint:single-rhs-ok`.
fn check_single_rhs_apply(file: &str, text: &str) -> Vec<String> {
    if !(file.starts_with("crates/inverse/src/") || file.starts_with("crates/dist/src/")) {
        return Vec::new();
    }
    let mut out = Vec::new();
    let mut in_test_suffix = false;
    for (i, line) in text.lines().enumerate() {
        if line.trim_start().starts_with("#[cfg(test)]") {
            in_test_suffix = true;
        }
        if in_test_suffix {
            continue;
        }
        let masked = mask_code(line);
        // The block spellings cannot match: `g0.apply_block(` continues with
        // `_`, not `(`, after `apply`.
        if SINGLE_RHS_APPLIES.iter().any(|p| masked.contains(p))
            && !line.contains("lint:single-rhs-ok")
            && !(i > 0
                && text
                    .lines()
                    .nth(i - 1)
                    .is_some_and(|l| l.contains("lint:single-rhs-ok")))
        {
            out.push(format!(
                "{file}:{}: single-RHS Green's operator apply on the inversion \
                 hot path — batch through `apply_block`/`try_apply_block` (or \
                 the block solvers) so traversals and messages are fused; \
                 waive a scalar building block with `// lint:single-rhs-ok`",
                i + 1
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn word_boundaries() {
        assert!(contains_word("let x = unsafe {", "unsafe"));
        assert!(!contains_word("#![deny(unsafe_op_in_unsafe_fn)]", "unsafe"));
        assert!(!contains_word("unsafely", "unsafe"));
        assert!(contains_word("(unsafe)", "unsafe"));
    }

    #[test]
    fn safety_comment_directly_above_passes() {
        let src = "// SAFETY: justified\nunsafe impl Send for X {}\n";
        assert!(check_safety_comments("f.rs", src).is_empty());
    }

    #[test]
    fn safety_comment_through_doc_block_passes() {
        let src =
            "/// Does things.\n///\n/// SAFETY contract: caller ensures X.\nunsafe fn f() {}\n";
        assert!(check_safety_comments("f.rs", src).is_empty());
    }

    #[test]
    fn missing_safety_comment_fails() {
        let src = "fn f() {\n    let x = unsafe { *p };\n}\n";
        let diags = check_safety_comments("f.rs", src);
        assert_eq!(diags.len(), 1);
        assert!(diags[0].contains("f.rs:2"));
    }

    #[test]
    fn nearby_safety_with_intervening_code_passes() {
        let src = "// SAFETY: chunks are disjoint\nlet ptr = base.add(off);\nlet s = unsafe { from_raw_parts_mut(ptr, n) };\n";
        assert!(check_safety_comments("f.rs", src).is_empty());
    }

    #[test]
    fn unsafe_crate_without_deny_attr_fails() {
        let src = "unsafe fn f() {}\n";
        assert_eq!(check_unsafe_fn_attr("crates/x/src/lib.rs", src).len(), 1);
        let fixed = "#![deny(unsafe_op_in_unsafe_fn)]\nunsafe fn f() {}\n";
        assert!(check_unsafe_fn_attr("crates/x/src/lib.rs", fixed).is_empty());
    }

    #[test]
    fn relaxed_on_guarded_atomic_fails() {
        let src = "self.chunks_done.fetch_add(1, Ordering::Relaxed);\n";
        assert_eq!(check_relaxed_orderings("f.rs", src).len(), 1);
        let ok = "self.dispenser.fetch_add(1, Ordering::Relaxed);\n";
        assert!(check_relaxed_orderings("f.rs", ok).is_empty());
        let waived =
            "// lint:relaxed-ok — diagnostic counter only\nself.panicked.load(Ordering::Relaxed);\n";
        assert!(check_relaxed_orderings("f.rs", waived).is_empty());
    }

    #[test]
    fn spawn_outside_substrate_fails() {
        let src = "std::thread::spawn(|| {});\n";
        assert_eq!(
            check_thread_spawn("crates/dist/src/engine.rs", src).len(),
            1
        );
        assert!(check_thread_spawn("crates/par/src/lib.rs", src).is_empty());
        assert!(check_thread_spawn("crates/dist/tests/t.rs", src).is_empty());
        let test_only =
            "fn f() {}\n#[cfg(test)]\nmod tests {\n    fn g() { std::thread::spawn(|| {}); }\n}\n";
        assert!(check_thread_spawn("crates/dist/src/engine.rs", test_only).is_empty());
    }

    #[test]
    fn unwrap_on_fault_path_fails() {
        let src = "let v = rx.recv().unwrap();\n";
        assert_eq!(
            check_unwrap_on_fault_path("crates/dist/src/solver.rs", src).len(),
            1
        );
        assert_eq!(
            check_unwrap_on_fault_path("crates/mpi/src/lib.rs", src).len(),
            1
        );
        // Other crates, tests, and the explicit forms are out of scope.
        assert!(check_unwrap_on_fault_path("crates/solver/src/krylov.rs", src).is_empty());
        assert!(check_unwrap_on_fault_path("crates/dist/tests/t.rs", src).is_empty());
        let explicit = "let v = rx.recv().unwrap_or_else(|e| panic!(\"bug: {e}\"));\n";
        assert!(check_unwrap_on_fault_path("crates/dist/src/solver.rs", explicit).is_empty());
        let waived = "let v = rx.recv().unwrap(); // lint:unwrap-ok — startup only\n";
        assert!(check_unwrap_on_fault_path("crates/dist/src/solver.rs", waived).is_empty());
        let test_only = "fn f() {}\n#[cfg(test)]\nmod tests {\n    fn g() { x.unwrap(); }\n}\n";
        assert!(check_unwrap_on_fault_path("crates/dist/src/solver.rs", test_only).is_empty());
    }

    #[test]
    fn instant_outside_obs_fails() {
        let src = "use std::time::Instant;\nlet t0 = Instant::now();\n";
        assert_eq!(
            check_instant_outside_obs("crates/bench/src/bin/fig13.rs", src).len(),
            2
        );
        // The observability crate itself, tests, and waived lines are exempt.
        assert!(check_instant_outside_obs("crates/obs/src/clock.rs", src).is_empty());
        assert!(check_instant_outside_obs("crates/solver/tests/t.rs", src).is_empty());
        let waived = "use std::time::Instant; // lint:instant-ok — calibration\n";
        assert!(check_instant_outside_obs("crates/perf/src/lib.rs", waived).is_empty());
        let test_only =
            "fn f() {}\n#[cfg(test)]\nmod tests {\n    fn g() { let _ = Instant::now(); }\n}\n";
        assert!(check_instant_outside_obs("crates/perf/src/lib.rs", test_only).is_empty());
        // `Instant` inside a string literal or identifier does not trip it.
        let masked = "println!(\"Instant\"); let reinstant_x = 1;\n";
        assert!(check_instant_outside_obs("crates/perf/src/lib.rs", masked).is_empty());
    }

    #[test]
    fn unchecked_comm_in_dist_fails() {
        let src = "comm.send(1, TAG, payload);\nlet v = comm.recv(0, TAG);\n";
        assert_eq!(check_unchecked_comm("crates/dist/src/ft.rs", src).len(), 2);
        // The checked and polling forms pass, as do other crates and tests.
        let checked = "comm.send_checked(1, TAG, payload)?;\n\
                       let v = comm.recv_checked(0, TAG)?;\n\
                       let (p, lane) = comm.recv_checked_laned(0, TAG)?;\n\
                       let m = comm.try_recv(0, TAG);\n";
        assert!(check_unchecked_comm("crates/dist/src/ft.rs", checked).is_empty());
        assert!(check_unchecked_comm("crates/mpi/src/lib.rs", src).is_empty());
        let waived = "comm.send(1, TAG, payload); // lint:unchecked-ok — demo path\n";
        assert!(check_unchecked_comm("crates/dist/src/ft.rs", waived).is_empty());
        let test_only =
            "fn f() {}\n#[cfg(test)]\nmod tests {\n    fn g() { comm.send(1, 0, p); }\n}\n";
        assert!(check_unchecked_comm("crates/dist/src/ft.rs", test_only).is_empty());
        // String literals do not trip it.
        let in_string = "panic!(\"call .send( correctly\");\n";
        assert!(check_unchecked_comm("crates/dist/src/ft.rs", in_string).is_empty());
    }

    #[test]
    fn single_rhs_apply_on_hot_path_fails() {
        let src = "g0.apply(&w, &mut g0w);\n";
        assert_eq!(
            check_single_rhs_apply("crates/inverse/src/dbim.rs", src).len(),
            1
        );
        assert_eq!(
            check_single_rhs_apply("crates/dist/src/ft.rs", src).len(),
            1
        );
        let try_form = "self.g0.try_apply(&ox, y_local)?;\n";
        assert_eq!(
            check_single_rhs_apply("crates/dist/src/solver.rs", try_form).len(),
            1
        );
        // The block spellings, other crates, tests, and waivers pass.
        let block = "g0.apply_block(&refs, &mut ys);\ng0.try_apply_block(&refs, &mut ys)?;\n";
        assert!(check_single_rhs_apply("crates/inverse/src/dbim.rs", block).is_empty());
        assert!(check_single_rhs_apply("crates/solver/src/forward.rs", src).is_empty());
        assert!(check_single_rhs_apply("crates/inverse/tests/t.rs", src).is_empty());
        let waived = "g0.apply(&w, &mut g0w); // lint:single-rhs-ok scalar path\n";
        assert!(check_single_rhs_apply("crates/inverse/src/dbim.rs", waived).is_empty());
        let waived_above =
            "// lint:single-rhs-ok scalar building block\nself.g0.try_apply(&ox, y)?;\n";
        assert!(check_single_rhs_apply("crates/dist/src/solver.rs", waived_above).is_empty());
        let test_only =
            "fn f() {}\n#[cfg(test)]\nmod tests {\n    fn g() { g0.apply(&x, &mut y); }\n}\n";
        assert!(check_single_rhs_apply("crates/inverse/src/dbim.rs", test_only).is_empty());
        // String literals do not trip it.
        let in_string = "panic!(\"g0.apply( failed\");\n";
        assert!(check_single_rhs_apply("crates/inverse/src/dbim.rs", in_string).is_empty());
    }

    #[test]
    fn lint_rules_pass_on_this_workspace() {
        // The gate must be green on the tree it ships in.
        let root = workspace_root();
        let mut diags = Vec::new();
        for dir in ["crates", "xtask", "third_party"] {
            for file in rust_files(&root.join(dir)) {
                let text = std::fs::read_to_string(&file).unwrap();
                let rel = file.strip_prefix(&root).unwrap().display().to_string();
                diags.extend(check_safety_comments(&rel, &text));
                diags.extend(check_unsafe_fn_attr(&rel, &text));
                diags.extend(check_relaxed_orderings(&rel, &text));
                if dir == "crates" {
                    diags.extend(check_thread_spawn(&rel, &text));
                    diags.extend(check_unwrap_on_fault_path(&rel, &text));
                    diags.extend(check_instant_outside_obs(&rel, &text));
                    diags.extend(check_unchecked_comm(&rel, &text));
                    diags.extend(check_single_rhs_apply(&rel, &text));
                }
            }
        }
        assert!(diags.is_empty(), "lint violations:\n{}", diags.join("\n"));
    }
}
