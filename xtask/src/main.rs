//! Workspace automation. The only subcommand today is `lint`, the
//! concurrency-hygiene gate that CI runs alongside clippy:
//!
//! ```text
//! cargo run -p xtask -- lint
//! ```
//!
//! Since the `ffw-analyze` crate landed, this is a thin wrapper: the rules
//! themselves (R1–R12, stable codes FFW001–FFW012) live in
//! `crates/analyze`, which lexes the source tree into real tokens instead
//! of the line-masking heuristics this binary used to carry. Run
//! `cargo run -p ffw-analyze -- rules` for the catalog, or
//! `cargo run -p ffw-analyze -- check --json report.json` for the
//! machine-readable report CI archives. `WAIVERS.md` at the workspace root
//! is the ledger of every live lint waiver.

use std::path::PathBuf;
use std::process::ExitCode;

fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .expect("xtask sits one level under the workspace root")
        .to_path_buf()
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => lint(),
        Some(other) => {
            eprintln!("unknown subcommand {other:?}; available: lint");
            ExitCode::FAILURE
        }
        None => {
            eprintln!("usage: cargo run -p xtask -- lint");
            ExitCode::FAILURE
        }
    }
}

fn lint() -> ExitCode {
    let root = workspace_root();
    match ffw_analyze::analyze_root(&root) {
        Ok((diags, files_scanned)) => {
            for d in &diags {
                eprintln!("{}", d.render());
            }
            if diags.is_empty() {
                eprintln!(
                    "xtask lint: {files_scanned} files clean (via ffw-analyze, {} rules)",
                    ffw_analyze::RULES.len()
                );
                ExitCode::SUCCESS
            } else {
                eprintln!("xtask lint: {} diagnostic(s)", diags.len());
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!(
                "xtask lint: cannot read workspace at {}: {e}",
                root.display()
            );
            ExitCode::FAILURE
        }
    }
}
