//! Offline stand-in for the `parking_lot` crate, backed by `std::sync`.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! the small API subset it actually uses: [`Mutex`]/[`MutexGuard`] and
//! [`Condvar`] with `parking_lot`-style signatures (no lock poisoning,
//! `wait(&mut guard)` instead of guard-by-value). Swap back to the real crate
//! by editing `[workspace.dependencies]` once a registry is reachable.

#![warn(missing_docs)]

use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;
use std::time::Duration;

/// A mutual-exclusion lock with `parking_lot`'s non-poisoning API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available. A panic while the
    /// lock was held does not poison it (matching `parking_lot`).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(Some(self.0.lock().unwrap_or_else(PoisonError::into_inner)))
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard(Some(g))),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(MutexGuard(Some(e.into_inner()))),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the protected value (no locking needed:
    /// the exclusive borrow proves uniqueness).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// RAII guard returned by [`Mutex::lock`].
///
/// Internally holds an `Option` so [`Condvar::wait`] can temporarily move the
/// underlying std guard out while the thread is parked; the option is `Some`
/// at every point user code can observe.
#[derive(Debug)]
pub struct MutexGuard<'a, T: ?Sized>(Option<std::sync::MutexGuard<'a, T>>);

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.0.as_deref().expect("guard present outside wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.0.as_deref_mut().expect("guard present outside wait")
    }
}

/// Outcome of a [`Condvar::wait_for`] call.
#[derive(Clone, Copy, Debug)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// Whether the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// A condition variable with `parking_lot`'s `&mut guard` API.
#[derive(Debug, Default)]
pub struct Condvar(std::sync::Condvar);

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Condvar(std::sync::Condvar::new())
    }

    /// Blocks until notified, atomically releasing and re-acquiring the lock.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.0.take().expect("guard present outside wait");
        let inner = self.0.wait(inner).unwrap_or_else(PoisonError::into_inner);
        guard.0 = Some(inner);
    }

    /// Blocks until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let inner = guard.0.take().expect("guard present outside wait");
        let (inner, result) = self
            .0
            .wait_timeout(inner, timeout)
            .unwrap_or_else(PoisonError::into_inner);
        guard.0 = Some(inner);
        WaitTimeoutResult(result.timed_out())
    }

    /// Wakes one waiting thread.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wakes all waiting threads.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let h = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            *m.lock() = true;
            cv.notify_all();
        });
        let (m, cv) = &*pair;
        let mut g = m.lock();
        while !*g {
            cv.wait(&mut g);
        }
        drop(g);
        h.join().unwrap();
    }

    #[test]
    fn wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let r = cv.wait_for(&mut g, Duration::from_millis(10));
        assert!(r.timed_out());
    }
}
