//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` for the shapes this workspace uses:
//! structs with named fields and enums whose variants are all unit variants.
//! Written against the raw `proc_macro` API (no `syn`/`quote` available in
//! the offline build environment): the input item is walked as token trees
//! and the impl is emitted as a source string. Generic types, tuple structs,
//! and data-carrying enum variants are rejected with a compile error.

use proc_macro::{Delimiter, TokenStream, TokenTree};

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});")
        .parse()
        .expect("valid error tokens")
}

/// Skips one attribute (`#` + bracket group) starting at `i`; returns the new
/// index, or `i` unchanged if the position does not start an attribute.
fn skip_attrs(tokens: &[TokenTree], mut i: usize) -> usize {
    loop {
        match (tokens.get(i), tokens.get(i + 1)) {
            (Some(TokenTree::Punct(p)), Some(TokenTree::Group(g)))
                if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket =>
            {
                i += 2;
            }
            _ => return i,
        }
    }
}

/// Skips a `pub` / `pub(...)` visibility marker.
fn skip_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    if matches!(tokens.get(i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        i += 1;
        if matches!(tokens.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            i += 1;
        }
    }
    i
}

/// Collects named-struct field identifiers from the tokens of a brace group.
fn named_fields(body: &[TokenTree]) -> Result<Vec<String>, String> {
    let mut fields = Vec::new();
    let mut i = 0;
    while i < body.len() {
        i = skip_attrs(body, i);
        if i >= body.len() {
            break;
        }
        i = skip_vis(body, i);
        let name = match body.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => return Err(format!("expected field name, found {other:?}")),
        };
        i += 1;
        match body.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            _ => {
                return Err(format!(
                    "expected ':' after field `{name}` (tuple structs unsupported)"
                ))
            }
        }
        fields.push(name);
        // Skip the type: everything until a comma at angle-bracket depth 0.
        let mut angle_depth = 0i32;
        while i < body.len() {
            match &body[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
    }
    Ok(fields)
}

/// Collects unit-variant identifiers from the tokens of an enum brace group.
fn unit_variants(body: &[TokenTree]) -> Result<Vec<String>, String> {
    let mut variants = Vec::new();
    let mut i = 0;
    while i < body.len() {
        i = skip_attrs(body, i);
        if i >= body.len() {
            break;
        }
        let name = match body.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => return Err(format!("expected variant name, found {other:?}")),
        };
        i += 1;
        match body.get(i) {
            None => {
                variants.push(name);
                break;
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => {
                variants.push(name);
                i += 1;
            }
            Some(_) => {
                return Err(format!(
                    "variant `{name}` carries data; only unit variants are supported by the offline serde_derive stand-in"
                ))
            }
        }
    }
    Ok(variants)
}

/// Derives the offline stand-in `serde::Serialize` (see `third_party/serde`).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_attrs(&tokens, 0);
    i = skip_vis(&tokens, i);

    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) if id.to_string() == "struct" || id.to_string() == "enum" => {
            id.to_string()
        }
        other => return compile_error(&format!("expected `struct` or `enum`, found {other:?}")),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return compile_error(&format!("expected item name, found {other:?}")),
    };
    i += 1;
    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return compile_error(&format!(
            "offline serde_derive stand-in cannot derive Serialize for generic type `{name}`"
        ));
    }
    let body = match tokens.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            g.stream().into_iter().collect::<Vec<_>>()
        }
        other => {
            return compile_error(&format!(
            "expected braced body for `{name}` (tuple/unit structs unsupported), found {other:?}"
        ))
        }
    };

    let impl_body = if kind == "struct" {
        match named_fields(&body) {
            Ok(fields) => {
                let pushes: String = fields
                    .iter()
                    .map(|f| {
                        format!(
                            "__fields.push(({f:?}.to_string(), ::serde::Serialize::to_value(&self.{f})));\n"
                        )
                    })
                    .collect();
                format!(
                    "let mut __fields: Vec<(String, ::serde::Value)> = Vec::new();\n{pushes}::serde::Value::Object(__fields)"
                )
            }
            Err(e) => return compile_error(&e),
        }
    } else {
        match unit_variants(&body) {
            Ok(variants) => {
                let arms: String = variants
                    .iter()
                    .map(|v| format!("{name}::{v} => ::serde::Value::Str({v:?}.to_string()),\n"))
                    .collect();
                format!("match self {{\n{arms}}}")
            }
            Err(e) => return compile_error(&e),
        }
    };

    let out = format!(
        "impl ::serde::Serialize for {name} {{\n    fn to_value(&self) -> ::serde::Value {{\n        {impl_body}\n    }}\n}}\n"
    );
    out.parse().expect("generated impl parses")
}
