//! Offline stand-in for the `rand` crate.
//!
//! Implements the subset this workspace uses: `StdRng`/`SmallRng` seeded via
//! `SeedableRng::seed_from_u64`, and `Rng::gen` for `f64`/`f32`/`u64`/`u32`/
//! `bool`. Both generators are xoshiro256++ (public domain algorithm by
//! Blackman & Vigna) seeded through SplitMix64, so streams are deterministic
//! per seed — which is all the callers (phantom generation, performance-model
//! sampling, tests) rely on. Swap back to the real crate once a registry is
//! reachable.

#![warn(missing_docs)]

/// Low-level generator interface: a source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Types samplable uniformly from a generator (stand-in for sampling with
/// the `Standard` distribution).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 / (1u32 << 24) as f32
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// User-facing generator interface (blanket-implemented for every
/// [`RngCore`]).
pub trait Rng: RngCore {
    /// Draws a uniform value of type `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws a uniform value in `[low, high)`.
    fn gen_range(&mut self, range: std::ops::Range<f64>) -> f64
    where
        Self: Sized,
    {
        range.start + (range.end - range.start) * self.gen::<f64>()
    }
}

impl<R: RngCore> Rng for R {}

/// Generators constructible from a small seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a deterministic function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// xoshiro256++ core shared by both named generators.
#[derive(Clone, Debug)]
pub struct Xoshiro256PlusPlus {
    s: [u64; 4],
}

impl SeedableRng for Xoshiro256PlusPlus {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        Xoshiro256PlusPlus {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }
}

impl RngCore for Xoshiro256PlusPlus {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

/// Named generators mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng, Xoshiro256PlusPlus};

    /// Stand-in for `rand::rngs::StdRng`.
    #[derive(Clone, Debug)]
    pub struct StdRng(Xoshiro256PlusPlus);

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng(Xoshiro256PlusPlus::seed_from_u64(seed))
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }

    /// Stand-in for `rand::rngs::SmallRng`.
    #[derive(Clone, Debug)]
    pub struct SmallRng(Xoshiro256PlusPlus);

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // Offset the stream so StdRng and SmallRng with equal seeds do
            // not produce identical sequences.
            SmallRng(Xoshiro256PlusPlus::seed_from_u64(
                seed ^ 0x536d_616c_6c52_6e67,
            ))
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.gen::<u64>(), b.gen::<u64>());
    }

    #[test]
    fn gen_range_in_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v = rng.gen_range(-2.5..7.5);
            assert!((-2.5..7.5).contains(&v));
        }
    }
}
