//! Offline stand-in for the `serde_json` crate.
//!
//! Renders the value tree produced by the `serde` stand-in
//! (`third_party/serde`) as JSON text, and provides the `json!` macro for the
//! flat-object literals the bench harnesses build. Swap back to the real
//! crate once a registry is reachable.

#![warn(missing_docs)]

pub use serde::Value;

/// Serialization error. The value-tree design cannot actually fail, but the
/// `Result` return keeps call sites source-compatible with real serde_json.
#[derive(Debug)]
pub struct Error;

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("serde_json stand-in error")
    }
}

impl std::error::Error for Error {}

/// Converts any serializable value to a [`Value`] tree.
pub fn to_value<T: serde::Serialize + ?Sized>(value: &T) -> Value {
    value.to_value()
}

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_float(v: f64, out: &mut String) {
    if !v.is_finite() {
        // JSON has no Inf/NaN; emit null like serde_json does.
        out.push_str("null");
    } else if v == v.trunc() && v.abs() < 1e15 {
        out.push_str(&format!("{v:.1}"));
    } else {
        out.push_str(&format!("{v}"));
    }
}

fn write_pretty(value: &Value, indent: usize, out: &mut String) {
    let pad = "  ".repeat(indent);
    let pad_in = "  ".repeat(indent + 1);
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(v) => out.push_str(&v.to_string()),
        Value::UInt(v) => out.push_str(&v.to_string()),
        Value::Float(v) => write_float(*v, out),
        Value::Str(s) => escape_into(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                out.push_str(&pad_in);
                write_pretty(item, indent + 1, out);
                if i + 1 < items.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            out.push_str(&pad);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push_str("{\n");
            for (i, (key, item)) in entries.iter().enumerate() {
                out.push_str(&pad_in);
                escape_into(key, out);
                out.push_str(": ");
                write_pretty(item, indent + 1, out);
                if i + 1 < entries.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            out.push_str(&pad);
            out.push('}');
        }
    }
}

/// Pretty-prints `value` as two-space-indented JSON.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_pretty(&value.to_value(), 0, &mut out);
    Ok(out)
}

/// Builds a [`Value`] from a flat-object literal (`json!({ "k": expr, ... })`)
/// or any serializable expression.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ({ $($key:tt : $val:expr),* $(,)? }) => {
        $crate::Value::Object(vec![
            $(($key.to_string(), $crate::to_value(&$val))),*
        ])
    };
    ($other:expr) => { $crate::to_value(&$other) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pretty_prints_nested() {
        let v = json!({
            "name": "ffw",
            "counts": vec![1u64, 2, 3],
            "ratio": 0.5,
            "whole": 4.0,
            "missing": None::<f64>,
        });
        let s = to_string_pretty(&v).unwrap();
        assert!(s.contains("\"name\": \"ffw\""));
        assert!(s.contains("\"ratio\": 0.5"));
        assert!(s.contains("\"whole\": 4.0"));
        assert!(s.contains("\"missing\": null"));
        assert!(s.contains("[\n    1,\n    2,\n    3\n  ]"));
    }

    #[test]
    fn escapes_strings() {
        let s = to_string_pretty(&"a\"b\\c\nd").unwrap();
        assert_eq!(s, "\"a\\\"b\\\\c\\nd\"");
    }
}
