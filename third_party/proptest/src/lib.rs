//! Offline stand-in for the `proptest` crate.
//!
//! Supports the subset this workspace's property tests use: the `proptest!`
//! macro (with optional `#![proptest_config(...)]` header), numeric-range and
//! tuple strategies, `prop_map`, `prop::collection::vec`, and the
//! `prop_assert!`/`prop_assert_eq!` macros. Sampling is plain deterministic
//! pseudo-random draws (no shrinking, no persisted failure seeds): each test
//! runs `cases` iterations with a generator seeded from the test name, so
//! failures reproduce run-to-run. Swap back to the real crate once a
//! registry is reachable.

#![warn(missing_docs)]

use std::ops::Range;

/// Deterministic generator driving strategy sampling (SplitMix64).
#[derive(Clone, Debug)]
pub struct TestRng(u64);

impl TestRng {
    /// Creates a generator for the given seed.
    pub fn new(seed: u64) -> Self {
        TestRng(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1))
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Per-test configuration (`cases` = iterations per property).
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of sampled cases per property test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` iterations.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A value generator: the stand-in keeps `proptest`'s trait name and
/// associated-type name so `impl Strategy<Value = T>` signatures compile
/// unchanged.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

macro_rules! int_range_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;
            fn sample(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $ty
            }
        }
    )*};
}

int_range_strategy!(usize, u64, u32);

impl Strategy for Range<i64> {
    type Value = i64;
    fn sample(&self, rng: &mut TestRng) -> i64 {
        assert!(self.start < self.end, "empty strategy range");
        let span = (self.end - self.start) as u64;
        self.start + (rng.next_u64() % span) as i64
    }
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        self.start + (self.end - self.start) * rng.unit_f64()
    }
}

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.sample(rng), self.1.sample(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.sample(rng), self.1.sample(rng), self.2.sample(rng))
    }
}

/// Collection strategies (`prop::collection` in real proptest).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for `Vec<T>` with a length drawn from `len`.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// Generates vectors of values from `element` with lengths in `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.len.clone().sample(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// The names real proptest exposes through `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy};

    /// Mirror of the `prop` module re-export in real proptest's prelude.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Seeds a [`TestRng`] from a test-name string (FNV-1a).
pub fn seed_from_name(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Property-test entry point; see the crate docs for supported syntax.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Internal expansion helper for [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = ($cfg:expr);
     $( #[test] $(#[$meta:meta])*
        fn $name:ident( $($arg:pat in $strat:expr),* $(,)? ) $body:block )*
    ) => {$(
        #[test]
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::TestRng::new($crate::seed_from_name(stringify!($name)));
            for __case in 0..__config.cases {
                let ($($arg),*,) = ($($crate::Strategy::sample(&($strat), &mut __rng)),*,);
                $body
            }
        }
    )*};
}

/// Asserts a property holds for the sampled case.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts two expressions are equal for the sampled case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_sample_in_bounds() {
        let mut rng = crate::TestRng::new(1);
        for _ in 0..1000 {
            let v = Strategy::sample(&(3usize..17), &mut rng);
            assert!((3..17).contains(&v));
            let f = Strategy::sample(&(-2.0..4.0f64), &mut rng);
            assert!((-2.0..4.0).contains(&f));
        }
    }

    #[test]
    fn vec_strategy_respects_length() {
        let mut rng = crate::TestRng::new(2);
        let s = prop::collection::vec(0u64..5, 1..9);
        for _ in 0..200 {
            let v = Strategy::sample(&s, &mut rng);
            assert!(!v.is_empty() && v.len() < 9);
            assert!(v.iter().all(|&x| x < 5));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_binds_args(x in 0u64..100, (a, b) in (0usize..4, 0usize..4)) {
            prop_assert!(x < 100);
            prop_assert_eq!((a < 4, b < 4), (true, true));
        }
    }

    proptest! {
        #[test]
        fn macro_without_config(y in -5i64..5) {
            prop_assert!((-5..5).contains(&y));
        }
    }
}
