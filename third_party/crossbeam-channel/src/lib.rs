//! Offline stand-in for the `crossbeam-channel` crate.
//!
//! Implements the multi-producer multi-consumer channel subset the workspace
//! uses (`unbounded`, `bounded`, clonable `Sender`/`Receiver`, disconnection
//! semantics) on top of a `Mutex<VecDeque>` and a `Condvar`. `bounded` does
//! not enforce its capacity: every use in this workspace sends at most one
//! message per wakeup channel, so backpressure is never exercised. Swap back
//! to the real crate once a registry is reachable.

#![warn(missing_docs)]

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex, PoisonError};

struct State<T> {
    queue: VecDeque<T>,
    senders: usize,
    receivers: usize,
}

struct Chan<T> {
    state: Mutex<State<T>>,
    cond: Condvar,
}

impl<T> Chan<T> {
    fn lock(&self) -> std::sync::MutexGuard<'_, State<T>> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// The sending half of a channel. Clonable; the channel disconnects for
/// receivers when every `Sender` has been dropped.
pub struct Sender<T>(Arc<Chan<T>>);

/// The receiving half of a channel. Clonable; all receivers drain the same
/// queue (each message is delivered to exactly one receiver).
pub struct Receiver<T>(Arc<Chan<T>>);

/// Error returned by [`Sender::send`] when every receiver has been dropped.
/// Carries the unsent message back to the caller.
#[derive(PartialEq, Eq)]
pub struct SendError<T>(pub T);

// Manual impl (upstream does the same) so `T: Debug` is not required.
impl<T> std::fmt::Debug for SendError<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("SendError(..)")
    }
}

/// Error returned by [`Receiver::recv`] when the channel is empty and every
/// sender has been dropped.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RecvError;

/// Error returned by [`Receiver::try_recv`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TryRecvError {
    /// No message is currently queued.
    Empty,
    /// The channel is empty and every sender has been dropped.
    Disconnected,
}

impl<T> Sender<T> {
    /// Enqueues `msg`, waking one blocked receiver. Fails (returning the
    /// message) if every receiver has been dropped.
    pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
        let mut st = self.0.lock();
        if st.receivers == 0 {
            return Err(SendError(msg));
        }
        st.queue.push_back(msg);
        drop(st);
        self.0.cond.notify_one();
        Ok(())
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.0.lock().senders += 1;
        Sender(Arc::clone(&self.0))
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut st = self.0.lock();
        st.senders -= 1;
        let disconnected = st.senders == 0;
        drop(st);
        if disconnected {
            self.0.cond.notify_all();
        }
    }
}

impl<T> Receiver<T> {
    /// Blocks until a message is available or the channel disconnects.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut st = self.0.lock();
        loop {
            if let Some(msg) = st.queue.pop_front() {
                return Ok(msg);
            }
            if st.senders == 0 {
                return Err(RecvError);
            }
            st = self.0.cond.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut st = self.0.lock();
        match st.queue.pop_front() {
            Some(msg) => Ok(msg),
            None if st.senders == 0 => Err(TryRecvError::Disconnected),
            None => Err(TryRecvError::Empty),
        }
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.0.lock().receivers += 1;
        Receiver(Arc::clone(&self.0))
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        self.0.lock().receivers -= 1;
    }
}

fn channel<T>() -> (Sender<T>, Receiver<T>) {
    let chan = Arc::new(Chan {
        state: Mutex::new(State {
            queue: VecDeque::new(),
            senders: 1,
            receivers: 1,
        }),
        cond: Condvar::new(),
    });
    (Sender(Arc::clone(&chan)), Receiver(chan))
}

/// Creates an unbounded MPMC channel.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    channel()
}

/// Creates a "bounded" channel. Capacity is not enforced by this stand-in
/// (see the crate docs); the signature exists for source compatibility.
pub fn bounded<T>(_cap: usize) -> (Sender<T>, Receiver<T>) {
    channel()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn send_recv_fifo() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.try_recv(), Ok(2));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn disconnect_on_sender_drop() {
        let (tx, rx) = unbounded::<u32>();
        drop(tx);
        assert_eq!(rx.recv(), Err(RecvError));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn blocked_recv_wakes_on_disconnect() {
        let (tx, rx) = unbounded::<u32>();
        let h = std::thread::spawn(move || rx.recv());
        std::thread::sleep(std::time::Duration::from_millis(20));
        drop(tx);
        assert_eq!(h.join().unwrap(), Err(RecvError));
    }

    #[test]
    fn multiple_consumers_each_get_one() {
        let (tx, rx) = bounded(4);
        let rx2 = rx.clone();
        tx.send(7).unwrap();
        tx.send(8).unwrap();
        let a = rx.recv().unwrap();
        let b = rx2.recv().unwrap();
        let mut got = [a, b];
        got.sort_unstable();
        assert_eq!(got, [7, 8]);
    }

    #[test]
    fn send_fails_without_receivers() {
        let (tx, rx) = unbounded::<u32>();
        drop(rx);
        assert_eq!(tx.send(9), Err(SendError(9)));
    }
}
