//! Offline stand-in for the `serde` crate.
//!
//! Real serde serializes through a visitor (`Serializer`); this stand-in
//! collapses that design to the one thing the workspace needs — turning
//! result/config structs into a JSON value tree that `serde_json` (also a
//! stand-in) renders. `#[derive(Serialize)]` comes from the sibling
//! `third_party/serde_derive` proc-macro crate. Swap both back to the real
//! crates once a registry is reachable.

#![warn(missing_docs)]

pub use serde_derive::Serialize;

/// A JSON-shaped value tree: the output of [`Serialize::to_value`].
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer.
    Int(i64),
    /// Unsigned integer.
    UInt(u64),
    /// Floating-point number.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object with insertion-ordered keys.
    Object(Vec<(String, Value)>),
}

/// Types convertible to a JSON [`Value`] tree.
pub trait Serialize {
    /// Converts `self` to a value tree.
    fn to_value(&self) -> Value;
}

macro_rules! impl_int {
    ($variant:ident as $as:ty : $($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn to_value(&self) -> Value {
                Value::$variant(*self as $as)
            }
        }
    )*};
}

impl_int!(Int as i64: i8, i16, i32, i64, isize);
impl_int!(UInt as u64: u8, u16, u32, u64, usize);

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_map_to_variants() {
        assert_eq!(3usize.to_value(), Value::UInt(3));
        assert_eq!((-2i32).to_value(), Value::Int(-2));
        assert_eq!(1.5f64.to_value(), Value::Float(1.5));
        assert_eq!("hi".to_value(), Value::Str("hi".into()));
        assert_eq!(None::<f64>.to_value(), Value::Null);
        assert_eq!(
            vec![1u8, 2].to_value(),
            Value::Array(vec![Value::UInt(1), Value::UInt(2)])
        );
    }
}
