//! Offline stand-in for the `criterion` crate.
//!
//! Provides the API subset the workspace's benches use (`Criterion`,
//! `benchmark_group`, `bench_with_input`, `BenchmarkId`, the `criterion_group!`
//! and `criterion_main!` macros) with a simple calibrated wall-clock loop:
//! each benchmark is warmed up, the iteration count is scaled to a target
//! measurement time, and the best-of-samples ns/iter is printed. No
//! statistics, plots, or baselines — swap back to the real crate once a
//! registry is reachable.

#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier for one benchmark within a group.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Builds an id from the benchmark's parameter value.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId(parameter.to_string())
    }

    /// Builds an id from a function name and a parameter value.
    pub fn new<P: Display>(function_name: &str, parameter: P) -> Self {
        BenchmarkId(format!("{function_name}/{parameter}"))
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` executions of `routine`.
    pub fn iter<T, F: FnMut() -> T>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

#[derive(Clone, Copy)]
struct Settings {
    sample_count: usize,
    target_time: Duration,
}

impl Default for Settings {
    fn default() -> Self {
        Settings {
            sample_count: 10,
            target_time: Duration::from_millis(200),
        }
    }
}

fn run_one(name: &str, settings: Settings, f: &mut dyn FnMut(&mut Bencher)) {
    // Calibrate: run once to estimate cost, then scale the per-sample
    // iteration count so one sample takes roughly target_time / samples.
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let per_iter = b.elapsed.max(Duration::from_nanos(1));
    let per_sample = settings.target_time / settings.sample_count as u32;
    let iters = (per_sample.as_nanos() / per_iter.as_nanos()).clamp(1, 1_000_000) as u64;

    let mut best = Duration::MAX;
    for _ in 0..settings.sample_count {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        if b.elapsed < best {
            best = b.elapsed;
        }
    }
    let ns_per_iter = best.as_nanos() as f64 / iters as f64;
    println!("bench {name:<46} {ns_per_iter:>14.1} ns/iter ({iters} iters/sample)");
}

/// Benchmark registry and runner.
#[derive(Default)]
pub struct Criterion {
    settings: Settings,
}

impl Criterion {
    /// Runs a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(name, self.settings, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            settings: self.settings,
            _parent: self,
        }
    }
}

/// A group of related benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    settings: Settings,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.settings.sample_count = n.max(2);
        self
    }

    /// Runs one benchmark with an input value.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let name = format!("{}/{}", self.name, id.0);
        run_one(&name, self.settings, &mut |b| f(b, input));
        self
    }

    /// Ends the group (accepted for API compatibility).
    pub fn finish(self) {}
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench entry point, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs() {
        let mut c = Criterion::default();
        c.settings.target_time = Duration::from_millis(5);
        let mut count = 0u64;
        c.bench_function("noop", |b| b.iter(|| count += 1));
        assert!(count > 0);
    }

    #[test]
    fn group_runs_with_input() {
        let mut c = Criterion::default();
        c.settings.target_time = Duration::from_millis(5);
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        group.bench_with_input(BenchmarkId::from_parameter(3), &3u64, |b, &n| {
            b.iter(|| n * 2)
        });
        group.finish();
    }
}
